//! # dart-serve — a sharded, batched prefetch-serving runtime
//!
//! The paper's point is that tabularized attention models make neural
//! prefetching cheap enough to run *online*. This crate is the deployment
//! layer that cashes that in: a multi-threaded runtime that serves
//! predictions for **many concurrent access streams** against one shared
//! [`TabularModel`](dart_core::TabularModel), the way TransFetch-style
//! systems batch inference to amortize per-call cost.
//!
//! Architecture:
//!
//! ```text
//!            submit(PrefetchRequest)
//!                      │
//!               ┌──────▼──────┐
//!               │ StreamRouter │  stream_id ──hash──► shard
//!               └──────┬──────┘
//!        ┌─────────────┼─────────────┐
//!   ┌────▼────┐   ┌────▼────┐   ┌────▼────┐
//!   │ shard 0 │   │ shard 1 │   │ shard N │   each: queue + worker thread
//!   │ worker  │   │ worker  │   │ worker  │   owns per-stream history state
//!   └────┬────┘   └────┬────┘   └────┬────┘
//!        │  coalesce pending requests into one
//!        │  stacked feature matrix, then one
//!        ▼  TabularModel::predict_batch call
//!   PrefetchResponse (per request, in per-stream order)
//! ```
//!
//! Key properties:
//!
//! * **Sharded state** — a stream's history lives on exactly one shard
//!   (chosen by [`StreamRouter`]), so no cross-thread locking on the hot
//!   path and per-stream request order is preserved. Each shard's map is
//!   **bounded** (`ServeConfig::max_streams_per_shard`, LRU eviction), so
//!   stream-id churn cannot grow shard memory without limit.
//! * **NUMA-aware placement** (`ServeConfig::placement`) — shard workers
//!   are assigned round-robin across NUMA nodes, pinned to their node's
//!   cpuset, and serve from a node-local model replica deep-copied by a
//!   pinned thread (first-touch pages). Degrades to exactly the unplaced
//!   behavior on single-node hosts or without the `numa` feature.
//! * **Versioned model state** — the model is held in a [`ModelSlot`]
//!   (epoch-counted `Arc` swap) fronted by a [`ModelRegistry`]. Workers
//!   re-check the epoch once per batch with a single atomic load and
//!   adopt new versions at batch boundaries, so a retrained model can be
//!   hot-swapped with zero downtime — no batch ever observes a torn
//!   model, and old versions are reclaimed once every shard has moved
//!   past them. The [`shadow`] module closes the loop: replayed live
//!   traffic is re-trained/re-tabularized in the background and promoted
//!   through an A/B gate only if it beats the incumbent.
//! * **Batch coalescing** — each worker drains its queue (up to
//!   `max_batch` requests) and issues one `predict_batch` call for every
//!   warm stream in the drain, amortizing table-lookup locality.
//! * **Complete accounting** — every submitted request produces exactly one
//!   [`PrefetchResponse`] (cold-history requests return an empty prefetch
//!   list), so dropped or misrouted work is detectable.
//!
//! See `examples/serve_quickstart.rs` for an end-to-end tour and
//! `cargo run --release -p dart-bench --bin serve_bench` for the
//! throughput/latency scaling study.

pub mod loadgen;
pub mod lru;
pub mod metrics;
pub mod placement;
pub mod registry;
pub mod request;
pub mod router;
pub mod runtime;
pub mod shadow;
pub mod shard;
pub mod slot;
pub mod stream;

pub use loadgen::{generate_requests, run_load, LoadGenConfig, LoadReport};
pub use lru::StreamLru;
pub use metrics::render_exposition;
pub use placement::ShardPlacement;
pub use registry::{
    ModelRegistry, ModelVersion, RegistryCounters, RejectedCandidate, VersionState,
};
pub use request::{PrefetchRequest, PrefetchResponse};
pub use router::StreamRouter;
pub use runtime::{ServeConfig, ServeRuntime, ServeStats, SubmitRejected};
pub use shadow::{
    gate_candidate, ReplaySample, ReplaySampler, ShadowConfig, ShadowHandle, ShadowOutcome,
    ShadowTrainer,
};
pub use slot::ModelSlot;
pub use stream::StreamState;
