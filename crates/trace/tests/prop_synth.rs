//! Property-based tests on trace generation and statistics.

use dart_trace::{spec_workloads, TraceStats};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generation is a pure function of (workload, len, seed).
    #[test]
    fn generation_deterministic(wi in 0usize..8, seed in 0u64..1000, len in 10usize..500) {
        let w = &spec_workloads()[wi];
        prop_assert_eq!(w.generate(len, seed), w.generate(len, seed));
    }

    /// Prefix property: generating a longer trace extends the shorter one.
    #[test]
    fn generation_prefix_stable(wi in 0usize..8, seed in 0u64..1000, len in 10usize..200) {
        let w = &spec_workloads()[wi];
        let short = w.generate(len, seed);
        let long = w.generate(len * 2, seed);
        prop_assert_eq!(&long[..len], &short[..]);
    }

    /// Stats bounds: uniques never exceed what the trace could contain.
    #[test]
    fn stats_bounds(wi in 0usize..8, seed in 0u64..1000, len in 2usize..800) {
        let w = &spec_workloads()[wi];
        let trace = w.generate(len, seed);
        let s = TraceStats::compute(&trace);
        prop_assert_eq!(s.accesses, len);
        prop_assert!(s.unique_blocks <= len);
        prop_assert!(s.unique_pages <= s.unique_blocks);
        prop_assert!(s.unique_deltas < len);
    }

    /// Instruction ids strictly increase for every workload and seed.
    #[test]
    fn instr_ids_increase(wi in 0usize..8, seed in 0u64..1000) {
        let w = &spec_workloads()[wi];
        let trace = w.generate(100, seed);
        for pair in trace.windows(2) {
            prop_assert!(pair[1].instr_id > pair[0].instr_id);
        }
    }
}
