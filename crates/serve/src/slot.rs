//! Versioned model state: the epoch-counted slot every shard worker
//! reads its model through, making zero-downtime hot swaps tear-free.
//!
//! The protocol has three actors:
//!
//! * **Publishers** ([`crate::registry::ModelRegistry`]) install a new
//!   `Arc<TabularModel>` under the slot lock and bump the epoch mirror.
//! * **Workers** hold a [`ModelHandle`] and call
//!   [`ModelHandle::current`] once per batch boundary. The fast path is
//!   a single atomic load (no lock); only when the epoch changed does
//!   the handle take the slot lock to adopt the new `(epoch, model)`
//!   pair. The whole batch then runs against the adopted `Arc`, so **a
//!   batch can never observe a torn model** — it either ran entirely on
//!   the old version or entirely on the new one.
//! * **Observers** read [`ModelSlot::adopted_epochs`] to learn how far
//!   each shard has moved. An old version's memory is reclaimed by the
//!   `Arc` refcount the moment the last handle (and replica cell) drops
//!   it — which by construction is only after every shard that serves
//!   traffic has moved past it. A shard with *no* traffic keeps its
//!   version alive deliberately: it may still serve a batch on it.
//!
//! NUMA refresh: under multi-node placement each node has a refreshable
//! replica cell. The **first pinned worker on a node** to adopt a new
//! epoch deep-copies the model node-locally (the same first-touch
//! contract as startup replicas: the adopting thread is pinned, so the
//! clone's arena pages land on its node); later adopters on that node
//! reuse the cell. Unpinned or single-node workers adopt the base `Arc`
//! directly — exactly the startup degradation rules.

use dart_telemetry::lockcheck::{named_mutex, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};

use dart_core::TabularModel;

/// A `(epoch, model)` pair as cached in a node's replica cell.
type ReplicaCell = Mutex<Option<(u64, Arc<TabularModel>)>>;

/// The shared, versioned model cell (one per [`crate::ServeRuntime`]).
pub struct ModelSlot {
    /// The authoritative `(epoch, model)` pair. Written by publishers
    /// under this lock; read by workers only on the adoption slow path.
    current: Mutex<(u64, Arc<TabularModel>)>,
    /// Mirror of the epoch inside `current`, for the lock-free change
    /// check workers run once per batch. The mutex is what orders the
    /// pair itself; this cell only answers "did anything change?".
    stamp: AtomicU64,
    /// One refreshable model-replica cell per NUMA node: the cached
    /// `(epoch, node-local clone)` made by the first pinned worker on
    /// that node to adopt the epoch.
    replicas: Vec<ReplicaCell>,
    /// Epoch each shard most recently adopted (`Release` stored by the
    /// shard's worker right after adopting; `Acquire` read by
    /// observers). A dead or idle shard's entry stays at the last epoch
    /// it actually served with.
    adopted: Vec<AtomicU64>,
}

impl ModelSlot {
    /// Build a slot holding `model` as **version 1**, with `nodes`
    /// replica cells and `shards` adoption counters.
    pub fn new(model: Arc<TabularModel>, nodes: usize, shards: usize) -> ModelSlot {
        ModelSlot {
            current: named_mutex("serve.model_slot", (1, model)),
            stamp: AtomicU64::new(1),
            replicas: (0..nodes).map(|_| named_mutex("serve.model_replica", None)).collect(),
            adopted: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The current epoch (monotone, starts at 1).
    pub fn epoch(&self) -> u64 {
        self.stamp.load(Ordering::Acquire)
    }

    /// Clone the authoritative `(epoch, model)` pair.
    pub fn current(&self) -> (u64, Arc<TabularModel>) {
        let cur = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        (cur.0, Arc::clone(&cur.1))
    }

    /// Install `model` as the next epoch and return that epoch. Workers
    /// pick it up at their next batch boundary; in-progress batches
    /// finish on the version they adopted (tear-free by construction).
    pub fn install(&self, model: Arc<TabularModel>) -> u64 {
        let mut cur = self.current.lock().unwrap_or_else(PoisonError::into_inner);
        let epoch = cur.0 + 1;
        *cur = (epoch, model);
        // Published while still holding the lock, so a slow-path reader
        // can never observe a stamp newer than the pair it then locks.
        self.stamp.store(epoch, Ordering::Release);
        epoch
    }

    /// The epoch each shard most recently adopted (index = shard id).
    /// `0` means the shard has not completed its initial adoption yet.
    pub fn adopted_epochs(&self) -> Vec<u64> {
        self.adopted.iter().map(|a| a.load(Ordering::Acquire)).collect()
    }

    /// The oldest epoch any shard is still potentially serving with.
    /// Once this reaches `v`, every shard has moved past versions `< v`
    /// and their only remaining references are in flight to be dropped.
    pub fn min_adopted_epoch(&self) -> u64 {
        self.adopted.iter().map(|a| a.load(Ordering::Acquire)).min().unwrap_or(0)
    }

    /// Build the worker-side handle for `shard_id`, performing the
    /// initial adoption **on the calling thread** — call it from the
    /// worker thread after any NUMA pin, so a node replica's first-touch
    /// pages land on the right node. `node` is the topology node *index*
    /// whose replica cell this worker should serve from, or `None` to
    /// serve the base model (unpinned / single-node degradation).
    pub(crate) fn handle(self: &Arc<Self>, shard_id: usize, node: Option<usize>) -> ModelHandle {
        let (epoch, base) = self.current();
        let mut handle =
            ModelHandle { slot: Arc::clone(self), shard_id, node, epoch: 0, model: base };
        handle.adopt(epoch);
        handle
    }

    /// Resolve the node-local replica of `(epoch, base)` for node index
    /// `node`, deep-cloning on this thread if the cell is stale. The
    /// caller must be pinned to that node for the first-touch contract.
    fn replica(&self, node: usize, epoch: u64, base: &Arc<TabularModel>) -> Arc<TabularModel> {
        let mut cell = self.replicas[node].lock().unwrap_or_else(PoisonError::into_inner);
        match &*cell {
            Some((e, model)) if *e == epoch => Arc::clone(model),
            _ => {
                // First worker on this node to adopt `epoch`: deep-copy
                // the arenas node-locally. Replacing the cell drops the
                // previous epoch's replica once its last adopter moves.
                let local = Arc::new(base.deep_clone());
                *cell = Some((epoch, Arc::clone(&local)));
                local
            }
        }
    }
}

/// One shard worker's private view of the [`ModelSlot`]: the adopted
/// `(epoch, model)` pair plus the change-detection fast path.
pub(crate) struct ModelHandle {
    slot: Arc<ModelSlot>,
    shard_id: usize,
    /// Topology node index whose replica cell this worker serves from
    /// (`None` = the base model; unpinned or single-node).
    node: Option<usize>,
    epoch: u64,
    model: Arc<TabularModel>,
}

impl ModelHandle {
    /// The model to serve the next batch with. One atomic load when
    /// nothing changed (the overwhelmingly common case); on an epoch
    /// change, adopts the new version (slot lock + optional node-local
    /// deep clone) before returning. Call once per batch boundary and
    /// use the returned `Arc` for the whole batch.
    pub fn current(&mut self) -> &Arc<TabularModel> {
        let stamp = self.slot.stamp.load(Ordering::Acquire);
        if stamp != self.epoch {
            self.adopt(stamp);
        }
        &self.model
    }

    /// The epoch this handle last adopted. (The production observer path
    /// reads [`ModelSlot::adopted_epochs`] instead; this accessor exists
    /// for the protocol unit tests.)
    #[cfg(test)]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Adopt the authoritative pair (re-read under the slot lock — the
    /// `hint` stamp only told us *something* changed), refresh the node
    /// replica if this worker serves from one, and publish the adoption
    /// so observers can see this shard moved.
    fn adopt(&mut self, _hint: u64) {
        let (epoch, base) = self.slot.current();
        self.model = match self.node {
            Some(idx) => self.slot.replica(idx, epoch, &base),
            None => base,
        };
        self.epoch = epoch;
        // Release pairs with observers' Acquire: the handle's model
        // switch above happens-before anyone sees the new adopted epoch.
        self.slot.adopted[self.shard_id].store(epoch, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_core::config::TabularConfig;
    use dart_core::tabularize::tabularize;
    use dart_nn::init::InitRng;
    use dart_nn::matrix::Matrix;
    use dart_nn::model::{AccessPredictor, ModelConfig};

    fn tiny_model(seed: u64) -> Arc<TabularModel> {
        let cfg = ModelConfig {
            input_dim: 4,
            dim: 8,
            heads: 2,
            layers: 1,
            ffn_dim: 16,
            output_dim: 6,
            seq_len: 4,
        };
        let student = AccessPredictor::new(cfg, seed).unwrap();
        let mut rng = InitRng::new(seed ^ 0x9E37);
        let x = Matrix::from_fn(16 * 4, 4, |_, _| rng.next_f32());
        let tab = TabularConfig { k: 4, c: 2, fine_tune_epochs: 0, ..Default::default() };
        Arc::new(tabularize(&student, &x, &tab).0)
    }

    #[test]
    fn install_bumps_epoch_and_handle_adopts_at_boundary() {
        let m1 = tiny_model(1);
        let slot = Arc::new(ModelSlot::new(Arc::clone(&m1), 1, 2));
        assert_eq!(slot.epoch(), 1);
        let mut h = slot.handle(0, None);
        assert_eq!(h.epoch(), 1);
        assert!(Arc::ptr_eq(h.current(), &m1), "handle must serve the installed model");

        let m2 = tiny_model(2);
        let e2 = slot.install(Arc::clone(&m2));
        assert_eq!(e2, 2);
        assert_eq!(slot.epoch(), 2);
        // The handle only moves when asked at a batch boundary.
        assert!(Arc::ptr_eq(h.current(), &m2));
        assert_eq!(h.epoch(), 2);
        assert_eq!(slot.adopted_epochs(), vec![2, 0], "shard 1 never adopted");
        assert_eq!(slot.min_adopted_epoch(), 0);
    }

    #[test]
    fn old_version_is_reclaimed_once_every_handle_moves() {
        let m1 = tiny_model(3);
        let slot = Arc::new(ModelSlot::new(Arc::clone(&m1), 1, 2));
        let mut h0 = slot.handle(0, None);
        let mut h1 = slot.handle(1, None);
        slot.install(tiny_model(4));
        h0.current();
        assert!(Arc::strong_count(&m1) > 1, "shard 1 still holds version 1");
        h1.current();
        // Only the test's own `m1` reference remains: the slot and both
        // handles dropped theirs — the "reclaimed only after every shard
        // has moved past it" contract, enforced by refcount.
        assert_eq!(Arc::strong_count(&m1), 1);
        assert_eq!(slot.min_adopted_epoch(), 2);
    }

    #[test]
    fn node_replica_is_cloned_once_per_epoch_and_refreshed_on_swap() {
        let m1 = tiny_model(5);
        let slot = Arc::new(ModelSlot::new(Arc::clone(&m1), 2, 3));
        // Two workers on node 0: one replica clone, shared.
        let mut h0 = slot.handle(0, Some(0));
        let mut h1 = slot.handle(1, Some(0));
        let r0 = Arc::clone(h0.current());
        assert!(!Arc::ptr_eq(&r0, &m1), "node replica must be a distinct allocation");
        assert!(Arc::ptr_eq(&r0, h1.current()), "same-node workers share one replica");
        // A worker on node 1 gets its own clone.
        let mut h2 = slot.handle(2, Some(1));
        assert!(!Arc::ptr_eq(h2.current(), &r0));
        // Replicas are bit-identical to the base (same serialized form).
        assert_eq!(r0.to_json(), m1.to_json());

        // Swap: each node re-clones once; the old replica is dropped.
        let m2 = tiny_model(6);
        slot.install(Arc::clone(&m2));
        let r0b = Arc::clone(h0.current());
        assert!(!Arc::ptr_eq(&r0b, &r0), "node 0 replica must refresh");
        assert_eq!(r0b.to_json(), m2.to_json());
        assert!(Arc::ptr_eq(&r0b, h1.current()));
        h2.current();
        assert_eq!(Arc::strong_count(&r0), 1, "stale node-0 replica must be reclaimed");
        assert_eq!(slot.min_adopted_epoch(), 2);
    }
}
