//! Deliberately violating mini-tree: the negative gate test runs the
//! dart-audit binary over this directory and asserts a non-zero exit.

pub fn seeded_violation() {
    let x = 42u8;
    let _ = unsafe { *(&x as *const u8) }; // no SAFETY comment on purpose
}
