//! Property-based and corpus tests of the wire decoder: it must never
//! panic and never mis-frame, for any byte stream and any TCP
//! segmentation of a valid one.

use dart_net::wire::{
    encode_frame, encode_request, Frame, FrameDecoder, NackFrame, RequestFrame, ResponseFrame,
    MAX_BLOCKS,
};
use proptest::prelude::*;

const FULL_U32: std::ops::Range<u32> = 0..u32::MAX;
const FULL_U64: std::ops::Range<u64> = 0..u64::MAX;

/// Any frame kind with fully random field values (the vendored proptest
/// has no `prop_oneof`, so a drawn selector picks the variant).
fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        0u8..3,
        (FULL_U32, FULL_U64, FULL_U64),
        proptest::bool::ANY,
        proptest::collection::vec(FULL_U64, 0..=MAX_BLOCKS),
    )
        .prop_map(|(kind, (stream, a, b), failed, blocks)| match kind {
            0 => Frame::Request(RequestFrame { stream, pc: a, addr: b }),
            1 => Frame::Nack(NackFrame { stream, addr: a, depth: b }),
            _ => Frame::Response(ResponseFrame { stream, seq: a, latency_ns: b, failed, blocks }),
        })
}

/// Drain every decodable frame, swallowing (but not panicking on) a
/// wire error.
fn drain(dec: &mut FrameDecoder) -> (Vec<Frame>, bool) {
    let mut frames = Vec::new();
    loop {
        match dec.next() {
            Ok(Some(f)) => frames.push(f),
            Ok(None) => return (frames, false),
            Err(_) => return (frames, true),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary garbage: the decoder returns frames or typed errors,
    /// never panics, never reads out of bounds.
    #[test]
    fn garbage_never_panics(
        bytes in proptest::collection::vec((0u16..256).prop_map(|v| v as u8), 0..512),
    ) {
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        let _ = drain(&mut dec);
    }

    /// Any sequence of valid frames, re-chunked at arbitrary split
    /// points, decodes to exactly the original sequence — no frame lost,
    /// duplicated, reordered, or corrupted by segmentation.
    #[test]
    fn split_reads_never_misframe(
        frames in proptest::collection::vec(frame_strategy(), 1..8),
        splits in proptest::collection::vec(1usize..64, 0..32),
    ) {
        let mut bytes = Vec::new();
        for f in &frames {
            encode_frame(f, &mut bytes);
        }
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut at = 0usize;
        for chunk in &splits {
            let end = (at + chunk).min(bytes.len());
            dec.extend(&bytes[at..end]);
            let (got, err) = drain(&mut dec);
            prop_assert!(!err, "valid bytes must not error");
            decoded.extend(got);
            at = end;
        }
        dec.extend(&bytes[at..]);
        let (got, err) = drain(&mut dec);
        prop_assert!(!err);
        decoded.extend(got);
        prop_assert_eq!(decoded, frames);
    }

    /// A truncated valid frame is "need more bytes", never an error and
    /// never a bogus frame.
    #[test]
    fn truncation_is_incomplete_not_an_error(
        frame in frame_strategy(),
        cut in 0usize..100,
    ) {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        let cut = cut.min(bytes.len().saturating_sub(1));
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes[..cut]);
        prop_assert_eq!(dec.next(), Ok(None));
    }

    /// Flipping a header byte of a valid frame yields a typed error (or,
    /// for a mutation landing on another valid kind, at worst a clean
    /// partial decode) — never a panic.
    #[test]
    fn corrupted_headers_never_panic(
        frame in frame_strategy(),
        byte in 0usize..4,
        xor in (1u16..256).prop_map(|v| v as u8),
    ) {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        bytes[byte] ^= xor;
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        let _ = drain(&mut dec);
    }
}

/// A fixed corpus of adversarial streams, exercised byte-by-byte — the
/// worst possible TCP segmentation.
#[test]
fn corpus_byte_by_byte_never_panics_or_misframes() {
    let mut valid = Vec::new();
    encode_request(&RequestFrame { stream: 1, pc: 2, addr: 3 }, &mut valid);

    let mut corpus: Vec<Vec<u8>> = vec![
        vec![],
        vec![0xDA],
        vec![0xDA, 0x7A],
        vec![0xDA, 0x7A, 1],
        vec![0xDA, 0x7A, 0, 1],   // bad version
        vec![0xDA, 0x7A, 1, 200], // bad kind
        vec![0x7A, 0xDA, 1, 1],   // swapped magic
        b"GET /metrics HTTP/1.1\r\n\r\n".to_vec(),
        vec![0xFF; 64],
        vec![0x00; 64],
        valid.clone(),
    ];
    // Response claiming 255 blocks but carrying none: must wait for more
    // bytes, not read out of bounds.
    corpus.push(vec![
        0xDA, 0x7A, 1, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 255,
    ]);
    // Valid frame followed by garbage: the frame decodes, the garbage
    // errors.
    let mut mixed = valid.clone();
    mixed.extend_from_slice(&[0x99; 32]);
    corpus.push(mixed);

    for stream in corpus {
        let mut dec = FrameDecoder::new();
        let mut errored = false;
        for &b in &stream {
            if errored {
                break;
            }
            dec.extend(std::slice::from_ref(&b));
            loop {
                match dec.next() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => {
                        errored = true;
                        break;
                    }
                }
            }
        }
    }
}
