//! Behavioral tests of the work-stealing pool itself: stealing under
//! imbalanced load, nested `par_*` without deadlock, and panic propagation
//! with the pool surviving.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use rayon::prelude::*;
use rayon::ThreadPool;

/// Jobs spawned into one worker's deque while that worker is busy can only
/// complete if another thread steals them. The busy worker spins (without
/// helping) until every spawned job has run, so completion *is* the proof
/// of stealing.
#[test]
fn idle_workers_steal_from_a_busy_workers_deque() {
    let pool = ThreadPool::new(2);
    let done = AtomicUsize::new(0);
    let jobs = 16;
    pool.scope(|s| {
        s.spawn(|| {
            // Now running on a pool worker: nested spawns land in THIS
            // worker's local deque.
            pool.scope(|inner| {
                for _ in 0..jobs {
                    inner.spawn(|| {
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                }
                // Hog this worker with a non-helping spin. The other worker
                // (or the scoping thread) must steal every queued job.
                let deadline = Instant::now() + Duration::from_secs(30);
                while done.load(Ordering::SeqCst) < jobs {
                    assert!(Instant::now() < deadline, "no thief took the queued jobs");
                    std::hint::spin_loop();
                }
            });
        });
    });
    assert_eq!(done.load(Ordering::SeqCst), jobs);
}

/// Two jobs rendezvous on a barrier: both can only get through if two
/// *different* threads pick them up concurrently.
#[test]
fn imbalanced_jobs_spread_across_threads() {
    let pool = ThreadPool::new(2);
    let barrier = Barrier::new(2);
    let runners: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
    pool.scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                runners.lock().unwrap().insert(std::thread::current().id());
                barrier.wait();
            });
        }
    });
    assert_eq!(runners.lock().unwrap().len(), 2, "both jobs ran on one thread");
}

/// A grossly imbalanced `par_chunks_mut` workload: one chunk is ~100x the
/// others. All chunks must complete and produce exactly the sequential
/// result (stealing redistributes, never corrupts).
#[test]
fn imbalanced_chunk_costs_still_compute_exactly() {
    let pool = ThreadPool::new(4);
    let n = 64usize;
    let mut out = vec![0u64; n];
    pool.install(|| {
        out.par_chunks_mut(1).enumerate().for_each(|(i, chunk)| {
            // Chunk 0 does ~100x the iterations of every other chunk.
            let iters = if i == 0 { 1_000_000u64 } else { 10_000 };
            let mut acc = i as u64;
            for k in 0..iters {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            chunk[0] = acc;
        });
    });
    let mut expect = vec![0u64; n];
    for (i, slot) in expect.iter_mut().enumerate() {
        let iters = if i == 0 { 1_000_000u64 } else { 10_000 };
        let mut acc = i as u64;
        for k in 0..iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
        }
        *slot = acc;
    }
    assert_eq!(out, expect);
}

/// Nested `par_*` calls must not deadlock: the outer job's scope-wait helps
/// execute the inner jobs. Exercised on a one-thread pool (worst case: the
/// single worker must run everything itself) and a four-thread pool.
#[test]
fn nested_par_calls_do_not_deadlock() {
    for threads in [1usize, 4] {
        let pool = ThreadPool::new(threads);
        let result: Vec<Vec<usize>> = pool.install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|outer| {
                    // Inner parallel call from inside a pool job.
                    (0..32usize).into_par_iter().map(|inner| outer * 100 + inner).collect()
                })
                .collect()
        });
        for (outer, row) in result.iter().enumerate() {
            let expect: Vec<usize> = (0..32).map(|inner| outer * 100 + inner).collect();
            assert_eq!(row, &expect, "threads {threads}, outer {outer}");
        }
    }
}

/// Three levels of nesting on a tiny pool, mixing chunk and range drivers.
#[test]
fn triple_nesting_on_a_tiny_pool() {
    let pool = ThreadPool::new(2);
    let mut data = vec![0usize; 4 * 4 * 4];
    pool.install(|| {
        data.par_chunks_mut(16).enumerate().for_each(|(a, block)| {
            block.par_chunks_mut(4).enumerate().for_each(|(b, row)| {
                let vals: Vec<usize> = (0..4usize).into_par_iter().map(|c| a + b + c).collect();
                row.copy_from_slice(&vals);
            });
        });
    });
    for (idx, &v) in data.iter().enumerate() {
        let (a, b, c) = (idx / 16, (idx / 4) % 4, idx % 4);
        assert_eq!(v, a + b + c);
    }
}

/// A panicking closure propagates to the caller of the parallel op...
#[test]
fn worker_panic_propagates_to_caller() {
    let pool = ThreadPool::new(2);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            (0..64usize).into_par_iter().for_each(|i| {
                if i == 37 {
                    panic!("boom at {i}");
                }
            });
        });
    }));
    let payload = outcome.expect_err("panic must cross the pool boundary");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("boom at 37"), "unexpected payload: {msg:?}");

    // ...and the pool stays fully usable afterwards.
    let doubled: Vec<usize> = pool.install(|| {
        let v: Vec<usize> = (0..100).collect();
        v.par_iter().map(|&x| x * 2).collect()
    });
    assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
}

/// Scope-level spawns propagate panics the same way.
#[test]
fn scope_spawn_panic_propagates_and_pool_survives() {
    let pool = ThreadPool::new(2);
    let survived = AtomicUsize::new(0);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|s| {
            s.spawn(|| panic!("scoped boom"));
            s.spawn(|| {
                survived.fetch_add(1, Ordering::SeqCst);
            });
        });
    }));
    assert!(outcome.is_err(), "scope must rethrow the job panic");
    // The sibling job still ran (the scope waits for ALL jobs, panic or not).
    assert_eq!(survived.load(Ordering::SeqCst), 1);

    let mut buf = vec![0u8; 16];
    pool.scope(|s| {
        for (i, slot) in buf.iter_mut().enumerate() {
            s.spawn(move || *slot = i as u8);
        }
    });
    assert_eq!(buf, (0..16).collect::<Vec<u8>>());
}

/// A job helped along by the scope-waiting thread (which never called
/// `install`) still runs with its owning pool as the current pool: nested
/// `par_*` inside it must target the explicit pool, not silently fall back
/// to the process-global one (which would both break the thread bound and
/// make the executing pool depend on who stole the job).
#[test]
fn helped_jobs_keep_their_pools_context() {
    let pool = ThreadPool::new(2);
    let release = AtomicUsize::new(0);
    let seen = AtomicUsize::new(0);
    pool.scope(|s| {
        // Two blockers occupy both workers (spun, not parked, so they
        // cannot help); the third job is then picked up by the scoping
        // thread's helping wait — the case under test. If a worker gets it
        // instead (benign race), the property still holds trivially.
        for _ in 0..2 {
            s.spawn(|| {
                let deadline = Instant::now() + Duration::from_secs(30);
                while release.load(Ordering::SeqCst) == 0 {
                    assert!(Instant::now() < deadline, "probe job never ran");
                    std::hint::spin_loop();
                }
            });
        }
        s.spawn(|| {
            seen.store(rayon::current_num_threads(), Ordering::SeqCst);
            release.store(1, Ordering::SeqCst);
        });
    });
    // The global pool on this machine is sized by available parallelism /
    // DART_NUM_THREADS — almost never 2 — so falling back to it would
    // report a different count here.
    assert_eq!(seen.load(Ordering::SeqCst), 2, "nested context left the owning pool");
}

/// Every thread count produces bit-identical collect output.
#[test]
fn outputs_are_thread_count_invariant() {
    let input: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
    let reference: Vec<f32> = input.iter().map(|&x| x * x + 1.0).collect();
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        let got: Vec<f32> = pool.install(|| input.par_iter().map(|&x| x * x + 1.0).collect());
        // Bit-exact, not approx: compare the raw bits.
        let got_bits: Vec<u32> = got.iter().map(|f| f.to_bits()).collect();
        let ref_bits: Vec<u32> = reference.iter().map(|f| f.to_bits()).collect();
        assert_eq!(got_bits, ref_bits, "threads {threads}");
    }
}
