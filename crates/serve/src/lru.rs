//! Bounded LRU map for per-stream history state.
//!
//! The fix for the serving layer's one unbounded memory consumer: each
//! shard used to hold `HashMap<u64, StreamState>` that grew with every
//! stream id it had *ever* seen, so stream-id churn (sessions coming and
//! going, the north-star "millions of user streams" case) leaked memory
//! without bound. [`StreamLru`] caps resident streams at
//! `ServeConfig::max_streams_per_shard`, evicting the least-recently-seen
//! stream when a new one arrives at capacity.
//!
//! An evicted stream that returns is indistinguishable from a brand-new
//! one: it re-warms from scratch (cold responses for its first
//! `seq_len - 1` accesses, per-stream `seq` restarting at 0) instead of
//! predicting on a stale window — a prediction over a window that
//! straddles the eviction gap would silently mix accesses separated by an
//! arbitrary amount of wall time.
//!
//! Implementation: an intrusive doubly-linked recency list threaded
//! through a slab, with a `HashMap` from stream id to slot. Every
//! operation is O(1), and eviction **recycles** the victim's slot and
//! `StreamState` allocation in place (via [`StreamState::reset`]), so a
//! shard at capacity performs zero steady-state allocation no matter how
//! many streams churn through it — same discipline as the worker's
//! feature-staging buffers.

use std::collections::HashMap;

use crate::stream::StreamState;

/// Sentinel slot index for "no neighbor".
const NIL: usize = usize::MAX;

struct Slot {
    key: u64,
    state: StreamState,
    /// Toward the most-recently-used end.
    prev: usize,
    /// Toward the least-recently-used end.
    next: usize,
}

/// A fixed-capacity LRU map from stream id to [`StreamState`].
pub struct StreamLru {
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    /// Most-recently-used slot, or `NIL` when empty.
    head: usize,
    /// Least-recently-used slot (the eviction victim), or `NIL`.
    tail: usize,
    /// Slots vacated by [`StreamLru::remove`], reused before `slots`
    /// grows — removal must not strand capacity.
    free: Vec<usize>,
    cap: usize,
    evictions: u64,
    retirements: u64,
}

impl StreamLru {
    /// An empty map holding at most `cap` streams (`cap` is clamped to at
    /// least 1 — a zero-capacity stream map could never warm anything).
    pub fn new(cap: usize) -> StreamLru {
        let cap = cap.max(1);
        StreamLru {
            // Pre-size only up to a sane bound: the cap is user-provided
            // config, and `with_capacity(usize::MAX)` (a plausible
            // "effectively unbounded" sentinel) must not abort the shard
            // worker with a capacity overflow. Beyond the bound the map
            // grows on demand like any HashMap.
            map: HashMap::with_capacity(cap.min(1 << 16)),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            cap,
            evictions: 0,
            retirements: 0,
        }
    }

    /// Resident streams.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no stream is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Streams evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Streams explicitly retired so far (via [`StreamLru::remove`] /
    /// [`StreamLru::retire_prefix`]) — counted separately from cap
    /// evictions, which measure pressure rather than lifecycle.
    pub fn retirements(&self) -> u64 {
        self.retirements
    }

    /// True when `key` is resident (does not touch recency).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// The state for `key`, marked most-recently-used. A missing key is
    /// inserted fresh (cold history for a model window of `seq_len`),
    /// evicting the least-recently-used stream first if the map is at
    /// capacity — the victim's slot and history allocation are recycled in
    /// place.
    pub fn entry(&mut self, key: u64, seq_len: usize) -> &mut StreamState {
        if let Some(&slot) = self.map.get(&key) {
            if slot != self.head {
                self.unlink(slot);
                self.push_front(slot);
            }
            return &mut self.slots[slot].state;
        }

        let slot = if self.map.len() == self.cap {
            // Evict the LRU stream and recycle its slot: reset the state
            // in place so the history VecDeque's allocation survives.
            let victim = self.tail;
            self.unlink(victim);
            let old_key = self.slots[victim].key;
            self.map.remove(&old_key);
            self.evictions += 1;
            self.slots[victim].key = key;
            self.slots[victim].state.reset();
            victim
        } else if let Some(slot) = self.free.pop() {
            // Reuse a retired stream's slot (and its history allocation)
            // before growing the slab.
            self.slots[slot].key = key;
            self.slots[slot].state.reset();
            slot
        } else {
            self.slots.push(Slot { key, state: StreamState::new(seq_len), prev: NIL, next: NIL });
            self.slots.len() - 1
        };
        self.map.insert(key, slot);
        self.push_front(slot);
        &mut self.slots[slot].state
    }

    /// Retire `key` outright (the stream's owner is gone — e.g. its
    /// connection disconnected). O(1); the slot goes onto the free list
    /// for reuse. Returns whether the key was resident.
    pub fn remove(&mut self, key: u64) -> bool {
        let Some(slot) = self.map.remove(&key) else {
            return false;
        };
        self.unlink(slot);
        self.free.push(slot);
        self.retirements += 1;
        true
    }

    /// Retire every resident stream whose upper-32-bit namespace equals
    /// `prefix` (the serving-layer convention: the network front-end
    /// namespaces wire stream ids as `conn_id << 32 | stream`, so one
    /// call frees everything a dead connection left behind). O(resident)
    /// — disconnects are rare next to per-request traffic. Returns how
    /// many streams were retired.
    pub fn retire_prefix(&mut self, prefix: u32) -> usize {
        let victims: Vec<u64> =
            self.map.keys().copied().filter(|&k| (k >> 32) as u32 == prefix).collect();
        for key in &victims {
            self.remove(*key);
        }
        victims.len()
    }

    /// Resident stream ids in most-recent-first order (diagnostics/tests).
    pub fn keys_by_recency(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut at = self.head;
        while at != NIL {
            out.push(self.slots[at].key);
            at = self.slots[at].next;
        }
        out
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_residency_and_evicts_in_lru_order() {
        let mut lru = StreamLru::new(3);
        for key in 0..3u64 {
            lru.entry(key, 4);
        }
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.keys_by_recency(), vec![2, 1, 0]);

        // Key 3 evicts 0 (the oldest), not anyone else.
        lru.entry(3, 4);
        assert_eq!(lru.len(), 3);
        assert!(!lru.contains(0));
        assert_eq!(lru.evictions(), 1);
        assert_eq!(lru.keys_by_recency(), vec![3, 2, 1]);
    }

    #[test]
    fn touch_refreshes_recency() {
        let mut lru = StreamLru::new(3);
        for key in 0..3u64 {
            lru.entry(key, 4);
        }
        // Touch 0 — now 1 is the LRU victim.
        lru.entry(0, 4);
        lru.entry(9, 4);
        assert!(lru.contains(0), "touched entry must survive");
        assert!(!lru.contains(1), "untouched LRU entry must be evicted");
    }

    #[test]
    fn churn_stays_bounded_and_counts_evictions() {
        let cap = 16;
        let mut lru = StreamLru::new(cap);
        for key in 0..10 * cap as u64 {
            let state = lru.entry(key, 4);
            state.push(key, 0);
            assert!(lru.len() <= cap);
        }
        assert_eq!(lru.len(), cap);
        assert_eq!(lru.evictions(), 9 * cap as u64);
    }

    #[test]
    fn readmitted_stream_gets_fresh_state() {
        let mut lru = StreamLru::new(2);
        // Warm stream 7 fully.
        for i in 0..4u64 {
            assert_eq!(lru.entry(7, 4).push(100 + i, 0), i);
        }
        assert!(lru.entry(7, 4).warm());
        // Churn it out...
        lru.entry(8, 4);
        lru.entry(9, 4);
        assert!(!lru.contains(7));
        // ...and back in: cold history, seq restarted — never a stale
        // window straddling the eviction gap.
        let state = lru.entry(7, 4);
        assert!(!state.warm());
        assert_eq!(state.requests(), 0);
        assert_eq!(state.push(500, 0), 0, "per-stream seq restarts after eviction");
    }

    #[test]
    fn huge_capacity_does_not_preallocate() {
        // usize::MAX as an "effectively unbounded" sentinel must behave
        // like a working (if never-evicting) map, not abort the worker
        // with a capacity-overflow panic at construction.
        let mut lru = StreamLru::new(usize::MAX);
        assert_eq!(lru.capacity(), usize::MAX);
        for key in 0..100u64 {
            lru.entry(key, 4).push(key, 0);
        }
        assert_eq!(lru.len(), 100);
        assert_eq!(lru.evictions(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut lru = StreamLru::new(0);
        assert_eq!(lru.capacity(), 1);
        lru.entry(1, 4);
        lru.entry(2, 4);
        assert_eq!(lru.len(), 1);
        assert!(lru.contains(2));
    }

    #[test]
    fn remove_frees_the_slot_for_reuse() {
        let mut lru = StreamLru::new(4);
        for key in 0..4u64 {
            lru.entry(key, 4).push(key, 0);
        }
        assert!(lru.remove(2));
        assert!(!lru.remove(2), "double-remove must report absence");
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.retirements(), 1);
        assert_eq!(lru.evictions(), 0, "retirement is not an eviction");
        assert_eq!(lru.keys_by_recency(), vec![3, 1, 0]);
        // The freed slot is recycled (cold state), not leaked: inserting
        // again reaches capacity without evicting anyone.
        let state = lru.entry(9, 4);
        assert_eq!(state.requests(), 0);
        assert_eq!(state.push(7, 0), 0, "recycled slot must start a fresh seq");
        assert_eq!(lru.len(), 4);
        assert_eq!(lru.evictions(), 0);
    }

    #[test]
    fn remove_handles_head_tail_and_middle() {
        let mut lru = StreamLru::new(8);
        for key in 0..3u64 {
            lru.entry(key, 4);
        }
        assert!(lru.remove(2), "head");
        assert_eq!(lru.keys_by_recency(), vec![1, 0]);
        assert!(lru.remove(0), "tail");
        assert_eq!(lru.keys_by_recency(), vec![1]);
        assert!(lru.remove(1), "last");
        assert!(lru.is_empty());
        assert_eq!(lru.keys_by_recency(), Vec::<u64>::new());
        // Links survive: the map refills cleanly after draining to empty.
        lru.entry(5, 4);
        lru.entry(6, 4);
        assert_eq!(lru.keys_by_recency(), vec![6, 5]);
    }

    #[test]
    fn retire_prefix_clears_one_namespace_only() {
        let mut lru = StreamLru::new(16);
        for conn in 1..=3u64 {
            for stream in 0..4u64 {
                lru.entry(conn << 32 | stream, 4);
            }
        }
        assert_eq!(lru.retire_prefix(2), 4);
        assert_eq!(lru.len(), 8);
        for stream in 0..4u64 {
            assert!(!lru.contains(2 << 32 | stream));
            assert!(lru.contains(1 << 32 | stream));
            assert!(lru.contains(3 << 32 | stream));
        }
        assert_eq!(lru.retirements(), 4);
        assert_eq!(lru.retire_prefix(2), 0, "already gone");
    }

    #[test]
    fn single_entry_touch_and_evict_keep_links_consistent() {
        let mut lru = StreamLru::new(1);
        lru.entry(5, 4);
        lru.entry(5, 4); // touch the head itself
        assert_eq!(lru.keys_by_recency(), vec![5]);
        lru.entry(6, 4);
        assert_eq!(lru.keys_by_recency(), vec![6]);
        assert_eq!(lru.evictions(), 1);
    }
}
