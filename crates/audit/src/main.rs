//! CLI for the workspace static-analysis gate.
//!
//! ```text
//! dart-audit [--root DIR] [--allowlist FILE|none] [--quiet]
//! ```
//!
//! Defaults: `--root .` (CI and `cargo run -p dart-audit` both execute from
//! the workspace root) and `--allowlist <root>/audit.toml`. A missing
//! allowlist file is an error unless `--allowlist none` is passed
//! explicitly — a gate that silently runs without its configuration would
//! report violations the allowlist reviewed away, or worse, hide the fact
//! that the allowlist path moved.
//!
//! Exit codes: `0` clean, `1` findings or stale allowlist entries, `2`
//! usage/configuration errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist_arg: Option<String> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_arg = Some(v),
                None => return usage("--allowlist needs a value"),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("usage: dart-audit [--root DIR] [--allowlist FILE|none] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let allowlist = match allowlist_arg.as_deref() {
        Some("none") => dart_audit::allowlist::Allowlist::default(),
        chosen => {
            let path = match chosen {
                Some(p) => PathBuf::from(p),
                None => root.join("audit.toml"),
            };
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(err) => {
                    eprintln!(
                        "dart-audit: cannot read allowlist {} ({err}); pass --allowlist none to \
                         run without one",
                        path.display()
                    );
                    return ExitCode::from(2);
                }
            };
            match dart_audit::allowlist::parse(&src) {
                Ok(list) => list,
                Err(err) => {
                    eprintln!("dart-audit: {}: {err}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match dart_audit::run(&root, &allowlist) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("dart-audit: scan failed under {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if !quiet {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule.id(), f.message);
        }
        for e in &report.stale {
            println!(
                "audit.toml:{}: [stale-allowlist] entry ({} {} contains={:?}) no longer matches \
                 any source line — remove it or fix the path/pattern",
                e.line,
                e.rule.id(),
                e.file,
                e.contains
            );
        }
        print!("{}", report.rule_table());
    }
    println!("{}", report.summary_line());

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("dart-audit: {msg}");
    eprintln!("usage: dart-audit [--root DIR] [--allowlist FILE|none] [--quiet]");
    ExitCode::from(2)
}
