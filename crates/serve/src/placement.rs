//! NUMA-aware shard placement policy.
//!
//! On a multi-socket machine every shard worker used to read one copy of
//! the model arenas, wherever the loading thread happened to first-touch
//! it — so half (or three quarters) of all table lookups paid the
//! cross-socket interconnect tax that tabularized inference exists to
//! avoid. [`ShardPlacement::NumaRoundRobin`] assigns shard workers
//! round-robin across NUMA nodes; each worker then, **in this order**:
//!
//! 1. pins itself to its node's cpuset, intersected with the thread's
//!    allowed CPUs (`dart-numa` raw `sched_setaffinity`; a reported no-op
//!    without the `numa` feature, and never a widening of a
//!    taskset/cgroup restriction),
//! 2. obtains its node's model replica — the first *successfully pinned*
//!    worker on each node `deep_clone`s the model *while pinned*, so
//!    Linux's first-touch policy places the replica's arena pages
//!    node-locally; later workers on the same node share that replica via
//!    `Arc`. A worker whose pin did not take (feature off, cgroup cpuset
//!    rejection) serves from the shared base model instead — an unpinned
//!    replica would spend memory without any locality guarantee — and
//!    reports it via `ServeStats::per_shard_pinned`,
//! 3. runs its serve loop, allocating its stream-state map and scratch
//!    buffers only now — also node-local by first touch.
//!
//! On a single-node topology (containers, laptops, the CI runner) the
//! plan still assigns every shard to node 0, but no replica is copied
//! (the original *is* node-local — there is only one node) and pinning to
//! the full cpuset changes nothing: behavior is bit-for-bit identical to
//! [`ShardPlacement::Disabled`], which is exactly what the placement
//! differential test proves.

use dart_numa::NumaTopology;

/// How shard workers are placed onto the machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardPlacement {
    /// Today's behavior: the OS scheduler places shard threads freely and
    /// every shard shares the one model allocation. The default.
    #[default]
    Disabled,
    /// Round-robin shards across NUMA nodes with CPUs; pin each worker to
    /// its node's cpuset and serve from a node-local model replica
    /// (first-touch allocated by a pinned thread).
    NumaRoundRobin,
}

/// Resolve a placement policy against a topology: the node id each shard
/// is assigned to (`None` = unplaced, scheduler's choice).
///
/// Memory-only nodes (no CPUs) are skipped — a worker pinned to an empty
/// cpuset cannot run. If *no* node has CPUs (a degenerate parse), the
/// whole plan degrades to unplaced rather than panicking a worker.
pub(crate) fn plan_placement(
    topology: &NumaTopology,
    shards: usize,
    placement: ShardPlacement,
) -> Vec<Option<usize>> {
    match placement {
        ShardPlacement::Disabled => vec![None; shards],
        ShardPlacement::NumaRoundRobin => {
            let usable: Vec<usize> =
                topology.nodes().iter().filter(|n| !n.cpus.is_empty()).map(|n| n.id).collect();
            if usable.is_empty() {
                return vec![None; shards];
            }
            (0..shards).map(|s| Some(usable[s % usable.len()])).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_numa::NumaNode;

    fn node(id: usize, cpus: Vec<usize>) -> NumaNode {
        NumaNode { id, cpus, mem_total_bytes: None }
    }

    #[test]
    fn disabled_plans_nothing() {
        let topo = NumaTopology::from_nodes(vec![node(0, vec![0]), node(1, vec![1])]);
        assert_eq!(plan_placement(&topo, 3, ShardPlacement::Disabled), vec![None, None, None]);
    }

    #[test]
    fn round_robin_cycles_nodes() {
        let topo = NumaTopology::from_nodes(vec![node(0, vec![0, 1]), node(1, vec![2, 3])]);
        let plan = plan_placement(&topo, 5, ShardPlacement::NumaRoundRobin);
        assert_eq!(plan, vec![Some(0), Some(1), Some(0), Some(1), Some(0)]);
    }

    #[test]
    fn single_node_assigns_everything_to_it() {
        let topo = NumaTopology::single_node_fallback();
        let plan = plan_placement(&topo, 4, ShardPlacement::NumaRoundRobin);
        assert_eq!(plan, vec![Some(0); 4]);
    }

    #[test]
    fn memory_only_nodes_are_skipped() {
        // Node 1 is a CPU-less memory expander; nobody gets pinned there.
        let topo = NumaTopology::from_nodes(vec![
            node(0, vec![0, 1]),
            node(1, vec![]),
            node(2, vec![2, 3]),
        ]);
        let plan = plan_placement(&topo, 4, ShardPlacement::NumaRoundRobin);
        assert_eq!(plan, vec![Some(0), Some(2), Some(0), Some(2)]);
    }

    #[test]
    fn all_memory_only_degrades_to_unplaced() {
        let topo = NumaTopology::from_nodes(vec![node(0, vec![]), node(1, vec![])]);
        assert_eq!(plan_placement(&topo, 2, ShardPlacement::NumaRoundRobin), vec![None, None]);
    }

    #[test]
    fn sparse_node_ids_round_robin_by_id() {
        // Offlined node 1: ids 0 and 2 remain.
        let topo = NumaTopology::from_nodes(vec![node(0, vec![0]), node(2, vec![1])]);
        let plan = plan_placement(&topo, 3, ShardPlacement::NumaRoundRobin);
        assert_eq!(plan, vec![Some(0), Some(2), Some(0)]);
    }
}
