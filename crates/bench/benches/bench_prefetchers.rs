//! Criterion: per-LLC-access cost of the online prefetchers (BO, ISB, DART).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dart_core::config::TabularConfig;
use dart_core::tabularize::tabularize;
use dart_nn::init::InitRng;
use dart_nn::matrix::Matrix;
use dart_nn::model::{AccessPredictor, ModelConfig};
use dart_prefetch::{BestOffset, DartPrefetcher, Isb};
use dart_sim::{LlcAccess, Prefetcher};
use dart_trace::PreprocessConfig;

fn accesses(n: usize) -> Vec<LlcAccess> {
    (0..n)
        .map(|i| {
            let block = 0x40_0000 + (i as u64 * 3) % 10_000;
            LlcAccess {
                seq: i,
                instr_id: i as u64 * 50,
                pc: 0x400000 + (i as u64 % 7) * 4,
                addr: block << 6,
                block,
                hit: i % 3 == 0,
            }
        })
        .collect()
}

fn dart_prefetcher() -> DartPrefetcher {
    let pre = PreprocessConfig::default();
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 32,
        heads: 2,
        layers: 1,
        ffn_dim: 128,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let student = AccessPredictor::new(cfg, 3).unwrap();
    let mut rng = InitRng::new(9);
    let train = Matrix::from_fn(300 * pre.seq_len, pre.input_dim(), |_, _| rng.next_f32());
    let tab_cfg = TabularConfig { k: 128, c: 2, fine_tune_epochs: 0, ..Default::default() };
    let (model, _) = tabularize(&student, &train, &tab_cfg);
    DartPrefetcher::with_latency("DART", model, pre, 97, 0.5, 8)
}

fn bench_prefetchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefetcher_on_access");
    group.sample_size(30);
    let stream = accesses(4096);

    let mut bo = BestOffset::new();
    let mut idx = 0usize;
    group.bench_function("best_offset", |b| {
        b.iter(|| {
            let out = bo.on_access(&stream[idx % stream.len()]);
            idx += 1;
            black_box(out)
        })
    });

    let mut isb = Isb::new();
    let mut idx = 0usize;
    group.bench_function("isb", |b| {
        b.iter(|| {
            let out = isb.on_access(&stream[idx % stream.len()]);
            idx += 1;
            black_box(out)
        })
    });

    let mut dart = dart_prefetcher();
    let mut idx = 0usize;
    group.bench_function("dart_tables", |b| {
        b.iter(|| {
            let out = dart.on_access(&stream[idx % stream.len()]);
            idx += 1;
            black_box(out)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_prefetchers);
criterion_main!(benches);
