//! Trace serialization: a compact binary format (24 bytes/record) and a
//! whitespace text format for debugging.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::record::TraceRecord;

/// Magic bytes heading a binary trace file.
const MAGIC: &[u8; 8] = b"DARTTRC1";

/// Write records in binary form.
pub fn write_binary<W: Write>(writer: W, records: &[TraceRecord]) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    let mut buf = [0u8; 24];
    w.write_all(&(records.len() as u64).to_le_bytes())?;
    for r in records {
        buf[..8].copy_from_slice(&r.instr_id.to_le_bytes());
        buf[8..16].copy_from_slice(&r.pc.to_le_bytes());
        buf[16..].copy_from_slice(&r.addr.to_le_bytes());
        w.write_all(&buf)?;
    }
    w.flush()
}

/// Read records written by [`write_binary`].
pub fn read_binary<R: Read>(reader: R) -> io::Result<Vec<TraceRecord>> {
    let mut r = BufReader::new(reader);
    let mut header = [0u8; 16];
    r.read_exact(&mut header)?;
    if &header[..8] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad trace magic"));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
    let mut raw = vec![0u8; count * 24];
    r.read_exact(&mut raw)?;
    let mut records = Vec::with_capacity(count);
    for rec in raw.chunks_exact(24) {
        records.push(TraceRecord {
            instr_id: u64::from_le_bytes(rec[..8].try_into().unwrap()),
            pc: u64::from_le_bytes(rec[8..16].try_into().unwrap()),
            addr: u64::from_le_bytes(rec[16..].try_into().unwrap()),
        });
    }
    Ok(records)
}

/// Write a trace to a file path (binary format).
pub fn save(path: impl AsRef<Path>, records: &[TraceRecord]) -> io::Result<()> {
    write_binary(std::fs::File::create(path)?, records)
}

/// Load a trace from a file path (binary format).
pub fn load(path: impl AsRef<Path>) -> io::Result<Vec<TraceRecord>> {
    read_binary(std::fs::File::open(path)?)
}

/// Write records as `instr_id pc addr` hex lines.
pub fn write_text<W: Write>(writer: W, records: &[TraceRecord]) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for r in records {
        writeln!(w, "{} {:x} {:x}", r.instr_id, r.pc, r.addr)?;
    }
    w.flush()
}

/// Read records written by [`write_text`].
pub fn read_text<R: Read>(reader: R) -> io::Result<Vec<TraceRecord>> {
    let r = BufReader::new(reader);
    let mut records = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |s: Option<&str>, radix: u32| -> io::Result<u64> {
            let s = s.ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing field", lineno + 1),
                )
            })?;
            u64::from_str_radix(s, radix).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", lineno + 1))
            })
        };
        records.push(TraceRecord {
            instr_id: parse(parts.next(), 10)?,
            pc: parse(parts.next(), 16)?,
            addr: parse(parts.next(), 16)?,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        (0..100)
            .map(|i| TraceRecord {
                instr_id: i * 7,
                pc: 0x400000 + (i % 5) * 4,
                addr: 0x10000000 + i * 64,
            })
            .collect()
    }

    #[test]
    fn binary_roundtrip() {
        let records = sample();
        let mut buf = Vec::new();
        write_binary(&mut buf, &records).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(records, back);
    }

    #[test]
    fn text_roundtrip() {
        let records = sample();
        let mut buf = Vec::new();
        write_text(&mut buf, &records).unwrap();
        let back = read_text(&buf[..]).unwrap();
        assert_eq!(records, back);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let input = "# comment\n\n5 400 1000\n";
        let back = read_text(input.as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].instr_id, 5);
        assert_eq!(back[0].pc, 0x400);
        assert_eq!(back[0].addr, 0x1000);
    }

    #[test]
    fn rejects_bad_magic() {
        let garbage = [0u8; 32];
        assert!(read_binary(&garbage[..]).is_err());
    }

    #[test]
    fn rejects_malformed_text() {
        assert!(read_text("1 zz".as_bytes()).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &[]).unwrap();
        assert!(read_binary(&buf[..]).unwrap().is_empty());
    }
}
