//! The model registry: version metadata, promotion/rollback bookkeeping,
//! and the publishing front of the [`ModelSlot`].
//!
//! Every version that ever reached the slot has a record here — id
//! (identical to the slot epoch it was installed as), provenance,
//! training window, evaluation score, content fingerprint, and lifecycle
//! state. Rejected candidates (the A/B gate said no) are recorded too,
//! in a separate list, so a scrape of the registry tells the whole
//! promotion story. The registry retains the active version's model
//! **and its predecessor's** so [`ModelRegistry::rollback`] can restore
//! the previous version without re-training; older models are dropped
//! (their metadata stays).

use dart_telemetry::lockcheck::{named_mutex, Mutex};
use std::sync::{Arc, PoisonError};

use dart_core::TabularModel;

use crate::slot::ModelSlot;

/// Lifecycle state of a published version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VersionState {
    /// Currently installed in the slot.
    Active,
    /// Replaced by a newer promotion.
    Superseded,
    /// Replaced by an explicit rollback.
    RolledBack,
}

/// Metadata for one published model version.
#[derive(Clone, Debug)]
pub struct ModelVersion {
    /// Version id — identical to the slot epoch the model was installed
    /// as, so `ServeStats::model_version` indexes directly into this.
    pub id: u64,
    /// Where the version came from (`"startup"`, `"shadow-retrain"`,
    /// `"rollback to version N"`, or caller-supplied).
    pub provenance: String,
    /// Replay-sample counter range `[start, end)` the version was
    /// trained on (`None` for models trained outside the shadow loop).
    pub training_window: Option<(u64, u64)>,
    /// Held-out evaluation score (F1) at promotion time, if evaluated.
    pub eval_f1: Option<f64>,
    /// Content fingerprint ([`TabularModel::fingerprint`]): bit-identical
    /// models — e.g. a `deep_clone` — share a fingerprint, so operators
    /// can tell a no-op swap from a real model change.
    pub fingerprint: u64,
    /// Lifecycle state.
    pub state: VersionState,
}

/// A candidate the A/B gate refused to promote. Never entered the slot,
/// so it has no version id.
#[derive(Clone, Debug)]
pub struct RejectedCandidate {
    /// Where the candidate came from.
    pub provenance: String,
    /// The candidate's held-out F1.
    pub eval_f1: f64,
    /// The incumbent's F1 on the same held-out set (what it had to beat).
    pub incumbent_f1: f64,
}

/// Monotone swap/rollback/rejection counters (surfaced in `ServeStats`
/// and the plaintext exposition).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryCounters {
    /// Successful slot installs after startup (promotions + rollbacks).
    pub swaps: u64,
    /// Explicit rollbacks (each also counts as a swap).
    pub rollbacks: u64,
    /// Candidates the A/B gate rejected.
    pub rejections: u64,
}

struct RegistryInner {
    versions: Vec<ModelVersion>,
    rejected: Vec<RejectedCandidate>,
    /// `(id, model)` of the active version and its predecessor — the
    /// rollback inventory. Capped at 2; older models are released.
    retained: Vec<(u64, Arc<TabularModel>)>,
    counters: RegistryCounters,
}

/// The registry fronting one [`ModelSlot`] (one per `ServeRuntime`).
pub struct ModelRegistry {
    slot: Arc<ModelSlot>,
    inner: Mutex<RegistryInner>,
}

impl ModelRegistry {
    /// Wrap `slot`, recording its startup model as version 1.
    pub fn new(slot: Arc<ModelSlot>) -> ModelRegistry {
        let (id, model) = slot.current();
        let startup = ModelVersion {
            id,
            provenance: "startup".to_string(),
            training_window: None,
            eval_f1: None,
            fingerprint: model.fingerprint(),
            state: VersionState::Active,
        };
        ModelRegistry {
            slot,
            inner: named_mutex(
                "serve.model_registry",
                RegistryInner {
                    versions: vec![startup],
                    rejected: Vec::new(),
                    retained: vec![(id, model)],
                    counters: RegistryCounters::default(),
                },
            ),
        }
    }

    /// The slot this registry publishes through.
    pub fn slot(&self) -> &Arc<ModelSlot> {
        &self.slot
    }

    /// The active version id (== slot epoch).
    pub fn active_version(&self) -> u64 {
        self.slot.epoch()
    }

    /// The active `(version id, model)` pair.
    pub fn active(&self) -> (u64, Arc<TabularModel>) {
        self.slot.current()
    }

    /// Install `model` as a new version and return its id. Workers adopt
    /// it at their next batch boundary; the previous version is retained
    /// for [`Self::rollback`] and marked [`VersionState::Superseded`].
    pub fn publish(
        &self,
        model: Arc<TabularModel>,
        provenance: &str,
        training_window: Option<(u64, u64)>,
        eval_f1: Option<f64>,
    ) -> u64 {
        let fingerprint = model.fingerprint();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let id = self.slot.install(Arc::clone(&model));
        self.record_install(
            &mut inner,
            ModelVersion {
                id,
                provenance: provenance.to_string(),
                training_window,
                eval_f1,
                fingerprint,
                state: VersionState::Active,
            },
            model,
            VersionState::Superseded,
        );
        id
    }

    /// Re-install the previous version's model as a **new** version
    /// (epochs never move backwards — workers still adopt forward) and
    /// return its id. `None` when there is no predecessor to roll back
    /// to. The abandoned version is marked [`VersionState::RolledBack`].
    pub fn rollback(&self) -> Option<u64> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        // retained = [predecessor, active]; the predecessor is what we
        // restore. With only the startup entry there is nothing to do.
        if inner.retained.len() < 2 {
            return None;
        }
        let (prev_id, model) = inner.retained[0].clone();
        let prev_meta = inner.versions.iter().find(|v| v.id == prev_id);
        let (eval_f1, training_window, fingerprint) = match prev_meta {
            Some(v) => (v.eval_f1, v.training_window, v.fingerprint),
            None => (None, None, model.fingerprint()),
        };
        let id = self.slot.install(Arc::clone(&model));
        self.record_install(
            &mut inner,
            ModelVersion {
                id,
                provenance: format!("rollback to version {prev_id}"),
                training_window,
                eval_f1,
                fingerprint,
                state: VersionState::Active,
            },
            model,
            VersionState::RolledBack,
        );
        inner.counters.rollbacks += 1;
        Some(id)
    }

    /// Shared bookkeeping of a slot install: demote the old active
    /// record to `demote_to`, append the new record, rotate the retained
    /// models, and count the swap.
    fn record_install(
        &self,
        inner: &mut RegistryInner,
        record: ModelVersion,
        model: Arc<TabularModel>,
        demote_to: VersionState,
    ) {
        if let Some(active) = inner.versions.iter_mut().find(|v| v.state == VersionState::Active) {
            active.state = demote_to;
        }
        inner.retained.push((record.id, model));
        if inner.retained.len() > 2 {
            inner.retained.remove(0);
        }
        inner.versions.push(record);
        inner.counters.swaps += 1;
    }

    /// Record a candidate the A/B gate refused (it never touched the
    /// slot; see [`crate::shadow`]).
    pub fn record_rejection(&self, provenance: &str, eval_f1: f64, incumbent_f1: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.rejected.push(RejectedCandidate {
            provenance: provenance.to_string(),
            eval_f1,
            incumbent_f1,
        });
        inner.counters.rejections += 1;
    }

    /// Every published version's metadata, oldest first.
    pub fn versions(&self) -> Vec<ModelVersion> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).versions.clone()
    }

    /// Every rejected candidate, oldest first.
    pub fn rejected(&self) -> Vec<RejectedCandidate> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).rejected.clone()
    }

    /// The monotone swap/rollback/rejection counters.
    pub fn counters(&self) -> RegistryCounters {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).counters
    }

    /// Whether every shard has adopted version `id` or newer — i.e. no
    /// shard can still serve a batch on anything older, so versions
    /// `< id` are fully reclaimed (their last `Arc`s dropped). Shards
    /// that never served a batch report epoch 0 and hold this `false`;
    /// they may still adopt an old epoch's successor lazily.
    pub fn fully_adopted(&self, id: u64) -> bool {
        self.slot.min_adopted_epoch() >= id
    }
}
