//! Criterion micro-benchmarks: tabularization kernels vs. the dense
//! operations they replace (the software view of Table V's acceleration).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dart_nn::init::InitRng;
use dart_nn::matrix::Matrix;
use dart_pq::{AttentionTable, AttentionTableConfig, EncoderKind, LinearTable};

fn rand_matrix(r: usize, c: usize, seed: u64) -> Matrix {
    let mut rng = InitRng::new(seed);
    Matrix::from_fn(r, c, |_, _| rng.normal())
}

fn bench_linear_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_kernel");
    group.sample_size(30);
    // DART-sized linear: T=16 tokens, D_I=32, D_O=128.
    let (t, di, dout) = (16usize, 32usize, 128usize);
    let train = rand_matrix(2000, di, 1);
    let w = rand_matrix(dout, di, 2);
    let b = vec![0.1f32; dout];
    let x = rand_matrix(t, di, 3);

    group.bench_function("dense_matmul", |bench| {
        bench.iter(|| black_box(x.matmul_transb(&w).add_row_broadcast(&b)))
    });
    for (name, encoder) in
        [("table_argmin_k128", EncoderKind::Argmin), ("table_hashtree_k128", EncoderKind::HashTree)]
    {
        let table = LinearTable::fit(&train, &w, &b, 2, 128, encoder, 7);
        group.bench_function(name, |bench| bench.iter(|| black_box(table.query(&x))));
    }
    group.finish();
}

fn bench_attention_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_kernel");
    // One DART head: T=16, D_h=16.
    let (t, dh) = (16usize, 16usize);
    let q = rand_matrix(100 * t, dh, 11);
    let k = rand_matrix(100 * t, dh, 12);
    let v = rand_matrix(100 * t, dh, 13);
    let cfg = AttentionTableConfig { k: 128, ck: 2, ct: 2, ..Default::default() };
    let table = AttentionTable::fit(&q, &k, &v, t, &cfg);
    let cfg_tree = AttentionTableConfig {
        k: 128,
        ck: 2,
        ct: 2,
        encoder: EncoderKind::HashTree,
        ..Default::default()
    };
    let table_tree = AttentionTable::fit(&q, &k, &v, t, &cfg_tree);

    let qs = q.slice_rows(0, t);
    let ks = k.slice_rows(0, t);
    let vs = v.slice_rows(0, t);

    group.bench_function("dense_softmax_attention", |bench| {
        bench.iter(|| {
            let mut s = qs.matmul_transb(&ks);
            s.scale_assign(1.0 / (dh as f32).sqrt());
            black_box(s.softmax_rows().matmul(&vs))
        })
    });
    group.bench_function("table_argmin_k128", |bench| {
        bench.iter(|| black_box(table.query(&qs, &ks, &vs)))
    });
    group.bench_function("table_hashtree_k128", |bench| {
        bench.iter(|| black_box(table_tree.query(&qs, &ks, &vs)))
    });
    group.finish();
}

criterion_group!(benches, bench_linear_kernel, bench_attention_kernel);
criterion_main!(benches);
