//! `serve_bench` — throughput/latency scaling study of the `dart-serve`
//! runtime.
//!
//! Serves an identical synthetic multi-stream workload three ways:
//!
//! 1. **naive** — the pre-`dart-serve` deployment model: one thread, one
//!    stream history map, one `forward_probs` call per access (batch 1),
//! 2. **runtime, S shards** — the sharded, batched runtime at 1/2/4/8
//!    shards with request coalescing,
//! 3. **runtime + NUMA placement** — the max shard count again with
//!    `ShardPlacement::NumaRoundRobin`: workers pinned round-robin across
//!    the detected NUMA nodes, each node serving from its own first-touch
//!    local model replica. Prints the detected topology and the per-shard
//!    node placement. On a single-node host this run is behavior-identical
//!    to the unplaced one (that equivalence is CI-enforced); on
//!    multi-socket hardware it removes the cross-socket arena traffic.
//!
//! Reports predictions/sec, p50/p99 request latency, and mean coalesced
//! batch size. Scale with `DART_SERVE_STREAMS` / `DART_SERVE_ACCESSES`
//! (defaults: 192 streams x 300 accesses); `DART_SERVE_MAX_BATCH`
//! (default 64) caps coalescing per drain, matching `bench_layout`'s
//! flat-arena batch size.
//!
//! ```sh
//! cargo run --release -p dart-bench --bin serve_bench
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use dart_bench::{announce_threads, env_usize_strict, print_table, record_json, Table};
use dart_core::config::TabularConfig;
use dart_core::tabularize::tabularize;
use dart_core::TabularModel;
use dart_nn::matrix::Matrix;
use dart_nn::model::{AccessPredictor, ModelConfig};
use dart_numa::{format_cpu_list, NumaTopology};
use dart_serve::{
    generate_requests, run_load, LoadGenConfig, PrefetchRequest, ServeConfig, ServeRuntime,
    ShardPlacement,
};
use dart_trace::{build_dataset, workload_by_name, PreprocessConfig};

/// Fit a small DART table model on a real synthetic trace (no NN training:
/// serving cost does not depend on predictive quality).
fn build_model() -> (Arc<TabularModel>, PreprocessConfig) {
    let pre = PreprocessConfig {
        seq_len: 8,
        addr_segments: 4,
        seg_bits: 6,
        pc_segments: 2,
        delta_range: 16,
        lookforward: 8,
    };
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 16,
        heads: 2,
        layers: 1,
        ffn_dim: 32,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let student = AccessPredictor::new(cfg, 0x5EED).expect("valid model config");
    let trace = workload_by_name("bwaves").expect("workload").generate(4_000, 7);
    let data = build_dataset(&trace, &pre, 2);
    let tab_cfg = TabularConfig { k: 16, c: 2, fine_tune_epochs: 0, ..Default::default() };
    let (model, _) = tabularize(&student, &data.inputs, &tab_cfg);
    (Arc::new(model), pre)
}

struct RunResult {
    label: String,
    elapsed_s: f64,
    predictions: u64,
    p50_us: f64,
    p99_us: f64,
    mean_batch: f64,
}

impl RunResult {
    fn throughput(&self) -> f64 {
        self.predictions as f64 / self.elapsed_s
    }
}

/// The pre-serve deployment model: single thread, batch size 1.
fn run_naive(model: &TabularModel, pre: &PreprocessConfig, reqs: &[PrefetchRequest]) -> RunResult {
    let t = pre.seq_len;
    let mut histories: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    let mut feats = Matrix::zeros(t, pre.input_dim());
    let mut predictions = 0u64;
    let mut latencies: Vec<u64> = Vec::with_capacity(reqs.len());

    let started = Instant::now();
    for req in reqs {
        let begun = Instant::now();
        let hist = histories.entry(req.stream_id).or_default();
        hist.push((req.addr >> 6, req.pc));
        if hist.len() >= t {
            let window = &hist[hist.len() - t..];
            for (tok, &(block, pc)) in window.iter().enumerate() {
                pre.write_token_features(block, pc, feats.row_mut(tok));
            }
            let probs = model.forward_probs(&feats);
            std::hint::black_box(probs.row(0));
            predictions += 1;
        }
        latencies.push(begun.elapsed().as_nanos() as u64);
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let pct = |q: f64| {
        let rank = ((q * latencies.len() as f64).ceil().max(1.0)) as usize;
        latencies[rank.min(latencies.len()) - 1] as f64 / 1_000.0
    };
    RunResult {
        label: "naive 1-at-a-time".into(),
        elapsed_s,
        predictions,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        mean_batch: 1.0,
    }
}

#[allow(clippy::too_many_arguments)] // bench knobs are explicit on purpose, no config struct
fn run_runtime(
    model: &Arc<TabularModel>,
    pre: &PreprocessConfig,
    reqs: &[PrefetchRequest],
    streams: usize,
    shards: usize,
    max_batch: usize,
    placement: ShardPlacement,
    announce_placement: bool,
) -> RunResult {
    let cfg =
        ServeConfig { shards, max_batch, threshold: 0.5, placement, ..ServeConfig::default() };
    let runtime = ServeRuntime::start(Arc::clone(model), *pre, cfg);
    if announce_placement && placement != ShardPlacement::Disabled {
        let nodes: Vec<String> = runtime
            .per_shard_node()
            .iter()
            .enumerate()
            .map(|(shard, node)| match node {
                Some(id) => format!("shard {shard} -> node {id}"),
                None => format!("shard {shard} -> unplaced"),
            })
            .collect();
        println!("placement: {}", nodes.join(", "));
    }
    // Open-loop load in per-round waves (one access per stream per round,
    // the generator's natural interleave) with back-pressure at a bounded
    // backlog, so reported latency reflects queue + service time instead of
    // an unbounded firehose backlog.
    let high_watermark = (streams * 4).max(1024) as u64;
    let started = Instant::now();
    for round in reqs.chunks(streams) {
        runtime.submit_all(round.iter().copied());
        if runtime.outstanding() > high_watermark {
            runtime.wait_below(high_watermark / 2);
        }
    }
    runtime.wait_idle();
    let elapsed_s = started.elapsed().as_secs_f64();
    let responses = runtime.drain_completed();
    assert_eq!(responses.len(), reqs.len(), "runtime dropped responses");
    let stats = runtime.shutdown();
    let suffix = match placement {
        ShardPlacement::Disabled => "",
        ShardPlacement::NumaRoundRobin => " numa-rr",
    };
    RunResult {
        label: format!("dart-serve {shards} shard{}{suffix}", if shards == 1 { "" } else { "s" }),
        elapsed_s,
        predictions: stats.predictions,
        p50_us: stats.p50_latency_ns as f64 / 1_000.0,
        p99_us: stats.p99_latency_ns as f64 / 1_000.0,
        mean_batch: stats.mean_batch(),
    }
}

/// Best of two runs: the runtime shares cores with the OS scheduler, so a
/// single short run is noisy (especially on few-core hosts).
#[allow(clippy::too_many_arguments)] // same signature as run_runtime, which it wraps twice
fn run_runtime_best_of2(
    model: &Arc<TabularModel>,
    pre: &PreprocessConfig,
    reqs: &[PrefetchRequest],
    streams: usize,
    shards: usize,
    max_batch: usize,
    placement: ShardPlacement,
) -> RunResult {
    let a = run_runtime(model, pre, reqs, streams, shards, max_batch, placement, true);
    let b = run_runtime(model, pre, reqs, streams, shards, max_batch, placement, false);
    if a.throughput() >= b.throughput() {
        a
    } else {
        b
    }
}

fn main() {
    let streams = env_usize_strict("DART_SERVE_STREAMS", 192);
    let accesses = env_usize_strict("DART_SERVE_ACCESSES", 300);
    // Coalescing cap per drain; 64 matches the flat-arena layout benchmark
    // (`bench_layout`) batch size.
    let max_batch = env_usize_strict("DART_SERVE_MAX_BATCH", 64);
    let pool_threads = announce_threads();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "serve_bench: {streams} streams x {accesses} accesses, max_batch {max_batch} \
         ({cores} CPU core(s), shards share one {pool_threads}-thread kernel pool)"
    );
    let topology = NumaTopology::detect();
    println!("topology: {}", topology.summary());
    println!(
        "affinity syscalls: {}",
        if dart_numa::affinity_supported() {
            "enabled (numa feature)"
        } else {
            "no-op (build without --features numa, or unsupported OS/arch)"
        }
    );
    for node in topology.nodes() {
        println!("  node{}: cpus {}", node.id, format_cpu_list(&node.cpus));
    }
    if cores == 1 {
        println!(
            "note: single-core host — shard workers time-slice one core, so the \
             speedup below comes from batch coalescing alone; shard scaling \
             adds on top on multicore hosts"
        );
    }

    let (model, pre) = build_model();
    println!(
        "model: seq_len {}, D_I {}, D_O {}, storage {} KiB",
        pre.seq_len,
        pre.input_dim(),
        pre.output_dim(),
        model.storage_bytes() / 1024
    );
    let reqs =
        generate_requests(&LoadGenConfig { streams, accesses_per_stream: accesses, seed: 0xBEEF });

    let mut results = vec![run_naive(&model, &pre, &reqs)];
    for shards in [1usize, 2, 4, 8] {
        results.push(run_runtime_best_of2(
            &model,
            &pre,
            &reqs,
            streams,
            shards,
            max_batch,
            ShardPlacement::Disabled,
        ));
    }
    // NUMA-aware placement at the max shard count: node-pinned workers,
    // node-local replicas. Identical behavior on one node; less remote
    // arena traffic on several.
    results.push(run_runtime_best_of2(
        &model,
        &pre,
        &reqs,
        streams,
        8,
        max_batch,
        ShardPlacement::NumaRoundRobin,
    ));

    let mut table =
        Table::new(&["configuration", "pred/s", "speedup", "p50 (us)", "p99 (us)", "mean batch"]);
    let baseline = results[0].throughput();
    for r in &results {
        table.row(vec![
            r.label.clone(),
            format!("{:.0}", r.throughput()),
            format!("{:.2}x", r.throughput() / baseline),
            format!("{:.1}", r.p50_us),
            format!("{:.1}", r.p99_us),
            format!("{:.1}", r.mean_batch),
        ]);
    }
    print_table("Serving throughput & latency (batched + sharded vs naive)", &table);

    let records: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::json!({
                "config": r.label,
                "host_cores": cores,
                "predictions_per_sec": r.throughput(),
                "p50_us": r.p50_us,
                "p99_us": r.p99_us,
                "mean_batch": r.mean_batch,
                "predictions": r.predictions,
            })
        })
        .collect();
    record_json("serve_bench", &serde_json::Value::Array(records));

    // One short instrumented run whose metrics exposition is printed in
    // full — CI archives this block, and it is the quickest way to see
    // the live observability surface (stage histograms populate under
    // `--features telemetry`; without it they read 0 by design).
    {
        let cfg = ServeConfig { shards: 2, max_batch, threshold: 0.5, ..ServeConfig::default() };
        let runtime = ServeRuntime::start(Arc::clone(&model), pre, cfg);
        let sample = generate_requests(&LoadGenConfig {
            streams: streams.min(32),
            accesses_per_stream: accesses.min(64),
            seed: 0xBEEF,
        });
        let report = run_load(&runtime, &sample, streams.min(32));
        println!("\n--- metrics exposition (sample run: {}) ---", report.summary());
        print!("{}", runtime.render_metrics());
        println!("--- end exposition ---\n");
        runtime.shutdown();
    }

    // Acceptance gate: sharded+batched serving must beat the naive loop at
    // every shard count >= 2. Degenerate workloads (every stream shorter
    // than the model window) make zero predictions — nothing to compare.
    if results[0].predictions == 0 {
        println!(
            "no predictions made (accesses_per_stream {} < seq_len {}): \
             nothing to compare, skipping acceptance gate",
            accesses, pre.seq_len
        );
        return;
    }
    let mut ok = true;
    for r in &results[2..] {
        let beat = r.throughput() > baseline;
        println!(
            "{}: {:.0} pred/s vs naive {:.0} -> {}",
            r.label,
            r.throughput(),
            baseline,
            if beat { "FASTER" } else { "SLOWER" }
        );
        ok &= beat;
    }
    if !ok {
        eprintln!("WARNING: sharded serving did not beat the naive baseline");
        std::process::exit(1);
    }
}
