//! Dense row-major `f32` matrix with rayon-parallel blocked multiplication.
//!
//! This is the only tensor type in the substrate. Batches of sequences are
//! stored stacked (`(N*T) x D`), so almost all heavy math funnels through
//! [`Matrix::matmul`] / [`Matrix::matmul_transb`], which are cache-blocked
//! and parallelized over row blocks.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Minimum number of result elements before a matmul is parallelized.
/// Below this, rayon's scheduling overhead dominates.
const PAR_THRESHOLD: usize = 64 * 64;

/// Row block size for the blocked matmul kernels (fits L1/L2 comfortably).
const BLOCK: usize = 64;

/// Dense row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a `rows x cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Create a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the matrix and return its row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        debug_assert!(c < self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// A new matrix holding rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "row slice {start}..{end} out of 0..{}",
            self.rows
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Write `src` into rows `[start, start + src.rows)`.
    pub fn set_rows(&mut self, start: usize, src: &Matrix) {
        assert_eq!(src.cols, self.cols, "column mismatch in set_rows");
        assert!(start + src.rows <= self.rows, "row overflow in set_rows");
        self.data[start * self.cols..(start + src.rows) * self.cols].copy_from_slice(&src.data);
    }

    /// Stack matrices vertically. All inputs must share a column count.
    pub fn vstack(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack of zero matrices");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Concatenate matrices horizontally. All inputs must share a row count.
    pub fn hstack(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hstack of zero matrices");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut offset = 0;
        for p in parts {
            assert_eq!(p.rows, rows, "hstack row mismatch");
            for r in 0..rows {
                out.row_mut(r)[offset..offset + p.cols].copy_from_slice(p.row(r));
            }
            offset += p.cols;
        }
        out
    }

    /// A new matrix holding columns `[start, end)`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols);
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self @ other` — blocked, rayon-parallel over row blocks.
    ///
    /// # Panics
    /// If `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        let kernel = |a_rows: &[f32], out_rows: &mut [f32], nrows: usize| {
            // i-k-j loop order: streams through `other` rows, vectorizes on j.
            for i in 0..nrows {
                let arow = &a_rows[i * k..(i + 1) * k];
                let orow = &mut out_rows[i * n..(i + 1) * n];
                for (kk, &aik) in arow.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &other.data[kk * n..(kk + 1) * n];
                    for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                        *o += aik * b;
                    }
                }
            }
        };
        if m * n >= PAR_THRESHOLD && m > 1 {
            out.data
                .par_chunks_mut(BLOCK * n)
                .zip(self.data.par_chunks(BLOCK * k))
                .for_each(|(out_rows, a_rows)| kernel(a_rows, out_rows, a_rows.len() / k));
        } else {
            kernel(&self.data, &mut out.data, m);
        }
        out
    }

    /// `self @ other.T` without materializing the transpose.
    ///
    /// Contracts over the shared column dimension: `(m x k) @ (n x k).T = m x n`.
    pub fn matmul_transb(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transb shape mismatch: {}x{} @ ({}x{}).T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        let kernel = |a_rows: &[f32], out_rows: &mut [f32], nrows: usize| {
            for i in 0..nrows {
                let arow = &a_rows[i * k..(i + 1) * k];
                let orow = &mut out_rows[i * n..(i + 1) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    let brow = &other.data[j * k..(j + 1) * k];
                    *o = dot(arow, brow);
                }
            }
        };
        if m * n >= PAR_THRESHOLD && m > 1 {
            out.data
                .par_chunks_mut(BLOCK * n)
                .zip(self.data.par_chunks(BLOCK * k))
                .for_each(|(out_rows, a_rows)| kernel(a_rows, out_rows, a_rows.len() / k));
        } else {
            kernel(&self.data, &mut out.data, m);
        }
        out
    }

    /// `self.T @ other` without materializing the transpose.
    ///
    /// Contracts over the shared row dimension: `(k x m).T @ (k x n) = m x n`.
    pub fn matmul_transa(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transa shape mismatch: ({}x{}).T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        // out[i][j] = sum_kk self[kk][i] * other[kk][j]
        let mut out = Matrix::zeros(m, n);
        if m * n >= PAR_THRESHOLD {
            out.data.par_chunks_mut(n).enumerate().for_each(|(i, orow)| {
                for kk in 0..k {
                    let a = self.data[kk * m + i];
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &other.data[kk * n..(kk + 1) * n];
                    for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                        *o += a * b;
                    }
                }
            });
        } else {
            for kk in 0..k {
                let arow = &self.data[kk * m..(kk + 1) * m];
                let brow = &other.data[kk * n..(kk + 1) * n];
                for (i, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let orow = &mut out.data[i * n..(i + 1) * n];
                    for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                        *o += a * b;
                    }
                }
            }
        }
        out
    }

    /// Element-wise sum; shapes must match.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place element-wise sum.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` (axpy).
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise difference; shapes must match.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Scalar multiple.
    pub fn scale(&self, alpha: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place scalar multiple.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Apply `f` element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Add a row vector (`1 x cols` semantics) to every row.
    pub fn add_row_broadcast(&self, bias: &[f32]) -> Matrix {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Column-wise sums (length `cols`).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Row-wise means (length `rows`).
    pub fn row_means(&self) -> Vec<f32> {
        self.data
            .chunks_exact(self.cols)
            .map(|row| row.iter().sum::<f32>() / self.cols as f32)
            .collect()
    }

    /// Mean over all rows: returns a `1 x cols` matrix.
    pub fn mean_rows(&self) -> Matrix {
        assert!(self.rows > 0);
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out.scale_assign(1.0 / self.rows as f32);
        out
    }

    /// Numerically-stable softmax applied independently to each row.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            softmax_in_place(out.row_mut(r));
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }
}

/// Dot product of two equal-length slices (the hot inner loop of
/// `matmul_transb`; written to auto-vectorize).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Accumulate in 4 lanes to expose instruction-level parallelism.
    let chunks = a.len() / 4;
    let mut acc = [0.0f32; 4];
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        total += a[i] * b[i];
    }
    total
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut total = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        total += d * d;
    }
    total
}

/// Numerically-stable in-place softmax over a slice.
pub fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Cosine similarity between two equal-length slices; 0 when either is zero.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Matrix::from_fn(7, 5, |r, c| (r * 5 + c) as f32 * 0.1 - 1.0);
        let b = Matrix::from_fn(5, 9, |r, c| (r as f32 - c as f32) * 0.2);
        assert!(approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4));
    }

    #[test]
    fn matmul_large_parallel_path() {
        let a = Matrix::from_fn(130, 70, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(70, 90, |r, c| ((r * 17 + c * 3) % 11) as f32 - 5.0);
        assert!(approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-2));
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = Matrix::from_fn(6, 8, |r, c| (r + c) as f32 * 0.3);
        let b = Matrix::from_fn(4, 8, |r, c| (r as f32 * 1.5 - c as f32) * 0.1);
        assert!(approx_eq(&a.matmul_transb(&b), &a.matmul(&b.transpose()), 1e-4));
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let a = Matrix::from_fn(8, 6, |r, c| (r * 2 + c) as f32 * 0.05);
        let b = Matrix::from_fn(8, 5, |r, c| (c * 3 + r) as f32 * 0.07);
        assert!(approx_eq(&a.matmul_transa(&b), &a.transpose().matmul(&b), 1e-4));
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_fn(5, 5, |r, c| (r * c) as f32);
        assert!(approx_eq(&a.matmul(&Matrix::identity(5)), &a, 1e-6));
        assert!(approx_eq(&Matrix::identity(5).matmul(&a), &a, 1e-6));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(4, 7, |r, c| (r * 7 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_fn(3, 6, |r, c| (r as f32 - c as f32) * 2.0);
        let s = a.softmax_rows();
        for r in 0..3 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn softmax_is_stable_for_large_values() {
        let a = Matrix::from_vec(1, 3, vec![1000.0, 1000.0, 1000.0]);
        let s = a.softmax_rows();
        for &v in s.as_slice() {
            assert!((v - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn vstack_hstack_roundtrip() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let b = Matrix::from_fn(3, 3, |r, c| 100.0 + (r * 3 + c) as f32);
        let v = Matrix::vstack(&[a.clone(), b.clone()]);
        assert_eq!(v.shape(), (5, 3));
        assert_eq!(v.slice_rows(0, 2), a);
        assert_eq!(v.slice_rows(2, 5), b);

        let h = Matrix::hstack(&[a.clone(), a.clone()]);
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.slice_cols(0, 3), a);
        assert_eq!(h.slice_cols(3, 6), a);
    }

    #[test]
    fn add_row_broadcast_adds_bias_each_row() {
        let a = Matrix::zeros(3, 2);
        let out = a.add_row_broadcast(&[1.0, -2.0]);
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.0, -2.0]);
        }
    }

    #[test]
    fn col_sums_and_mean_rows() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
        assert_eq!(a.mean_rows().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..23).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..23).map(|i| (22 - i) as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-3);
    }

    #[test]
    fn cosine_similarity_bounds() {
        let a = [1.0, 0.0, 0.0];
        let b = [0.0, 1.0, 0.0];
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&a, &b).abs() < 1e-6);
        assert_eq!(cosine_similarity(&a, &[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn slice_and_set_rows() {
        let mut a = Matrix::zeros(4, 2);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.set_rows(1, &b);
        assert_eq!(a.row(0), &[0.0, 0.0]);
        assert_eq!(a.row(1), &[1.0, 2.0]);
        assert_eq!(a.row(2), &[3.0, 4.0]);
        assert_eq!(a.slice_rows(1, 3), b);
    }
}
