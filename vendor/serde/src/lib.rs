//! Vendored serde lookalike built around a JSON-style [`Value`] data model.
//!
//! The build environment has no registry access, so the real serde cannot be
//! fetched. This crate keeps the workspace's `#[derive(Serialize,
//! Deserialize)]` annotations and `serde_json` call sites source-compatible:
//!
//! * [`Serialize`] converts a type into a [`Value`] tree,
//! * [`Deserialize`] reconstructs a type from a [`Value`] tree,
//! * the companion `serde_derive` proc-macro generates both impls for
//!   structs and externally-tagged enums (honouring `#[serde(skip)]`),
//! * the companion `serde_json` crate adds text parsing/printing and `json!`.

pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error: a plain message.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON-style dynamically-typed value tree.
///
/// Object fields keep insertion order (a `Vec` of pairs, not a map), which
/// makes serialized output deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers up to 2^53 are exact).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field of an object (`None` for non-objects/missing keys) or element
    /// of an array when indexed with `usize`.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Numeric payload as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Index types accepted by [`Value::get`].
pub trait ValueIndex {
    /// Resolve the index against a value.
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == self).map(|(_, fv)| fv),
            _ => None,
        }
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        match v {
            Value::Array(items) => items.get(*self),
            _ => None,
        }
    }
}

/// Convert a value into the [`Value`] data model.
pub trait Serialize {
    /// The value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstruct a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    _ => Err(Error::msg(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::msg("expected tuple array"))?;
                Ok(($($t::from_value(
                    items.get($n).ok_or_else(|| Error::msg("tuple too short"))?,
                )?,)+))
            }
        }
    )+};
}

impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// Derive-codegen helper: fetch and deserialize a named object field.
pub fn obj_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(fv) => T::from_value(fv).map_err(|e| Error(format!("field `{name}`: {}", e.0))),
        None => Err(Error(format!("missing field `{name}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<(usize, u64)> = vec![(1, 10), (2, 20)];
        let back: Vec<(usize, u64)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
        let opt: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("a".into(), Value::Number(3.0))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("missing"), None);
        let arr = Value::Array(vec![Value::Bool(true)]);
        assert_eq!(arr.get(0).and_then(Value::as_bool), Some(true));
    }
}
