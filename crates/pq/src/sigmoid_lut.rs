//! Fixed lookup-table sigmoid (paper Algorithm 1 line 16, ref. \[46\]).
//!
//! The output activation of the tabular predictor is approximated by a
//! uniform LUT over `[-range, range]`; values outside (including `±Inf`)
//! saturate to 0/1, and NaN propagates (see [`SigmoidLut::query`]).
//! With `n` entries the worst-case absolute error is bounded by
//! `0.25 * (2*range/n) / 2` (max sigmoid slope 1/4 times half a step) plus
//! the tail error `sigmoid(-range)`.

use serde::{Deserialize, Serialize};

/// Uniform sigmoid lookup table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SigmoidLut {
    entries: Vec<f32>,
    range: f32,
    inv_step: f32,
}

impl SigmoidLut {
    /// Build a LUT with `n` entries covering `[-range, range]`.
    pub fn new(n: usize, range: f32) -> SigmoidLut {
        assert!(n >= 2, "need at least 2 entries");
        assert!(range > 0.0, "range must be positive");
        let step = 2.0 * range / (n - 1) as f32;
        let entries = (0..n)
            .map(|i| {
                let x = -range + i as f32 * step;
                1.0 / (1.0 + (-x).exp())
            })
            .collect();
        SigmoidLut { entries, range, inv_step: 1.0 / step }
    }

    /// Default prefetcher configuration: 1024 entries over `[-8, 8]`
    /// (worst-case error ≈ 2e-3, below any 0.5-threshold decision margin).
    pub fn default_table() -> SigmoidLut {
        SigmoidLut::new(1024, 8.0)
    }

    /// Number of LUT entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate `sigmoid(x)` by nearest-entry lookup.
    ///
    /// `±Inf` saturate like any other out-of-range input. **NaN
    /// propagates**: a poisoned activation must surface as a poisoned
    /// probability, not launder itself into `entries[0]` ≈ `sigmoid(-range)`
    /// — i.e. a confident "no prefetch" (which is what the pre-fix code
    /// did: NaN fails both range comparisons and `NaN as usize` is 0).
    /// Downstream threshold comparisons treat NaN as "emit nothing", so
    /// behavior is conservative but now diagnosable.
    #[inline]
    pub fn query(&self, x: f32) -> f32 {
        if x.is_nan() {
            return x;
        }
        if x <= -self.range {
            return self.entries[0];
        }
        if x >= self.range {
            return *self.entries.last().unwrap();
        }
        let idx = ((x + self.range) * self.inv_step + 0.5) as usize;
        self.entries[idx.min(self.entries.len() - 1)]
    }

    /// Apply in place over a slice.
    pub fn apply(&self, values: &mut [f32]) {
        for v in values {
            *v = self.query(*v);
        }
    }

    /// Storage footprint in bytes.
    pub fn storage_bytes(&self) -> u64 {
        (self.entries.len() * 4) as u64
    }

    /// Analytic worst-case absolute error bound of this table.
    pub fn error_bound(&self) -> f32 {
        let step = 1.0 / self.inv_step;
        let interp = 0.25 * step / 2.0;
        let tail = 1.0 / (1.0 + self.range.exp());
        interp.max(tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(x: f32) -> f32 {
        1.0 / (1.0 + (-x).exp())
    }

    #[test]
    fn error_within_bound_on_grid() {
        let lut = SigmoidLut::default_table();
        let bound = lut.error_bound();
        let mut max_err = 0.0f32;
        let mut x = -12.0f32;
        while x <= 12.0 {
            max_err = max_err.max((lut.query(x) - exact(x)).abs());
            x += 0.013;
        }
        assert!(max_err <= bound * 1.01, "max err {max_err} > bound {bound}");
    }

    #[test]
    fn saturates_outside_range() {
        let lut = SigmoidLut::new(64, 4.0);
        assert_eq!(lut.query(-100.0), lut.query(-4.0));
        assert_eq!(lut.query(100.0), lut.query(4.0));
    }

    #[test]
    fn infinities_saturate_like_out_of_range_values() {
        let lut = SigmoidLut::default_table();
        assert_eq!(lut.query(f32::NEG_INFINITY), lut.query(-8.0));
        assert_eq!(lut.query(f32::INFINITY), lut.query(8.0));
        assert!(lut.query(f32::NEG_INFINITY) < 1e-3);
        assert!(lut.query(f32::INFINITY) > 1.0 - 1e-3);
    }

    #[test]
    fn nan_propagates_instead_of_saturating_low() {
        // Regression: NaN used to fail both range checks, cast to index 0,
        // and return sigmoid(-range) — a confident "no prefetch" from a
        // poisoned activation.
        let lut = SigmoidLut::default_table();
        assert!(lut.query(f32::NAN).is_nan());
        assert!(lut.query(-f32::NAN).is_nan());
        let mut vals = vec![0.5f32, f32::NAN, -2.0];
        lut.apply(&mut vals);
        assert_eq!(vals[0], lut.query(0.5));
        assert!(vals[1].is_nan(), "apply must propagate NaN");
        assert_eq!(vals[2], lut.query(-2.0));
    }

    #[test]
    fn midpoint_is_half() {
        let lut = SigmoidLut::new(1025, 8.0);
        assert!((lut.query(0.0) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn monotone_nondecreasing() {
        let lut = SigmoidLut::new(256, 6.0);
        let mut prev = -1.0f32;
        let mut x = -7.0f32;
        while x <= 7.0 {
            let y = lut.query(x);
            assert!(y >= prev - 1e-6, "not monotone at {x}");
            prev = y;
            x += 0.05;
        }
    }

    #[test]
    fn apply_matches_query() {
        let lut = SigmoidLut::default_table();
        let mut vals = vec![-3.0f32, 0.0, 1.5, 9.0];
        let expect: Vec<f32> = vals.iter().map(|&v| lut.query(v)).collect();
        lut.apply(&mut vals);
        assert_eq!(vals, expect);
    }

    #[test]
    fn finer_tables_are_more_accurate() {
        let coarse = SigmoidLut::new(32, 8.0);
        let fine = SigmoidLut::new(4096, 8.0);
        let xs: Vec<f32> = (0..500).map(|i| -6.0 + i as f32 * 0.024).collect();
        let err = |lut: &SigmoidLut| {
            xs.iter().map(|&x| (lut.query(x) - exact(x)).abs()).fold(0.0f32, f32::max)
        };
        assert!(err(&fine) < err(&coarse));
    }
}
