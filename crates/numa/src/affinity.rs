//! Thread affinity via raw `sched_setaffinity`/`sched_getaffinity`
//! syscalls — no libc dependency.
//!
//! The syscall shims are inline-asm on `x86_64` and `aarch64` Linux,
//! compiled in only under the `numa` cargo feature; every other
//! combination (feature off, macOS, other architectures) gets no-op stubs
//! that *report* being no-ops, so callers can degrade gracefully instead
//! of silently believing a pin happened.

/// Whether this build can actually change affinity (see
/// [`crate::affinity_supported`]).
pub(crate) const SUPPORTED: bool = sys::SUPPORTED;

/// Maximum CPUs representable in a [`CpuSet`] (matches the kernel's
/// default `CONFIG_NR_CPUS` ceiling on common distro kernels).
const MAX_CPUS: usize = 1024;
const WORDS: usize = MAX_CPUS / 64;

/// A fixed-size CPU mask in the kernel's `cpu_set_t` layout: bit `i` of
/// word `i / 64` is CPU `i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuSet {
    words: [u64; WORDS],
}

impl Default for CpuSet {
    fn default() -> Self {
        CpuSet::new()
    }
}

impl CpuSet {
    /// Maximum CPU id + 1 this set can hold.
    pub const MAX_CPUS: usize = MAX_CPUS;

    /// The empty set.
    pub fn new() -> CpuSet {
        CpuSet { words: [0; WORDS] }
    }

    /// Add `cpu`; errors past [`Self::MAX_CPUS`].
    pub fn set(&mut self, cpu: usize) -> Result<(), AffinityError> {
        if cpu >= MAX_CPUS {
            return Err(AffinityError::CpuOutOfRange(cpu));
        }
        self.words[cpu / 64] |= 1u64 << (cpu % 64);
        Ok(())
    }

    /// True when `cpu` is in the set.
    pub fn is_set(&self, cpu: usize) -> bool {
        cpu < MAX_CPUS && self.words[cpu / 64] & (1u64 << (cpu % 64)) != 0
    }

    /// Number of CPUs in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The set as sorted CPU ids.
    pub fn to_vec(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count());
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(w * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// Mask size in bytes, as passed to the syscalls.
const MASK_BYTES: usize = WORDS * 8;
const _: () = assert!(MASK_BYTES * 8 == MAX_CPUS, "mask must cover exactly MAX_CPUS bits");

/// Why pinning failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AffinityError {
    /// The CPU list was empty — the kernel would reject an empty mask with
    /// `EINVAL`, so catch it with a better message.
    EmptySet,
    /// A CPU id past [`CpuSet::MAX_CPUS`].
    CpuOutOfRange(usize),
    /// The syscall itself failed; payload is the positive errno.
    Syscall(i32),
}

impl std::fmt::Display for AffinityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AffinityError::EmptySet => write!(f, "cannot pin to an empty CPU set"),
            AffinityError::CpuOutOfRange(c) => {
                write!(f, "cpu {c} exceeds the {MAX_CPUS}-cpu mask")
            }
            AffinityError::Syscall(errno) => {
                write!(f, "sched_setaffinity failed with errno {errno}")
            }
        }
    }
}

impl std::error::Error for AffinityError {}

/// Pin the **calling thread** to `cpus`.
///
/// * `Ok(true)` — the kernel accepted the mask; the thread now runs only
///   on those CPUs (and first-touch allocations land on their node).
/// * `Ok(false)` — this build cannot pin (feature off or unsupported
///   OS/arch); nothing happened. Callers treat this as "placement is a
///   hint" and proceed unpinned.
/// * `Err(_)` — a real failure (empty set, CPU out of range, or the
///   syscall was rejected, e.g. a cgroup cpuset excludes every requested
///   CPU).
pub fn pin_current_thread_to(cpus: &[usize]) -> Result<bool, AffinityError> {
    if cpus.is_empty() {
        return Err(AffinityError::EmptySet);
    }
    let mut set = CpuSet::new();
    for &cpu in cpus {
        set.set(cpu)?;
    }
    sys::set_affinity(&set)
}

/// The calling thread's current affinity mask as sorted CPU ids, or
/// `None` when this build cannot query it (feature off / unsupported
/// OS/arch) or the syscall failed.
pub fn current_affinity() -> Option<Vec<usize>> {
    sys::get_affinity().map(|set| set.to_vec())
}

/// Pin the calling thread to the **intersection** of `cpus` with its
/// current affinity mask — the placement-safe variant.
///
/// [`pin_current_thread_to`] applies the mask verbatim, which can
/// silently *widen* an operator-imposed restriction (`taskset`, a cgroup
/// cpuset) onto CPUs the operator excluded, or fail with `EINVAL` when
/// the target set and the allowed set don't overlap at all (e.g. a
/// fallback topology's synthesized `0..N` ids inside a container whose
/// cpuset starts at CPU 8). This variant never does either:
///
/// * `Ok(true)` — pinned to the non-empty intersection.
/// * `Ok(false)` — no pin happened: the build cannot pin, the current
///   mask could not be read, or the intersection is empty (none of the
///   requested CPUs is allowed for this thread). The thread keeps its
///   current mask.
/// * `Err(_)` — empty/out-of-range input, or the kernel rejected the
///   intersected mask.
pub fn pin_current_thread_within(cpus: &[usize]) -> Result<bool, AffinityError> {
    if cpus.is_empty() {
        return Err(AffinityError::EmptySet);
    }
    for &cpu in cpus {
        if cpu >= MAX_CPUS {
            return Err(AffinityError::CpuOutOfRange(cpu));
        }
    }
    let Some(allowed) = current_affinity() else {
        return Ok(false);
    };
    // `allowed` is sorted (bitmask order).
    let target: Vec<usize> =
        cpus.iter().copied().filter(|c| allowed.binary_search(c).is_ok()).collect();
    if target.is_empty() {
        return Ok(false);
    }
    pin_current_thread_to(&target)
}

/// Real syscall shims: Linux x86_64/aarch64 with the `numa` feature on.
#[cfg(all(
    feature = "numa",
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::{AffinityError, CpuSet};

    pub(super) const SUPPORTED: bool = true;

    #[cfg(target_arch = "x86_64")]
    const NR_SCHED_SETAFFINITY: usize = 203;
    #[cfg(target_arch = "x86_64")]
    const NR_SCHED_GETAFFINITY: usize = 204;
    #[cfg(target_arch = "aarch64")]
    const NR_SCHED_SETAFFINITY: usize = 122;
    #[cfg(target_arch = "aarch64")]
    const NR_SCHED_GETAFFINITY: usize = 123;

    /// Three-argument Linux syscall, x86_64 convention: number in `rax`,
    /// args in `rdi`/`rsi`/`rdx`; `syscall` clobbers `rcx`/`r11`; the
    /// (possibly `-errno`) result lands back in `rax`.
    ///
    /// # Safety
    /// Caller must uphold the specific syscall's contract (valid pointers
    /// with correct lengths for the kernel to read/write).
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall3(nr: usize, a1: usize, a2: usize, a3: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// Three-argument Linux syscall, aarch64 convention: number in `x8`,
    /// args in `x0`..`x2`, result in `x0`.
    ///
    /// # Safety
    /// Same contract as the x86_64 shim.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall3(nr: usize, a1: usize, a2: usize, a3: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a1 as isize => ret,
            in("x1") a2,
            in("x2") a3,
            options(nostack),
        );
        ret
    }

    pub(super) fn set_affinity(set: &CpuSet) -> Result<bool, AffinityError> {
        // pid 0 = the calling thread. SAFETY: the mask pointer is valid
        // for MASK_BYTES bytes and the kernel only reads it.
        let rc = unsafe {
            syscall3(NR_SCHED_SETAFFINITY, 0, super::MASK_BYTES, set.words.as_ptr() as usize)
        };
        if rc < 0 {
            Err(AffinityError::Syscall(-rc as i32))
        } else {
            Ok(true)
        }
    }

    pub(super) fn get_affinity() -> Option<CpuSet> {
        let mut set = CpuSet::new();
        // SAFETY: the mask pointer is valid for MASK_BYTES bytes and
        // exclusively borrowed; the kernel writes at most that many.
        let rc = unsafe {
            syscall3(NR_SCHED_GETAFFINITY, 0, super::MASK_BYTES, set.words.as_mut_ptr() as usize)
        };
        // On success the syscall returns the number of bytes it wrote.
        (rc > 0).then_some(set)
    }
}

/// No-op stubs: feature off, or an OS/arch without the raw shims. Pinning
/// reports `Ok(false)` so callers know nothing happened.
#[cfg(not(all(
    feature = "numa",
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::{AffinityError, CpuSet};

    pub(super) const SUPPORTED: bool = false;

    pub(super) fn set_affinity(_set: &CpuSet) -> Result<bool, AffinityError> {
        Ok(false)
    }

    pub(super) fn get_affinity() -> Option<CpuSet> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpuset_set_query_and_roundtrip() {
        let mut set = CpuSet::new();
        assert_eq!(set.count(), 0);
        for cpu in [0usize, 1, 63, 64, 100, 1023] {
            set.set(cpu).unwrap();
        }
        assert_eq!(set.count(), 6);
        assert!(set.is_set(63) && set.is_set(64) && !set.is_set(65));
        assert_eq!(set.to_vec(), vec![0, 1, 63, 64, 100, 1023]);
        assert_eq!(set.set(1024), Err(AffinityError::CpuOutOfRange(1024)));
        assert!(!set.is_set(usize::MAX));
    }

    #[test]
    fn empty_pin_is_rejected_everywhere() {
        // Both the real and stub backends reject an empty set up front.
        assert_eq!(pin_current_thread_to(&[]), Err(AffinityError::EmptySet));
        assert_eq!(pin_current_thread_within(&[]), Err(AffinityError::EmptySet));
        assert_eq!(
            pin_current_thread_within(&[usize::MAX]),
            Err(AffinityError::CpuOutOfRange(usize::MAX))
        );
    }

    #[test]
    fn out_of_range_cpu_is_rejected_everywhere() {
        assert_eq!(
            pin_current_thread_to(&[usize::MAX]),
            Err(AffinityError::CpuOutOfRange(usize::MAX))
        );
    }

    /// Feature off / unsupported target: pinning must be a *reported*
    /// no-op, never a silent pretend-success.
    #[cfg(not(all(
        feature = "numa",
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    #[test]
    fn unsupported_build_reports_noop() {
        assert!(!crate::affinity_supported());
        assert_eq!(pin_current_thread_to(&[0]), Ok(false));
        assert_eq!(pin_current_thread_within(&[0]), Ok(false));
        assert_eq!(current_affinity(), None);
    }

    /// Real syscalls: pin this thread to one CPU of its current mask,
    /// verify via `sched_getaffinity`, then restore the original mask so
    /// the test harness thread is left untouched.
    #[cfg(all(
        feature = "numa",
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn pin_narrows_and_restores_real_affinity() {
        assert!(crate::affinity_supported());
        let original = current_affinity().expect("getaffinity must work on linux");
        assert!(!original.is_empty());

        let target = original[0];
        assert_eq!(pin_current_thread_to(&[target]), Ok(true));
        assert_eq!(current_affinity().unwrap(), vec![target]);

        // Restore (other tests share this thread).
        assert_eq!(pin_current_thread_to(&original), Ok(true));
        assert_eq!(current_affinity().unwrap(), original);
    }

    /// The intersection-aware pin never widens the current mask: CPUs
    /// outside it are filtered out, a fully-disjoint request is a
    /// reported no-pin (not an EINVAL), and allowed CPUs still pin.
    #[cfg(all(
        feature = "numa",
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn pin_within_never_escapes_the_current_mask() {
        let original = current_affinity().expect("getaffinity must work on linux");
        let top = *original.last().unwrap();

        // A request mixing one allowed CPU with (possibly nonexistent,
        // certainly not-in-mask) higher ids pins to the allowed subset
        // only.
        if top + 1 < CpuSet::MAX_CPUS {
            let mixed = vec![original[0], top + 1];
            assert_eq!(pin_current_thread_within(&mixed), Ok(true));
            assert_eq!(current_affinity().unwrap(), vec![original[0]]);
            assert_eq!(pin_current_thread_to(&original), Ok(true), "restore");

            // Fully disjoint from the mask: no pin, mask untouched —
            // exactly the masked-sysfs-in-a-cpuset-container shape.
            assert_eq!(pin_current_thread_within(&[top + 1]), Ok(false));
            assert_eq!(current_affinity().unwrap(), original);
        }

        // The full allowed set round-trips.
        assert_eq!(pin_current_thread_within(&original), Ok(true));
        assert_eq!(current_affinity().unwrap(), original);
    }
}
