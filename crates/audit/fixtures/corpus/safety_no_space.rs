// R1 marker-matching edge cases.
pub fn tight_comment_counts() {
    //SAFETY: no space after the slashes is still the marker.
    let _ = unsafe { std::mem::transmute::<u32, f32>(0) };
}

pub fn lowercase_does_not_count() {
    // safety: lowercase is prose, not the marker.
    let _ = unsafe { std::mem::transmute::<u32, f32>(0) }; // MARK:lowercase
}

pub fn marker_in_doc_divider_does_not_leak() {
    //// SAFETY: a //// divider is a plain comment, and it still counts.
    let _ = unsafe { std::mem::transmute::<u32, f32>(0) };
}

pub fn stale_marker_before_boundary() {
    // SAFETY: this justifies the statement below...
    let _ = 1 + 1;
    let _ = unsafe { std::mem::transmute::<u32, f32>(0) }; // MARK:stale-marker
}
