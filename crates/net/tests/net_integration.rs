//! End-to-end tests of the TCP front-end against a real (tiny) serving
//! runtime: round-trips, exactly-once accounting under load,
//! backpressure NACKs with a live (unblocked) IO loop, admission
//! control, slow-reader disconnects, and protocol-error teardown.
//!
//! The net counters live in the process-global telemetry registry, so
//! assertions on them are `>=` (other tests in this binary may run
//! concurrently); the strict exposition-equality test has its own test
//! binary (`metrics_http.rs`).

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dart_net::{
    fetch_metrics, run_tcp_load, ClientEvent, ClientPool, NetClient, NetConfig, NetServer,
    TcpLoadConfig,
};
use dart_serve::ServeConfig;

fn serve_cfg(shards: usize) -> ServeConfig {
    ServeConfig { shards, max_batch: 16, threshold: 0.0, ..ServeConfig::default() }
}

/// The stream id the runtime sees for wire stream `stream` on the n-th
/// accepted connection (connection ids start at 1).
fn global_id(conn: u32, stream: u32) -> u64 {
    ((conn as u64) << 32) | stream as u64
}

#[test]
fn binary_roundtrip_answers_in_stream_order() {
    let runtime = common::start_runtime(serve_cfg(2));
    let server = NetServer::start(runtime, NetConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let (streams, accesses) = (4u32, 12u32);
    for access in 0..accesses {
        for stream in 0..streams {
            client.send_request(
                stream,
                0x400 + stream as u64,
                (stream as u64) << 20 | (access as u64) << 6,
            );
        }
    }
    let mut seqs = vec![Vec::new(); streams as usize];
    for _ in 0..streams * accesses {
        match client.recv_event().unwrap() {
            ClientEvent::Response(r) => {
                assert!(!r.failed, "no faults injected");
                seqs[r.stream as usize].push(r.seq);
            }
            ClientEvent::Nack(n) => panic!("unexpected NACK: {n:?}"),
        }
    }
    for per_stream in &seqs {
        let expect: Vec<u64> = (0..accesses as u64).collect();
        assert_eq!(per_stream, &expect, "per-stream seqs must be contiguous and in order");
    }
    server.shutdown();
}

#[test]
fn queue_full_nacks_while_the_io_thread_stays_live() {
    // One shard, queue of 1, and the very first wire stream stalls its
    // worker for 600 ms: everything submitted behind it must come back
    // as a queue-full NACK immediately — and the metrics route must keep
    // answering while the shard is wedged, proving no IO thread ever
    // blocked on the full queue.
    let runtime = common::start_runtime(ServeConfig {
        queue_capacity: 1,
        stall_on_stream: Some(global_id(1, 0)),
        stall_ms: 600,
        ..serve_cfg(1)
    });
    let server = NetServer::start(runtime, NetConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(15))).unwrap();
    client.send_request(0, 0x400, 0x1000);
    client.flush().unwrap();
    // Let the worker pop the stalling request so the queue is empty...
    std::thread::sleep(Duration::from_millis(200));
    // ...then flood: 1 fills the queue, the rest must be NACKed.
    let flood = 10u32;
    for i in 0..flood {
        client.send_request(0, 0x400, 0x2000 + i as u64 * 64);
    }
    client.flush().unwrap();

    // While the only shard is stalled, a metrics scrape still answers.
    let body = fetch_metrics(addr).expect("metrics must stay reachable during the stall");
    assert!(body.contains("dart_net_connections_active"), "{body}");

    let (mut responses, mut nacks) = (0u64, 0u64);
    for _ in 0..=flood {
        match client.recv_event().unwrap() {
            ClientEvent::Response(r) => {
                assert!(!r.failed);
                responses += 1;
            }
            ClientEvent::Nack(n) => {
                assert_eq!(n.stream, 0);
                nacks += 1;
            }
        }
    }
    assert_eq!(responses + nacks, 1 + flood as u64, "every request accounted exactly once");
    assert!(nacks >= 1, "a 1-deep queue behind a stalled worker must NACK");
    assert!(responses >= 2, "the stalling request and the queued one are served");
    server.shutdown();
}

#[test]
fn admission_cap_nacks_over_inflight_connections() {
    // Unbounded shard queue, but the connection may only have 4 frames
    // in flight; a stalled worker keeps them unanswered, so a burst of
    // 30 must see admission NACKs.
    let runtime = common::start_runtime(ServeConfig {
        stall_on_stream: Some(global_id(1, 0)),
        stall_ms: 500,
        ..serve_cfg(1)
    });
    let server =
        NetServer::start(runtime, NetConfig { max_inflight_per_conn: 4, ..NetConfig::default() })
            .unwrap();

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(15))).unwrap();
    let burst = 30u32;
    for i in 0..burst {
        client.send_request(0, 0x400, 0x1000 + i as u64 * 64);
    }
    client.flush().unwrap();

    let (mut responses, mut nacks) = (0u64, 0u64);
    for _ in 0..burst {
        match client.recv_event().unwrap() {
            ClientEvent::Response(_) => responses += 1,
            ClientEvent::Nack(_) => nacks += 1,
        }
    }
    assert_eq!(responses + nacks, burst as u64);
    assert!(nacks >= 1, "30 frames against a 4-deep admission cap must NACK");
    server.shutdown();
}

#[test]
fn worker_panic_surfaces_as_failed_responses_over_the_wire() {
    let runtime = common::start_runtime(ServeConfig {
        panic_on_stream: Some(global_id(1, 1)),
        ..serve_cfg(1)
    });
    let server = NetServer::start(runtime, NetConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    for i in 0..4u64 {
        client.send_request(1, 0x404, 0x4000 + i * 64);
    }
    let mut failed = 0;
    for _ in 0..4 {
        match client.recv_event().unwrap() {
            ClientEvent::Response(r) => {
                if r.failed {
                    assert_eq!(r.seq, u64::MAX, "failure responses carry the sentinel seq");
                    assert!(r.blocks.is_empty());
                    failed += 1;
                }
            }
            ClientEvent::Nack(n) => panic!("unexpected NACK {n:?}"),
        }
    }
    assert!(failed >= 1, "the poisoned shard must fail its requests, not drop them");
    server.shutdown();
}

#[test]
fn slow_reader_is_disconnected_not_buffered_forever() {
    let runtime = common::start_runtime(serve_cfg(2));
    let server =
        NetServer::start(runtime, NetConfig { write_buf_cap: 1024, ..NetConfig::default() })
            .unwrap();

    // Flood requests and never read: responses overflow the 1 KiB
    // outbox cap (the kernel socket buffers absorb only so much) and
    // the server must cut us off instead of buffering without bound.
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut send_err = None;
    for i in 0..200_000u64 {
        client.send_request((i % 64) as u32, 0x400, i * 64);
        if let Err(e) = client.flush() {
            send_err = Some(e);
            break;
        }
    }
    match send_err {
        Some(_) => {} // write side already saw the reset
        None => {
            // Drain until the disconnect surfaces as EOF/reset.
            let deadline = std::time::Instant::now() + Duration::from_secs(20);
            while client.recv_event().is_ok() {
                assert!(
                    std::time::Instant::now() < deadline,
                    "server never disconnected the slow reader"
                );
            }
        }
    }
    server.shutdown();
}

#[test]
fn protocol_garbage_gets_the_connection_dropped() {
    let runtime = common::start_runtime(serve_cfg(1));
    let server = NetServer::start(runtime, NetConfig::default()).unwrap();
    let addr = server.local_addr();

    // Starts with the binary magic but a bogus version: torn down.
    let mut bad = TcpStream::connect(addr).unwrap();
    bad.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    bad.write_all(&[0xDA, 0x7A, 42, 1, 0, 0, 0, 0]).unwrap();
    let mut buf = [0u8; 64];
    assert_eq!(bad.read(&mut buf).unwrap_or(0), 0, "bad version must close the connection");

    // Not the magic byte: parsed as HTTP, unknown method answered 405.
    let mut odd = TcpStream::connect(addr).unwrap();
    odd.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    odd.write_all(b"BREW /coffee HTCPCP/1.0\r\n\r\n").unwrap();
    let mut text = String::new();
    odd.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 405"), "{text}");

    // Unknown path is a 404, and the route list is stable.
    let mut lost = TcpStream::connect(addr).unwrap();
    lost.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    lost.write_all(b"GET /metric HTTP/1.1\r\n\r\n").unwrap();
    let mut text = String::new();
    lost.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 404"), "{text}");

    server.shutdown();
}

/// Pull one metric's value out of an exposition document (first sample
/// whose line starts with `name`, labels included).
fn scraped(doc: &str, name: &str) -> Option<u64> {
    doc.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn idle_connections_are_reaped_but_not_while_a_request_is_in_flight() {
    // Idle timeout 100 ms, but the first request stalls its worker for
    // 400 ms. The stalled connection has a frame in flight the whole
    // time, so it must NOT be reaped out from under the pending
    // response; once answered and quiet, it must be reaped as `idle`.
    let runtime = common::start_runtime(ServeConfig {
        stall_on_stream: Some(global_id(1, 0)),
        stall_ms: 400,
        ..serve_cfg(1)
    });
    let server =
        NetServer::start(runtime, NetConfig { idle_timeout_ms: 100, ..NetConfig::default() })
            .unwrap();
    let addr = server.local_addr();

    let mut client = NetClient::connect(addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    client.send_request(0, 0x400, 0x1000);
    match client.recv_event().expect("in-flight request survives 4x the idle window") {
        ClientEvent::Response(r) => assert!(!r.failed),
        ClientEvent::Nack(n) => panic!("unexpected NACK {n:?}"),
    }

    // Now go quiet: the server must close us (reason `idle`), seen as
    // EOF on the next read.
    let err = match client.recv_event() {
        Ok(event) => panic!("unsolicited event from an idle connection: {event:?}"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
    let doc = fetch_metrics(addr).unwrap();
    assert!(
        scraped(&doc, "dart_net_disconnects_total{reason=\"idle\"}").unwrap_or(0) >= 1,
        "idle reap must be counted under its own reason:\n{doc}"
    );
    server.shutdown();
}

#[test]
fn batched_and_unbatched_response_paths_answer_identically() {
    // Same load twice — once per dispatcher mode. The wire contract
    // (exactly one answer per request, per-stream accounting) must hold
    // identically; batching is a transport optimization, not a semantic.
    for batch in [true, false] {
        let runtime = common::start_runtime(serve_cfg(2));
        let server =
            NetServer::start(runtime, NetConfig { batch_responses: batch, ..NetConfig::default() })
                .unwrap();
        let report = run_tcp_load(&TcpLoadConfig {
            addr: server.local_addr().to_string(),
            connections: 4,
            streams_per_conn: 64,
            accesses_per_stream: 8,
            window: 256,
            ..TcpLoadConfig::default()
        })
        .unwrap();
        assert_eq!(report.submitted, 4 * 64 * 8, "batch={batch}");
        assert_eq!(report.lost, 0, "batch={batch}: {report:?}");
        assert_eq!(report.failed_responses, 0, "batch={batch}: {report:?}");
        assert_eq!(report.responses + report.nacks, report.submitted, "batch={batch}");
        server.shutdown();
    }
}

#[test]
fn dead_connection_streams_are_retired_from_the_shards() {
    let runtime = common::start_runtime(serve_cfg(1));
    let server = NetServer::start(runtime, NetConfig::default()).unwrap();
    let addr = server.local_addr();

    // Conn 1 warms 8 streams, then disappears.
    {
        let mut doomed = NetClient::connect(addr).unwrap();
        doomed.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for stream in 0..8u32 {
            doomed.send_request(stream, 0x400, (stream as u64) << 20);
        }
        for _ in 0..8 {
            doomed.recv_event().unwrap();
        }
    } // dropped: the server sees EOF and reaps conn 1

    // Retirement is lazy (shard workers drain the retire cell when new
    // traffic wakes them), so poke the shard from a second connection
    // until the 8 dead streams are gone and only this conn's remains.
    let mut live = NetClient::connect(addr).unwrap();
    live.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let resident = loop {
        live.send_request(0, 0x400, 0xAB00_0000);
        live.recv_event().unwrap();
        let doc = fetch_metrics(addr).unwrap();
        let resident = scraped(&doc, "dart_serve_resident_streams{shard=\"0\"}").unwrap();
        if resident <= 1 || std::time::Instant::now() > deadline {
            assert!(
                scraped(&doc, "dart_serve_stream_retirements_total").unwrap() >= 8,
                "all 8 dead streams retired:\n{doc}"
            );
            break resident;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(resident, 1, "only the live connection's stream may stay resident");
    server.shutdown();
}

#[test]
fn client_pool_reuses_connections_and_discards_broken_ones() {
    let runtime = common::start_runtime(serve_cfg(1));
    let server = NetServer::start(runtime, NetConfig::default()).unwrap();
    let pool = ClientPool::new(server.local_addr().to_string(), 4);

    for round in 0..3u64 {
        let mut client = pool.get().unwrap();
        client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        client.send_request(0, 0x400, 0x1000 + round * 64);
        match client.recv_event().unwrap() {
            ClientEvent::Response(r) => assert_eq!(r.seq, round),
            ClientEvent::Nack(n) => panic!("unexpected NACK {n:?}"),
        }
    }
    assert_eq!(pool.created(), 1, "three sequential checkouts reuse one socket");
    assert_eq!(pool.idle(), 1);

    // A discarded connection is not recycled; the next checkout dials.
    let mut broken = pool.get().unwrap();
    broken.discard();
    drop(broken);
    assert_eq!(pool.idle(), 0);
    let _fresh = pool.get().unwrap();
    assert_eq!(pool.created(), 2);
    server.shutdown();
}

#[test]
fn tcp_load_accounts_every_request_across_many_streams() {
    let runtime = common::start_runtime(serve_cfg(4));
    let server =
        NetServer::start(runtime, NetConfig { io_threads: 4, ..NetConfig::default() }).unwrap();

    // 8 connections × 128 streams = 1024 concurrent streams (the CI
    // smoke run scales this to 12k+ in release).
    let report = run_tcp_load(&TcpLoadConfig {
        addr: server.local_addr().to_string(),
        connections: 8,
        streams_per_conn: 128,
        accesses_per_stream: 8,
        window: 256,
        ..TcpLoadConfig::default()
    })
    .unwrap();
    assert_eq!(report.submitted, 8 * 128 * 8);
    assert_eq!(report.lost, 0, "{report:?}");
    assert_eq!(report.failed_responses, 0, "{report:?}");
    assert_eq!(report.responses + report.nacks, report.submitted, "{report:?}");
    assert!(report.is_ok(), "{report:?}");
    server.shutdown();
}
