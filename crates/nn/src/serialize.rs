//! Parameter (state-dict) serialization for any [`SequenceModel`].
//!
//! Parameters are exported in `visit_params` order as a list of matrices
//! and written in a compact little-endian binary format. Import validates
//! shapes, so loading into a structurally different model fails loudly.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::matrix::Matrix;
use crate::model::SequenceModel;
use crate::{Error, Result};

/// Magic header of the parameter file format.
const MAGIC: &[u8; 8] = b"DARTNN01";

/// An ordered snapshot of a model's parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct StateDict {
    /// Parameter matrices in `visit_params` order.
    pub params: Vec<Matrix>,
}

impl StateDict {
    /// Total scalar count.
    pub fn len(&self) -> usize {
        self.params.iter().map(Matrix::len).sum()
    }

    /// True when no parameters are stored.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }
}

/// Snapshot a model's parameters.
pub fn export_state<M: SequenceModel + ?Sized>(model: &mut M) -> StateDict {
    let mut params = Vec::new();
    model.visit_params(&mut |p| params.push(p.value.clone()));
    StateDict { params }
}

/// Load a snapshot back into a model of the same architecture.
///
/// # Errors
/// Returns [`Error::Serialization`] on parameter-count or shape mismatch.
pub fn import_state<M: SequenceModel + ?Sized>(model: &mut M, state: &StateDict) -> Result<()> {
    let mut idx = 0usize;
    let mut mismatch: Option<String> = None;
    model.visit_params(&mut |p| {
        if mismatch.is_some() {
            return;
        }
        match state.params.get(idx) {
            Some(src) if src.shape() == p.value.shape() => p.value = src.clone(),
            Some(src) => {
                mismatch = Some(format!(
                    "param {idx}: shape {:?} != expected {:?}",
                    src.shape(),
                    p.value.shape()
                ))
            }
            None => mismatch = Some(format!("missing param {idx}")),
        }
        idx += 1;
    });
    if let Some(msg) = mismatch {
        return Err(Error::Serialization(msg));
    }
    if idx != state.params.len() {
        return Err(Error::Serialization(format!(
            "state has {} params, model expects {idx}",
            state.params.len()
        )));
    }
    Ok(())
}

/// Write a state dict in binary form.
pub fn write_state<W: Write>(writer: W, state: &StateDict) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&(state.params.len() as u64).to_le_bytes())?;
    for m in &state.params {
        w.write_all(&(m.rows() as u64).to_le_bytes())?;
        w.write_all(&(m.cols() as u64).to_le_bytes())?;
        for &v in m.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Read a state dict written by [`write_state`].
pub fn read_state<R: Read>(reader: R) -> io::Result<StateDict> {
    let mut r = BufReader::new(reader);
    let mut header = [0u8; 16];
    r.read_exact(&mut header)?;
    if &header[..8] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad state-dict magic"));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
    let mut params = Vec::with_capacity(count);
    for _ in 0..count {
        let mut dims = [0u8; 16];
        r.read_exact(&mut dims)?;
        let rows = u64::from_le_bytes(dims[..8].try_into().unwrap()) as usize;
        let cols = u64::from_le_bytes(dims[8..].try_into().unwrap()) as usize;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "shape overflow"))?;
        let mut raw = vec![0u8; n * 4];
        r.read_exact(&mut raw)?;
        let data: Vec<f32> =
            raw.chunks_exact(4).map(|b| f32::from_le_bytes(b.try_into().unwrap())).collect();
        params.push(Matrix::from_vec(rows, cols, data));
    }
    Ok(StateDict { params })
}

/// Save a model's parameters to a file.
pub fn save_model<M: SequenceModel + ?Sized>(
    model: &mut M,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    write_state(std::fs::File::create(path)?, &export_state(model))
}

/// Load parameters from a file into a model of the same architecture.
pub fn load_model<M: SequenceModel + ?Sized>(model: &mut M, path: impl AsRef<Path>) -> Result<()> {
    let state =
        read_state(std::fs::File::open(path).map_err(|e| Error::Serialization(e.to_string()))?)
            .map_err(|e| Error::Serialization(e.to_string()))?;
    import_state(model, &state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AccessPredictor, ModelConfig, SequenceModel};

    fn tiny() -> AccessPredictor {
        AccessPredictor::new(
            ModelConfig {
                input_dim: 4,
                dim: 8,
                heads: 2,
                layers: 1,
                ffn_dim: 16,
                output_dim: 5,
                seq_len: 3,
            },
            7,
        )
        .unwrap()
    }

    #[test]
    fn export_import_roundtrip_preserves_outputs() {
        let mut a = tiny();
        let state = export_state(&mut a);
        assert!(!state.is_empty());

        // A differently-seeded model produces different outputs until the
        // state is imported.
        let mut b = AccessPredictor::new(a.config.clone(), 999).unwrap();
        let x = Matrix::from_fn(3, 4, |r, c| (r + c) as f32 * 0.1);
        let ya = a.forward_logits(&x, false);
        assert_ne!(ya, b.forward_logits(&x, false));
        import_state(&mut b, &state).unwrap();
        assert_eq!(ya, b.forward_logits(&x, false));
    }

    #[test]
    fn binary_roundtrip() {
        let mut model = tiny();
        let state = export_state(&mut model);
        let mut buf = Vec::new();
        write_state(&mut buf, &state).unwrap();
        let back = read_state(&buf[..]).unwrap();
        assert_eq!(state, back);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut a = tiny();
        let mut state = export_state(&mut a);
        state.params[0] = Matrix::zeros(1, 1);
        assert!(import_state(&mut a, &state).is_err());
    }

    #[test]
    fn param_count_mismatch_rejected() {
        let mut a = tiny();
        let mut state = export_state(&mut a);
        state.params.push(Matrix::zeros(2, 2));
        assert!(import_state(&mut a, &state).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(read_state(&[0u8; 32][..]).is_err());
    }
}
