//! `dart-audit` — the workspace static-analysis gate.
//!
//! A std-only, zero-dep pass over every `.rs` file in the workspace,
//! enforcing the project invariants rustc and clippy cannot express (see
//! [`rules`] for the R1–R5 catalog and the README's "Static analysis &
//! sanitizers" section for how to read findings and amend the allowlist).
//!
//! Run as `cargo run -p dart-audit` from the workspace root; CI runs it as
//! a hard gate in both profiles. Exit codes: `0` clean, `1` findings or
//! stale allowlist entries, `2` usage/configuration errors.

pub mod allowlist;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use allowlist::Allowlist;
use rules::{Finding, Rule};

/// Directory names never scanned, at any depth.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];
/// Workspace-relative path prefixes never scanned: the fixture corpus is
/// *deliberately* full of violations.
const SKIP_PREFIXES: [&str; 1] = ["crates/audit/fixtures"];

/// Everything one run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived the allowlist, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Allowlist entries that suppressed nothing this run (rot).
    pub stale: Vec<allowlist::Entry>,
    /// Files scanned.
    pub files: usize,
    /// Pre-suppression finding counts per rule (what the tree contains).
    pub raw_counts: BTreeMap<Rule, usize>,
    /// Post-suppression counts per rule (what gates the build).
    pub counts: BTreeMap<Rule, usize>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale.is_empty()
    }

    /// The one-line machine-readable summary CI greps into step summaries.
    pub fn summary_line(&self) -> String {
        let per_rule: Vec<String> = Rule::ALL
            .iter()
            .map(|r| format!("{}={}", r.id(), self.counts.get(r).copied().unwrap_or(0)))
            .collect();
        format!(
            "dart-audit: {} stale-allowlist={} files-scanned={}",
            per_rule.join(" "),
            self.stale.len(),
            self.files
        )
    }

    /// Per-rule lines for human/step-summary output: raw sites vs gated
    /// findings (raw − allowlisted = gated).
    pub fn rule_table(&self) -> String {
        let mut out = String::new();
        for r in Rule::ALL {
            let raw = self.raw_counts.get(&r).copied().unwrap_or(0);
            let gated = self.counts.get(&r).copied().unwrap_or(0);
            out.push_str(&format!(
                "dart-audit: {} ({}): sites={} allowlisted={} violations={}\n",
                r.id(),
                r.name(),
                raw,
                raw - gated,
                gated
            ));
        }
        out
    }
}

/// Recursively collect workspace `.rs` files (sorted, workspace-relative).
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let rel = rel_path(root, &path);
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref())
                    || name.starts_with('.')
                    || SKIP_PREFIXES.iter().any(|p| rel == *p || rel.starts_with(p))
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative, forward-slash path.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Analyze one file's source under its workspace-relative path.
pub fn analyze_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let view = lexer::lex(source);
    rules::analyze(rel_path, &view)
}

/// Run the full gate: scan `root`, apply `allowlist`, compute staleness.
pub fn run(root: &Path, allowlist: &Allowlist) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut used = vec![0usize; allowlist.entries.len()];
    let files = collect_files(root)?;
    report.files = files.len();

    for path in &files {
        let rel = rel_path(root, path);
        let source = std::fs::read_to_string(path)?;
        let view = lexer::lex(&source);
        for f in rules::analyze(&rel, &view) {
            *report.raw_counts.entry(f.rule).or_insert(0) += 1;
            let raw_line = view.raw.get(f.line - 1).map(String::as_str).unwrap_or("");
            let suppressed = allowlist.entries.iter().enumerate().find(|(_, e)| {
                e.rule == f.rule
                    && e.file == f.file
                    && (e.contains.is_empty() || raw_line.contains(&e.contains))
            });
            match suppressed {
                Some((idx, _)) => used[idx] += 1,
                None => {
                    *report.counts.entry(f.rule).or_insert(0) += 1;
                    report.findings.push(f);
                }
            }
        }
    }
    report.stale = allowlist
        .entries
        .iter()
        .zip(&used)
        .filter(|(_, &n)| n == 0)
        .map(|(e, _)| e.clone())
        .collect();
    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}
