//! Loss functions: BCE-with-logits, MSE, and the paper's multi-label
//! knowledge-distillation loss with T-Sigmoid softening (Eq. 24–25).
//!
//! Every loss returns `(scalar_loss, gradient)` where the gradient is taken
//! w.r.t. the first argument and already includes the `1/n` mean scaling, so
//! callers can feed it straight into `backward_logits`.

use crate::layers::activation_sigmoid as sigmoid;
use crate::matrix::Matrix;

/// Binary cross-entropy over logits (numerically stable log-sum-exp form).
///
/// `loss = mean( max(z,0) - z*y + ln(1 + e^{-|z|}) )`,
/// `grad = (sigmoid(z) - y) / n`.
pub fn bce_with_logits(logits: &Matrix, targets: &Matrix) -> (f32, Matrix) {
    assert_eq!(logits.shape(), targets.shape(), "bce shape mismatch");
    let n = logits.len() as f32;
    let mut loss = 0.0f64;
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    for i in 0..logits.len() {
        let z = logits.as_slice()[i];
        let y = targets.as_slice()[i];
        loss += (z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln()) as f64;
        grad.as_mut_slice()[i] = (sigmoid(z) - y) / n;
    }
    ((loss / n as f64) as f32, grad)
}

/// Mean squared error. `loss = mean((a - b)^2)`, `grad = 2(a-b)/n`.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len() as f32;
    let mut loss = 0.0f64;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for i in 0..pred.len() {
        let d = pred.as_slice()[i] - target.as_slice()[i];
        loss += (d * d) as f64;
        grad.as_mut_slice()[i] = 2.0 * d / n;
    }
    ((loss / n as f64) as f32, grad)
}

/// T-Sigmoid (paper Eq. 24): `sigma(y / T)` — a softened sigmoid used to
/// smooth teacher/student probability distributions during distillation.
#[inline]
pub fn t_sigmoid(logit: f32, temperature: f32) -> f32 {
    sigmoid(logit / temperature)
}

/// Knowledge-distillation KL loss between Bernoulli distributions produced by
/// T-Sigmoid outputs of teacher and student (paper Eq. 25, first line).
///
/// `KL((z_t, 1-z_t) || (z_s, 1-z_s))` summed over labels, averaged over the
/// batch; gradient w.r.t. student logits is `(z_s - z_t)/T / n`, scaled by
/// `T^2` (the Hinton correction) so gradient magnitudes stay comparable to
/// the hard loss across temperatures.
pub fn kd_kl(student_logits: &Matrix, teacher_logits: &Matrix, temperature: f32) -> (f32, Matrix) {
    assert_eq!(student_logits.shape(), teacher_logits.shape(), "kd shape mismatch");
    assert!(temperature > 0.0, "temperature must be positive");
    let n = student_logits.len() as f32;
    let t2 = temperature * temperature;
    let mut loss = 0.0f64;
    let mut grad = Matrix::zeros(student_logits.rows(), student_logits.cols());
    for i in 0..student_logits.len() {
        let zs = t_sigmoid(student_logits.as_slice()[i], temperature).clamp(1e-7, 1.0 - 1e-7);
        let zt = t_sigmoid(teacher_logits.as_slice()[i], temperature).clamp(1e-7, 1.0 - 1e-7);
        loss += (zt * (zt / zs).ln() + (1.0 - zt) * ((1.0 - zt) / (1.0 - zs)).ln()) as f64;
        grad.as_mut_slice()[i] = t2 * (zs - zt) / (temperature * n);
    }
    ((t2 * (loss / n as f64) as f32), grad)
}

/// Combined distillation objective (paper Eq. 25, second line):
/// `lambda * KD + (1 - lambda) * BCE`.
pub fn distill_loss(
    student_logits: &Matrix,
    teacher_logits: &Matrix,
    targets: &Matrix,
    temperature: f32,
    lambda: f32,
) -> (f32, Matrix) {
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
    let (l_kd, g_kd) = kd_kl(student_logits, teacher_logits, temperature);
    let (l_bce, g_bce) = bce_with_logits(student_logits, targets);
    let mut grad = g_kd.scale(lambda);
    grad.add_scaled(&g_bce, 1.0 - lambda);
    (lambda * l_kd + (1.0 - lambda) * l_bce, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_is_minimal_when_confidently_correct() {
        let targets = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let good = Matrix::from_vec(1, 2, vec![10.0, -10.0]);
        let bad = Matrix::from_vec(1, 2, vec![-10.0, 10.0]);
        let (lg, _) = bce_with_logits(&good, &targets);
        let (lb, _) = bce_with_logits(&bad, &targets);
        assert!(lg < 1e-3);
        assert!(lb > 5.0);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let targets = Matrix::from_vec(1, 3, vec![1.0, 0.0, 1.0]);
        let logits = Matrix::from_vec(1, 3, vec![0.3, -0.7, 1.2]);
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let numeric =
                (bce_with_logits(&lp, &targets).0 - bce_with_logits(&lm, &targets).0) / (2.0 * eps);
            assert!((grad.as_slice()[i] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn mse_zero_when_equal() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert_eq!(g.max_abs(), 0.0);
    }

    #[test]
    fn kd_zero_when_student_equals_teacher() {
        let logits = Matrix::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.0]);
        let (l, g) = kd_kl(&logits, &logits, 2.0);
        assert!(l.abs() < 1e-6);
        assert!(g.max_abs() < 1e-6);
    }

    #[test]
    fn kd_positive_when_distributions_differ() {
        let s = Matrix::from_vec(1, 2, vec![3.0, -3.0]);
        let t = Matrix::from_vec(1, 2, vec![-3.0, 3.0]);
        let (l, _) = kd_kl(&s, &t, 2.0);
        assert!(l > 0.1);
    }

    #[test]
    fn kd_gradient_matches_finite_difference() {
        let t = Matrix::from_vec(1, 3, vec![1.0, -0.5, 0.2]);
        let s = Matrix::from_vec(1, 3, vec![0.1, 0.4, -0.3]);
        let temp = 3.0;
        let (_, grad) = kd_kl(&s, &t, temp);
        let eps = 1e-3;
        for i in 0..3 {
            let mut sp = s.clone();
            sp.as_mut_slice()[i] += eps;
            let mut sm = s.clone();
            sm.as_mut_slice()[i] -= eps;
            let numeric = (kd_kl(&sp, &t, temp).0 - kd_kl(&sm, &t, temp).0) / (2.0 * eps);
            assert!(
                (grad.as_slice()[i] - numeric).abs() < 1e-3,
                "i={i}: {} vs {numeric}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn t_sigmoid_softens() {
        // Higher temperature pulls probabilities toward 0.5.
        let hot = t_sigmoid(2.0, 10.0);
        let cold = t_sigmoid(2.0, 1.0);
        assert!((hot - 0.5).abs() < (cold - 0.5).abs());
    }

    #[test]
    fn distill_loss_interpolates() {
        let s = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        let t = Matrix::from_vec(1, 2, vec![1.0, -1.0]);
        let y = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let (l0, _) = distill_loss(&s, &t, &y, 2.0, 0.0);
        let (l1, _) = distill_loss(&s, &t, &y, 2.0, 1.0);
        let (lh, _) = distill_loss(&s, &t, &y, 2.0, 0.5);
        let (bce, _) = bce_with_logits(&s, &y);
        let (kd, _) = kd_kl(&s, &t, 2.0);
        assert!((l0 - bce).abs() < 1e-6);
        assert!((l1 - kd).abs() < 1e-6);
        assert!((lh - 0.5 * (bce + kd)).abs() < 1e-6);
    }
}
