//! Neural-network layers with hand-derived backward passes.
//!
//! Every layer implements [`Layer`]: `forward` caches whatever the matching
//! `backward` needs, and `visit_params` exposes parameters to the optimizer in
//! a stable order. Batches of sequences are passed *stacked* as
//! `(batch * seq_len) x features` matrices; layers that need per-sample
//! structure (attention, LSTM) are constructed with the sequence length.

mod activation;
mod attention;
mod dropout;
mod encoder;
mod ffn;
mod layernorm;
mod linear;
mod lstm;

pub use activation::{sigmoid as activation_sigmoid, Relu, Sigmoid};
pub use attention::Msa;
pub use dropout::Dropout;
pub use encoder::EncoderBlock;
pub use ffn::Ffn;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use lstm::Lstm;

use crate::matrix::Matrix;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Gradient of the loss w.r.t. `value`, accumulated by `backward`.
    pub grad: Matrix,
}

impl Param {
    /// Wrap a value with a zeroed gradient of the same shape.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Param { value, grad }
    }

    /// Reset the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter holds no scalars.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// Common interface of all layers.
pub trait Layer {
    /// Compute the layer output for stacked input `x`.
    ///
    /// When `train` is true the layer caches intermediates for `backward`.
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix;

    /// Back-propagate `grad` (dL/d-output) and return dL/d-input,
    /// accumulating parameter gradients. Must follow a `forward` with
    /// `train = true` on the same batch.
    fn backward(&mut self, grad: &Matrix) -> Matrix;

    /// Visit all parameters in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Human-readable layer kind, used in diagnostics.
    fn name(&self) -> &'static str;

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Zero all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }
}

/// Finite-difference gradient check helper used by layer unit tests.
///
/// Returns the maximum relative error between analytic and numeric
/// gradients of `loss(layer_output)` w.r.t. the input.
#[cfg(test)]
pub(crate) fn grad_check_input<L: Layer>(layer: &mut L, x: &Matrix, eps: f32) -> f32 {
    // Loss = sum of outputs (so dL/dy = 1 everywhere).
    let y = layer.forward(x, true);
    let ones = Matrix::full(y.rows(), y.cols(), 1.0);
    let analytic = layer.backward(&ones);

    let mut max_rel = 0.0f32;
    let mut xp = x.clone();
    for i in 0..x.len() {
        let orig = xp.as_slice()[i];
        xp.as_mut_slice()[i] = orig + eps;
        let fp: f32 = layer.forward(&xp, false).as_slice().iter().sum();
        xp.as_mut_slice()[i] = orig - eps;
        let fm: f32 = layer.forward(&xp, false).as_slice().iter().sum();
        xp.as_mut_slice()[i] = orig;
        let numeric = (fp - fm) / (2.0 * eps);
        let a = analytic.as_slice()[i];
        let denom = a.abs().max(numeric.abs()).max(1e-3);
        max_rel = max_rel.max((a - numeric).abs() / denom);
    }
    max_rel
}
