//! Feed-forward network: `Linear_O(max(0, Linear_H(x)))` (paper Eq. 2).

use crate::init::InitRng;
use crate::layers::{Layer, Linear, Param, Relu};
use crate::matrix::Matrix;

/// Two-layer feed-forward block with ReLU.
#[derive(Clone, Debug)]
pub struct Ffn {
    /// Hidden linear (`dim -> hidden`).
    pub hidden: Linear,
    /// ReLU between the two linears.
    pub relu: Relu,
    /// Output linear (`hidden -> dim`).
    pub output: Linear,
}

impl Ffn {
    /// New FFN with model dimension `dim` and inner dimension `hidden_dim`.
    pub fn new(dim: usize, hidden_dim: usize, rng: &mut InitRng) -> Self {
        Ffn {
            hidden: Linear::new(dim, hidden_dim, rng),
            relu: Relu::new(),
            output: Linear::new(hidden_dim, dim, rng),
        }
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.hidden.in_dim()
    }

    /// Inner (feed-forward) dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden.out_dim()
    }
}

impl Layer for Ffn {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let h = self.hidden.forward(x, train);
        let a = self.relu.forward(&h, train);
        self.output.forward(&a, train)
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        let da = self.output.backward(grad);
        let dh = self.relu.backward(&da);
        self.hidden.backward(&dh)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.hidden.visit_params(f);
        self.output.visit_params(f);
    }

    fn name(&self) -> &'static str {
        "ffn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::grad_check_input;

    #[test]
    fn shapes() {
        let mut rng = InitRng::new(2);
        let mut ffn = Ffn::new(6, 12, &mut rng);
        let x = Matrix::from_fn(5, 6, |r, c| (r + c) as f32 * 0.1);
        assert_eq!(ffn.forward(&x, false).shape(), (5, 6));
        assert_eq!(ffn.dim(), 6);
        assert_eq!(ffn.hidden_dim(), 12);
    }

    #[test]
    fn gradient_check() {
        let mut rng = InitRng::new(8);
        let mut ffn = Ffn::new(4, 7, &mut rng);
        let x = Matrix::from_fn(3, 4, |r, c| ((r * 4 + c) as f32 * 0.41).sin());
        let err = grad_check_input(&mut ffn, &x, 1e-2);
        assert!(err < 2e-2, "relative grad error {err}");
    }
}
