//! The scalar kernel primitives — the mandatory fallback on targets
//! without SIMD support and the bit-exactness **reference** every SIMD
//! implementation is tested against. These bodies define the semantics
//! (operation order, `0.0 + x` initialization, strict-`<` first-wins
//! argmin); see [`super::SimdOps`] for the contracts.

use crate::kmeans::nearest_centroid_flat;

/// `dst[j] = 0.0 + src[j]`. The explicit `0.0 +` is load-bearing: it
/// normalizes `-0.0` to `+0.0` exactly as the accumulating loops do, so a
/// first-pass "initialize" is bit-identical to "zero-fill then add".
pub fn init_row(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = 0.0 + s;
    }
}

/// `dst[j] += src[j]`.
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `dst[j] = 0.0 + row[idx[j]]`.
pub fn gather_init(dst: &mut [f32], row: &[f32], idx: &[i32]) {
    for (d, &i) in dst.iter_mut().zip(idx) {
        *d = 0.0 + row[i as usize];
    }
}

/// `dst[j] += row[idx[j]]`.
pub fn gather_add(dst: &mut [f32], row: &[f32], idx: &[i32]) {
    for (d, &i) in dst.iter_mut().zip(idx) {
        *d += row[i as usize];
    }
}

/// Nearest row of a flat `K x dim` centroid block: delegates to the
/// canonical [`nearest_centroid_flat`] scan.
pub fn nearest_flat(point: &[f32], centroids: &[f32], dim: usize) -> (usize, f32) {
    nearest_centroid_flat(point, centroids, dim)
}

/// `dst[j] += src[j] as f32 * scale` (the int8 table dequantize-accumulate).
pub fn i8_scale_add(dst: &mut [f32], src: &[i8], scale: f32) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s as f32 * scale;
    }
}
