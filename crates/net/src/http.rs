//! The one HTTP route the binary port also answers: `GET /metrics`.
//!
//! Not a web server — just enough HTTP/1.x to let `curl` and a
//! Prometheus scraper read [`dart_serve::ServeRuntime::render_metrics`]
//! from the same TCP port the binary protocol runs on (the first byte of
//! a connection decides which parser it gets; `0xDA` is not an ASCII
//! method byte). Every HTTP response closes the connection.

/// Upper bound on the request head (request line + headers). Anything
/// longer is answered with `431` and the connection is dropped — this
/// port's legitimate scrape requests are tiny.
pub(crate) const MAX_HEAD: usize = 4096;

/// What to do with an HTTP-mode connection after seeing `buf`.
pub(crate) enum HttpStep {
    /// The request head is incomplete; keep reading.
    NeedMore,
    /// Write these bytes, flush, then close the connection.
    Respond(Vec<u8>),
}

fn simple_response(status: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n\
         {body}",
        body.len()
    )
    .into_bytes()
}

/// Drive one HTTP-mode connection. `buf` is everything read so far;
/// `metrics` renders the exposition document lazily (only a real
/// `GET /metrics` pays for a stats snapshot).
pub(crate) fn step(buf: &[u8], metrics: impl FnOnce() -> String) -> HttpStep {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() >= MAX_HEAD {
            return HttpStep::Respond(simple_response(
                "431 Request Header Fields Too Large",
                "request head too large\n",
            ));
        }
        return HttpStep::NeedMore;
    };
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let body = match (method, path) {
        ("GET", "/metrics") => return HttpStep::Respond(simple_response("200 OK", &metrics())),
        ("GET", _) => simple_response("404 Not Found", "only /metrics lives here\n"),
        _ => simple_response("405 Method Not Allowed", "only GET is supported\n"),
    };
    HttpStep::Respond(body)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        // Be liberal: bare-LF requests (e.g. `printf 'GET /metrics\n\n'`)
        // terminate too.
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn respond(req: &[u8]) -> String {
        match step(req, || "dart_serve_uptime_seconds 1.0\n".to_string()) {
            HttpStep::Respond(bytes) => String::from_utf8(bytes).unwrap(),
            HttpStep::NeedMore => panic!("expected a response"),
        }
    }

    #[test]
    fn metrics_route_serves_the_exposition() {
        let out = respond(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(out.starts_with("HTTP/1.1 200 OK\r\n"), "{out}");
        assert!(out.contains("Content-Length: 30\r\n"), "{out}");
        assert!(out.ends_with("dart_serve_uptime_seconds 1.0\n"), "{out}");
    }

    #[test]
    fn unknown_path_is_404_and_bad_method_is_405() {
        assert!(respond(b"GET /favicon.ico HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 404"));
        assert!(respond(b"POST /metrics HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"));
    }

    #[test]
    fn partial_head_waits_and_oversized_head_is_431() {
        assert!(matches!(step(b"GET /metr", String::new), HttpStep::NeedMore));
        let huge = vec![b'a'; MAX_HEAD];
        assert!(respond(&huge).starts_with("HTTP/1.1 431"));
    }

    #[test]
    fn bare_lf_requests_terminate() {
        assert!(respond(b"GET /metrics HTTP/1.0\n\n").starts_with("HTTP/1.1 200"));
    }
}
