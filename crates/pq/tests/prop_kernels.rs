//! Property-based tests on the PQ stack: quantizer invariants, kernel cost
//! monotonicity, and LUT correctness over random configurations.

use dart_nn::init::InitRng;
use dart_nn::matrix::Matrix;
use dart_pq::complexity::{
    attention_latency, attention_storage_bits, linear_latency, linear_storage_bits, log2_ceil,
};
use dart_pq::{EncoderKind, ProductQuantizer, SigmoidLut};
use proptest::prelude::*;

fn rand_matrix(r: usize, c: usize, seed: u64) -> Matrix {
    let mut rng = InitRng::new(seed);
    Matrix::from_fn(r, c, |_, _| rng.normal())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Codes are always in range for both encoders.
    #[test]
    fn codes_in_range(
        seed in 0u64..10_000,
        k in 1usize..40,
        c in 1usize..6,
        dim in 2usize..12,
        tree in proptest::bool::ANY,
    ) {
        let data = rand_matrix(60, dim, seed);
        let kind = if tree { EncoderKind::HashTree } else { EncoderKind::Argmin };
        let pq = ProductQuantizer::fit(&data, c, k, kind, seed);
        for i in 0..data.rows() {
            for &code in &pq.encode_row(data.row(i)) {
                prop_assert!(code < k);
            }
        }
    }

    /// Encoding is deterministic.
    #[test]
    fn encoding_is_deterministic(seed in 0u64..10_000, k in 2usize..16) {
        let data = rand_matrix(50, 6, seed);
        let pq = ProductQuantizer::fit(&data, 2, k, EncoderKind::HashTree, seed);
        for i in 0..10 {
            prop_assert_eq!(pq.encode_row(data.row(i)), pq.encode_row(data.row(i)));
        }
    }

    /// log2_ceil is monotone and exact on powers of two.
    #[test]
    fn log2_ceil_properties(x in 1usize..100_000) {
        let l = log2_ceil(x);
        prop_assert!(1usize << l >= x);
        if l > 0 {
            prop_assert!(1usize << (l - 1) < x);
        }
        prop_assert!(log2_ceil(x + 1) >= l);
    }

    /// Kernel latency is monotone in K and C (Eq. 16-17).
    #[test]
    fn latency_monotone(k in 2usize..512, c in 1usize..8) {
        prop_assert!(linear_latency(2 * k, c) >= linear_latency(k, c));
        prop_assert!(linear_latency(k, c + 1) >= linear_latency(k, c));
        prop_assert!(attention_latency(2 * k, c, c) >= attention_latency(k, c, c));
    }

    /// Kernel storage is monotone in every argument (Eq. 18-19).
    #[test]
    fn storage_monotone(
        t in 1usize..32,
        d in 1usize..128,
        k in 2usize..256,
        c in 1usize..8,
    ) {
        prop_assert!(
            linear_storage_bits(t, d, 2 * k, c, 32) > linear_storage_bits(t, d, k, c, 32)
        );
        prop_assert!(
            linear_storage_bits(t, d + 1, k, c, 32) >= linear_storage_bits(t, d, k, c, 32)
        );
        prop_assert!(
            attention_storage_bits(t, d, 2 * k, c, c, 32)
                > attention_storage_bits(t, d, k, c, c, 32)
        );
        // Halving entry precision cannot increase storage.
        prop_assert!(
            linear_storage_bits(t, d, k, c, 8) <= linear_storage_bits(t, d, k, c, 32)
        );
    }

    /// The sigmoid LUT is within its own error bound everywhere.
    #[test]
    fn sigmoid_lut_error_bound(n in 16usize..2048, range in 2.0f32..12.0, x in -20.0f32..20.0) {
        let lut = SigmoidLut::new(n, range);
        let exact = 1.0 / (1.0 + (-x).exp());
        prop_assert!((lut.query(x) - exact).abs() <= lut.error_bound() * 1.01 + 1e-6);
    }

    /// Reconstruction lands inside the convex hull radius: reconstructed
    /// subvectors are actual prototypes, so their norm is bounded by the
    /// largest prototype norm.
    #[test]
    fn reconstruct_returns_prototypes(seed in 0u64..5_000, k in 2usize..12) {
        let data = rand_matrix(80, 8, seed);
        let pq = ProductQuantizer::fit(&data, 2, k, EncoderKind::Argmin, seed);
        let codes = pq.encode_row(data.row(0));
        let rec = pq.reconstruct(&codes);
        for (ci, &(lo, hi)) in pq.bounds().iter().enumerate() {
            let sub = &rec[lo..hi];
            let is_proto = (0..pq.num_protos()).any(|p| {
                pq.proto(ci, p).iter().zip(sub).all(|(a, b)| (a - b).abs() < 1e-6)
            });
            prop_assert!(is_proto, "reconstructed subvector is not a prototype");
        }
    }
}
