//! `loadgen` — drive the `dart-serve` runtime with synthetic multi-stream
//! load and report a pass/fail verdict.
//!
//! Unlike `serve_bench` (a comparative scaling study), this binary is a
//! smoke/soak driver: it runs one configuration, prints a `LoadReport`
//! (throughput, p50/p99 from the runtime's shared latency histogram,
//! failure counts) plus the full metrics exposition, and **exits
//! non-zero** if any response carried an error or any response was lost —
//! suitable as a CI gate or a quick manual health check.
//!
//! Environment knobs:
//!
//! * `DART_LOADGEN_STREAMS` (default 64) — concurrent client streams,
//! * `DART_LOADGEN_ACCESSES` (default 200) — accesses per stream,
//! * `DART_LOADGEN_SHARDS` (default 4) — shard workers,
//! * `DART_LOADGEN_MAX_BATCH` (default 32) — coalescing cap per drain,
//! * `DART_LOADGEN_PANIC_STREAM` (unset by default) — fault injection:
//!   kill the shard serving this stream id mid-batch, to demonstrate the
//!   non-zero exit path and the failure accounting.
//! * `DART_LOADGEN_SWAP_AT` (unset by default) — hot-swap drill: once
//!   this many requests have been served, swap in a bit-identical
//!   `deep_clone` of the active model mid-run. The verdict then also
//!   requires the swap to have happened and — as always — zero lost or
//!   failed responses: a swap that drops even one request fails the run.
//!
//! TCP mode (the `dart-net` front-end instead of in-process submission):
//!
//! * `DART_LOADGEN_ADDR` (unset by default) — bind a [`dart_net::NetServer`]
//!   here (e.g. `127.0.0.1:0`) and drive it over real sockets with
//!   [`dart_net::run_tcp_load`]; the in-process knobs above still size the
//!   model and runtime,
//! * `DART_LOADGEN_CONNS` (default 8) — client connections; the
//!   `DART_LOADGEN_STREAMS` total is split evenly across them,
//! * `DART_LOADGEN_IO_THREADS` (default 4) — server IO threads,
//! * `DART_LOADGEN_WINDOW` (default 256) — per-connection in-flight cap
//!   on the client side,
//! * `DART_LOADGEN_IDLE_MS` (default 60000) — server-side idle timeout;
//!   generous by default so a loaded-but-slow run is never reaped,
//! * `DART_LOADGEN_TIMEOUT_MS` (default 10000) — client read timeout
//!   before unanswered frames count as lost,
//! * `DART_NET_POLLER_SLEEP_MS` (default 5) — fallback poller probe cap,
//!   forwarded into [`dart_net::NetConfig`] (strict parse, like every
//!   other knob here: a malformed value exits 2 before any socket opens).
//!
//! Either mode exits non-zero if any request is lost, failed, or
//! unaccounted; TCP mode also cross-checks the scraped `/metrics`
//! counters against the client-side report.
//!
//! ```sh
//! cargo run --release -p dart-bench --bin loadgen
//! DART_LOADGEN_ADDR=127.0.0.1:0 cargo run --release -p dart-bench --bin loadgen
//! ```

use std::sync::Arc;

use dart_bench::{announce_threads, env_usize_strict};
use dart_core::config::TabularConfig;
use dart_core::tabularize::tabularize;
use dart_core::TabularModel;
use dart_nn::model::{AccessPredictor, ModelConfig};
use dart_serve::{generate_requests, run_load, LoadGenConfig, ServeConfig, ServeRuntime};
use dart_trace::{build_dataset, workload_by_name, PreprocessConfig};

/// Fit a small DART table model on a synthetic trace (same recipe as
/// `serve_bench`: serving cost does not depend on predictive quality).
fn build_model() -> (Arc<TabularModel>, PreprocessConfig) {
    let pre = PreprocessConfig {
        seq_len: 8,
        addr_segments: 4,
        seg_bits: 6,
        pc_segments: 2,
        delta_range: 16,
        lookforward: 8,
    };
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 16,
        heads: 2,
        layers: 1,
        ffn_dim: 32,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let student = AccessPredictor::new(cfg, 0x5EED).expect("valid model config");
    let trace = workload_by_name("bwaves").expect("workload").generate(4_000, 7);
    let data = build_dataset(&trace, &pre, 2);
    let tab_cfg = TabularConfig { k: 16, c: 2, fine_tune_epochs: 0, ..Default::default() };
    let (model, _) = tabularize(&student, &data.inputs, &tab_cfg);
    (Arc::new(model), pre)
}

/// Pull one counter's value out of a rendered exposition document.
fn scraped_counter(doc: &str, name: &str) -> Option<u64> {
    doc.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// The mid-run hot-swap drill (`DART_LOADGEN_SWAP_AT`): a watcher thread
/// that waits for the served-request counter to cross the trigger, then
/// swaps in a bit-identical `deep_clone` of the active model. Because the
/// clone is bit-identical, any lost, failed, or changed response after
/// the swap is the swap machinery's fault — which is exactly what this
/// smoke exists to catch.
struct SwapDrill {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<bool>,
}

impl SwapDrill {
    fn spawn(runtime: Arc<ServeRuntime>, trigger: u64) -> SwapDrill {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(std::sync::atomic::Ordering::SeqCst) {
                if runtime.stats_snapshot().requests >= trigger {
                    let (_, active) = runtime.registry().active();
                    let clone = Arc::new(active.deep_clone());
                    let version = runtime
                        .swap_model(clone, "loadgen mid-run swap")
                        .expect("bit-identical clone must be dimension-compatible");
                    println!("loadgen: hot-swapped to model version {version} mid-run");
                    return true;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            false
        });
        SwapDrill { stop, handle }
    }

    /// Stop watching and report whether the swap actually fired.
    fn finish(self) -> bool {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        self.handle.join().expect("swap watcher panicked")
    }
}

/// Join the swap drill (if one was requested) and fail the verdict when
/// the trigger was never reached — a swap smoke that silently skips the
/// swap would be a green light with no bulb.
fn swap_verdict(drill: Option<SwapDrill>, swaps_counted: u64) -> bool {
    match drill {
        None => true,
        Some(d) => {
            let fired = d.finish();
            if !fired {
                eprintln!("loadgen: DART_LOADGEN_SWAP_AT set but the swap never triggered");
                return false;
            }
            if swaps_counted == 0 {
                eprintln!("loadgen: swap fired but dart_serve_model_swaps_total is 0");
                return false;
            }
            true
        }
    }
}

/// TCP mode: put the runtime behind the `dart-net` front-end and drive
/// it over real sockets, then cross-check the server's own counters
/// against the client-side accounting. Exits the process with a verdict.
fn run_tcp_mode(
    runtime: Arc<ServeRuntime>,
    drill: Option<SwapDrill>,
    bind: &str,
    streams: usize,
    accesses: usize,
) -> ! {
    let conns = env_usize_strict("DART_LOADGEN_CONNS", 8).max(1);
    let io_threads = env_usize_strict("DART_LOADGEN_IO_THREADS", 4);
    let window = env_usize_strict("DART_LOADGEN_WINDOW", 256);
    let idle_ms = env_usize_strict("DART_LOADGEN_IDLE_MS", 60_000);
    let timeout_ms = env_usize_strict("DART_LOADGEN_TIMEOUT_MS", 10_000);
    // Strict-parsed here too (exit 2 with a clear message, like every
    // loadgen knob) and forwarded explicitly; `NetServer::start` would
    // otherwise strict-parse the same variable itself at bind time.
    let poller_sleep_ms = env_usize_strict("DART_NET_POLLER_SLEEP_MS", 5);
    let streams_per_conn = streams.div_ceil(conns).max(1);

    let server = dart_net::NetServer::start(
        Arc::clone(&runtime),
        dart_net::NetConfig {
            addr: bind.to_string(),
            io_threads,
            idle_timeout_ms: idle_ms as u64,
            fallback_poller_sleep_ms: poller_sleep_ms as u64,
            ..dart_net::NetConfig::default()
        },
    )
    .expect("bind the load-generator server");
    let addr = server.local_addr();
    println!(
        "loadgen: TCP mode on {addr}: {conns} conn(s) x {streams_per_conn} stream(s) \
         x {accesses} accesses, window {window}, {io_threads} IO thread(s), \
         idle timeout {idle_ms}ms"
    );

    let report = dart_net::run_tcp_load(&dart_net::TcpLoadConfig {
        addr: addr.to_string(),
        connections: conns,
        streams_per_conn: streams_per_conn as u32,
        accesses_per_stream: accesses as u32,
        window: window as u64,
        read_timeout_ms: timeout_ms as u64,
        ..dart_net::TcpLoadConfig::default()
    })
    .expect("load generator IO");
    println!(
        "tcp: {} submitted, {} responses, {} nacks, {} failed, {} lost in {:.2}s \
         ({:.0} req/s)",
        report.submitted,
        report.responses,
        report.nacks,
        report.failed_responses,
        report.lost,
        report.elapsed_s,
        report.submitted as f64 / report.elapsed_s.max(1e-9),
    );

    // The server's own counters must corroborate the client's books.
    let doc = dart_net::fetch_metrics(addr).expect("scrape /metrics");
    println!("\n--- metrics exposition (scraped over HTTP) ---");
    print!("{doc}");
    let frames_in = scraped_counter(&doc, "dart_net_frames_in_total").unwrap_or(0);
    let responses_out = scraped_counter(&doc, "dart_net_responses_out_total").unwrap_or(0);
    let batched = scraped_counter(&doc, "dart_net_batched_writes_total").unwrap_or(0);
    let idle_reaped =
        scraped_counter(&doc, "dart_net_disconnects_total{reason=\"idle\"}").unwrap_or(0);
    let model_swaps = scraped_counter(&doc, "dart_serve_model_swaps_total").unwrap_or(0);
    println!("tcp: {batched} multi-frame outbox append(s), {idle_reaped} idle disconnect(s)");
    server.shutdown();

    let mut verdict_ok = report.is_ok();
    // Hot-swap drill: the swap must have fired, the scraped counter must
    // agree, and (via `report.is_ok()` above) not a single response may
    // have been lost or failed across the swap.
    if !swap_verdict(drill, model_swaps) {
        verdict_ok = false;
    }
    if frames_in != report.submitted {
        eprintln!(
            "loadgen: server decoded {frames_in} frames but the client sent {}",
            report.submitted
        );
        verdict_ok = false;
    }
    if responses_out < report.responses {
        eprintln!(
            "loadgen: server claims {responses_out} responses out, client received {}",
            report.responses
        );
        verdict_ok = false;
    }
    // At meaningful scale the batched write path must actually engage:
    // with thousands of in-flight requests, some dispatcher pump MUST
    // coalesce >1 response for some connection.
    if report.submitted >= 10_000 && batched == 0 {
        eprintln!("loadgen: batched write path never engaged at {} requests", report.submitted);
        verdict_ok = false;
    }
    if !verdict_ok {
        eprintln!(
            "loadgen: FAILED ({} lost, {} failed, {}/{} accounted)",
            report.lost,
            report.failed_responses,
            report.responses + report.nacks,
            report.submitted
        );
        std::process::exit(1);
    }
    println!("loadgen: OK");
    std::process::exit(0);
}

fn main() {
    let streams = env_usize_strict("DART_LOADGEN_STREAMS", 64);
    let accesses = env_usize_strict("DART_LOADGEN_ACCESSES", 200);
    let shards = env_usize_strict("DART_LOADGEN_SHARDS", 4);
    let max_batch = env_usize_strict("DART_LOADGEN_MAX_BATCH", 32);
    let panic_stream = std::env::var("DART_LOADGEN_PANIC_STREAM")
        .ok()
        .map(|v| v.parse::<u64>().expect("DART_LOADGEN_PANIC_STREAM must be a stream id"));
    let swap_at = std::env::var("DART_LOADGEN_SWAP_AT")
        .ok()
        .map(|v| v.parse::<u64>().expect("DART_LOADGEN_SWAP_AT must be a request count"));
    announce_threads();
    println!(
        "loadgen: {streams} streams x {accesses} accesses, {shards} shard(s), \
         max_batch {max_batch}{}",
        match panic_stream {
            Some(id) => format!(", fault injection on stream {id}"),
            None => String::new(),
        }
    );

    let (model, pre) = build_model();
    let reqs =
        generate_requests(&LoadGenConfig { streams, accesses_per_stream: accesses, seed: 0xBEEF });

    let cfg = ServeConfig {
        shards,
        max_batch,
        threshold: 0.5,
        panic_on_stream: panic_stream,
        ..ServeConfig::default()
    };
    let runtime = Arc::new(ServeRuntime::start(model, pre, cfg));
    let drill = swap_at.map(|n| {
        println!("loadgen: hot-swap drill armed at {n} served request(s)");
        SwapDrill::spawn(Arc::clone(&runtime), n)
    });
    if let Ok(bind) = std::env::var("DART_LOADGEN_ADDR") {
        run_tcp_mode(runtime, drill, &bind, streams, accesses);
    }
    let report = run_load(&runtime, &reqs, streams);

    println!("{}", report.summary());
    println!("\n--- metrics exposition ---");
    print!("{}", runtime.render_metrics());
    let swap_ok = swap_verdict(drill, runtime.stats_snapshot().model_swaps);
    // The drill thread has been joined above, so this Arc is unique again.
    if let Ok(runtime) = Arc::try_unwrap(runtime) {
        runtime.shutdown();
    }

    if !report.is_ok() || !swap_ok {
        eprintln!(
            "loadgen: FAILED ({} failure(s), {}/{} responses)",
            report.failures, report.responses, report.submitted
        );
        std::process::exit(1);
    }
    println!("loadgen: OK");
}
