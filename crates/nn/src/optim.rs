//! Optimizers. Adam with optional global-norm gradient clipping.

use crate::layers::Param;
use crate::matrix::Matrix;

/// Adam hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style); 0 disables.
    pub weight_decay: f32,
    /// Global gradient-norm clip; `None` disables.
    pub clip_norm: Option<f32>,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            clip_norm: Some(5.0),
        }
    }
}

/// Adam optimizer. Moment state is allocated lazily on the first step and
/// keyed by parameter visit order, which must stay stable across steps
/// (guaranteed by the `visit_params` contract).
#[derive(Clone, Debug)]
pub struct Adam {
    /// Hyperparameters (mutable so schedules can adjust `lr` between steps).
    pub config: AdamConfig,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// New optimizer with the given hyperparameters.
    pub fn new(config: AdamConfig) -> Self {
        Adam { config, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update. `visit` must invoke its callback once per parameter,
    /// in the same order on every invocation; it may be invoked twice per
    /// step (once to measure the gradient norm when clipping is enabled).
    pub fn step(&mut self, mut visit: impl FnMut(&mut dyn FnMut(&mut Param))) {
        self.t += 1;
        let t = self.t;
        let cfg = self.config;

        let scale = match cfg.clip_norm {
            Some(max_norm) => {
                let mut sq = 0.0f64;
                visit(&mut |p: &mut Param| {
                    sq += p.grad.as_slice().iter().map(|&g| (g as f64) * (g as f64)).sum::<f64>();
                });
                let norm = sq.sqrt() as f32;
                if norm > max_norm {
                    max_norm / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };

        let mut idx = 0usize;
        let m = &mut self.m;
        let v = &mut self.v;
        visit(&mut |p: &mut Param| {
            if m.len() <= idx {
                m.push(Matrix::zeros(p.value.rows(), p.value.cols()));
                v.push(Matrix::zeros(p.value.rows(), p.value.cols()));
            }
            adam_update(&mut m[idx], &mut v[idx], p, t, scale, cfg);
            idx += 1;
        });
    }
}

fn adam_update(m: &mut Matrix, v: &mut Matrix, p: &mut Param, t: u64, scale: f32, cfg: AdamConfig) {
    debug_assert_eq!(m.shape(), p.value.shape(), "optimizer state shape drift");
    let bc1 = 1.0 - cfg.beta1.powi(t as i32);
    let bc2 = 1.0 - cfg.beta2.powi(t as i32);
    let ms = m.as_mut_slice();
    let vs = v.as_mut_slice();
    let ps = p.value.as_mut_slice();
    let gs = p.grad.as_slice();
    for i in 0..ps.len() {
        let g = gs[i] * scale;
        ms[i] = cfg.beta1 * ms[i] + (1.0 - cfg.beta1) * g;
        vs[i] = cfg.beta2 * vs[i] + (1.0 - cfg.beta2) * g * g;
        let m_hat = ms[i] / bc1;
        let v_hat = vs[i] / bc2;
        let mut update = m_hat / (v_hat.sqrt() + cfg.eps);
        if cfg.weight_decay > 0.0 {
            update += cfg.weight_decay * ps[i];
        }
        ps[i] -= cfg.lr * update;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(w) = (w - 3)^2 with Adam; it should converge near 3.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut p = Param::new(Matrix::zeros(1, 1));
        let mut adam = Adam::new(AdamConfig { lr: 0.1, clip_norm: None, ..Default::default() });
        for _ in 0..500 {
            let w = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * (w - 3.0));
            adam.step(|f| f(&mut p));
            p.zero_grad();
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 0.05, "w = {}", p.value.get(0, 0));
    }

    #[test]
    fn adam_with_clipping_still_converges() {
        let mut p = Param::new(Matrix::full(1, 1, 100.0));
        let mut adam =
            Adam::new(AdamConfig { lr: 0.5, clip_norm: Some(1.0), ..Default::default() });
        for _ in 0..2000 {
            let w = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * (w - 3.0));
            adam.step(|f| f(&mut p));
            p.zero_grad();
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 0.2, "w = {}", p.value.get(0, 0));
    }

    #[test]
    fn multiple_params_tracked_independently() {
        let mut p1 = Param::new(Matrix::zeros(1, 1));
        let mut p2 = Param::new(Matrix::zeros(1, 1));
        let mut adam = Adam::new(AdamConfig { lr: 0.1, clip_norm: None, ..Default::default() });
        for _ in 0..500 {
            p1.grad.set(0, 0, 2.0 * (p1.value.get(0, 0) - 1.0));
            p2.grad.set(0, 0, 2.0 * (p2.value.get(0, 0) + 2.0));
            adam.step(|f| {
                f(&mut p1);
                f(&mut p2);
            });
            p1.zero_grad();
            p2.zero_grad();
        }
        assert!((p1.value.get(0, 0) - 1.0).abs() < 0.05);
        assert!((p2.value.get(0, 0) + 2.0).abs() < 0.05);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = Param::new(Matrix::full(1, 1, 1.0));
        let mut adam = Adam::new(AdamConfig {
            lr: 0.01,
            weight_decay: 0.1,
            clip_norm: None,
            ..Default::default()
        });
        // Zero gradient: only decay acts.
        for _ in 0..100 {
            adam.step(|f| f(&mut p));
        }
        assert!(p.value.get(0, 0) < 1.0);
    }

    #[test]
    fn clipping_bounds_effective_gradient() {
        // With a huge gradient and clip_norm=1, the first Adam step moves the
        // weight by at most ~lr (the Adam update is bounded by lr regardless,
        // so verify state: m after step reflects the clipped gradient).
        let mut p = Param::new(Matrix::zeros(1, 1));
        p.grad.set(0, 0, 1e6);
        let mut adam =
            Adam::new(AdamConfig { lr: 0.1, clip_norm: Some(1.0), ..Default::default() });
        adam.step(|f| f(&mut p));
        // m = (1 - beta1) * clipped_grad = 0.1 * 1.0
        assert!((adam.m[0].get(0, 0) - 0.1).abs() < 1e-6);
    }
}
