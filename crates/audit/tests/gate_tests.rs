//! End-to-end tests of the `dart-audit` binary: the self-gate over the
//! committed workspace must pass, and seeded violations / stale or
//! malformed allowlists must fail with the right exit codes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn audit(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dart-audit")).args(args).output().expect("spawn dart-audit")
}

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn workspace_root() -> PathBuf {
    manifest_dir().parent().unwrap().parent().unwrap().to_path_buf()
}

fn seeded() -> PathBuf {
    manifest_dir().join("fixtures/seeded")
}

#[test]
fn self_gate_passes_on_the_committed_tree() {
    let root = workspace_root();
    let out = audit(&["--root", root.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "the committed tree must be audit-clean:\n{stdout}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("dart-audit: R1="), "summary line missing:\n{stdout}");
    assert!(stdout.contains("stale-allowlist=0"), "{stdout}");
}

#[test]
fn seeded_violation_fails_the_gate() {
    let dir = seeded();
    let out = audit(&["--root", dir.to_str().unwrap(), "--allowlist", "none"]);
    assert_eq!(out.status.code(), Some(1), "seeded tree must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("src/lib.rs"), "{stdout}");
    assert!(stdout.contains("[R1]"), "{stdout}");
}

#[test]
fn stale_allowlist_entries_fail_the_gate() {
    let dir = seeded();
    let allow = dir.join("stale.toml");
    let out = audit(&["--root", dir.to_str().unwrap(), "--allowlist", allow.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stale"), "stale entry must be reported:\n{stdout}");
}

#[test]
fn malformed_allowlist_is_a_usage_error() {
    let dir = seeded();
    let allow = dir.join("bad.toml");
    let out = audit(&["--root", dir.to_str().unwrap(), "--allowlist", allow.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "malformed allowlist must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("justify"), "{stderr}");
}

#[test]
fn missing_allowlist_file_is_a_usage_error() {
    let dir = seeded();
    let out = audit(&[
        "--root",
        dir.to_str().unwrap(),
        "--allowlist",
        dir.join("no-such.toml").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}
