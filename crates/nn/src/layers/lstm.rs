//! LSTM layer used by the Voyager-like baseline prefetcher.
//!
//! Processes stacked sequences (`(batch*seq) x in_dim`) and emits the hidden
//! state at every step (`(batch*seq) x hidden`). Gate order in the fused
//! weight matrices is `[input, forget, cell(g), output]`. Backward is full
//! BPTT; samples are processed in parallel with rayon and their parameter
//! gradients reduced.

use rayon::prelude::*;

use crate::init::{xavier_uniform, InitRng};
use crate::layers::activation::sigmoid;
use crate::layers::{Layer, Param};
use crate::matrix::Matrix;

/// Long short-term memory layer.
#[derive(Clone, Debug)]
pub struct Lstm {
    /// Input weights, `4*hidden x in_dim`.
    pub w: Param,
    /// Recurrent weights, `4*hidden x hidden`.
    pub u: Param,
    /// Bias, `1 x 4*hidden` (forget-gate bias initialized to 1).
    pub b: Param,
    in_dim: usize,
    hidden: usize,
    seq_len: usize,
    cache: Option<LstmCache>,
}

#[derive(Clone, Debug)]
struct LstmCache {
    x: Matrix,
    /// Per sample: gate activations `seq x 4*hidden` (post-nonlinearity).
    gates: Vec<Matrix>,
    /// Per sample: cell states `seq x hidden`.
    cells: Vec<Matrix>,
    /// Per sample: hidden states `seq x hidden`.
    hiddens: Vec<Matrix>,
}

impl Lstm {
    /// New LSTM with `in_dim` inputs and `hidden` units over `seq_len` steps.
    pub fn new(in_dim: usize, hidden: usize, seq_len: usize, rng: &mut InitRng) -> Self {
        let mut b = Matrix::zeros(1, 4 * hidden);
        // Forget-gate bias = 1 encourages gradient flow early in training.
        for c in hidden..2 * hidden {
            b.set(0, c, 1.0);
        }
        Lstm {
            w: Param::new(xavier_uniform(4 * hidden, in_dim, rng)),
            u: Param::new(xavier_uniform(4 * hidden, hidden, rng)),
            b: Param::new(b),
            in_dim,
            hidden,
            seq_len,
            cache: None,
        }
    }

    /// Hidden state width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Sequence length this layer was built for.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Run one sample (`seq x in_dim`) returning (gates, cells, hiddens).
    fn run_sample(&self, xs: &Matrix) -> (Matrix, Matrix, Matrix) {
        let (t, h) = (self.seq_len, self.hidden);
        let mut gates = Matrix::zeros(t, 4 * h);
        let mut cells = Matrix::zeros(t, h);
        let mut hiddens = Matrix::zeros(t, h);
        let mut h_prev = vec![0.0f32; h];
        let mut c_prev = vec![0.0f32; h];
        for step in 0..t {
            // z = W x_t + U h_{t-1} + b
            let xrow = Matrix::from_vec(1, self.in_dim, xs.row(step).to_vec());
            let hrow = Matrix::from_vec(1, h, h_prev.clone());
            let mut z = xrow.matmul_transb(&self.w.value);
            z.add_assign(&hrow.matmul_transb(&self.u.value));
            z.add_assign(&self.b.value);
            let z = z.into_vec();

            let grow = gates.row_mut(step);
            for j in 0..h {
                let i_g = sigmoid(z[j]);
                let f_g = sigmoid(z[h + j]);
                let g_g = z[2 * h + j].tanh();
                let o_g = sigmoid(z[3 * h + j]);
                grow[j] = i_g;
                grow[h + j] = f_g;
                grow[2 * h + j] = g_g;
                grow[3 * h + j] = o_g;
                let c = f_g * c_prev[j] + i_g * g_g;
                cells.set(step, j, c);
                hiddens.set(step, j, o_g * c.tanh());
            }
            c_prev.copy_from_slice(cells.row(step));
            h_prev.copy_from_slice(hiddens.row(step));
        }
        (gates, cells, hiddens)
    }

    /// BPTT for one sample. Returns (dW, dU, db, dx).
    fn backward_sample(
        &self,
        xs: &Matrix,
        gates: &Matrix,
        cells: &Matrix,
        hiddens: &Matrix,
        dh_out: &Matrix,
    ) -> (Matrix, Matrix, Matrix, Matrix) {
        let (t, h, d) = (self.seq_len, self.hidden, self.in_dim);
        let mut dw = Matrix::zeros(4 * h, d);
        let mut du = Matrix::zeros(4 * h, h);
        let mut db = Matrix::zeros(1, 4 * h);
        let mut dx = Matrix::zeros(t, d);
        let mut dh_next = vec![0.0f32; h];
        let mut dc_next = vec![0.0f32; h];

        for step in (0..t).rev() {
            let g = gates.row(step);
            let mut dz = vec![0.0f32; 4 * h];
            for j in 0..h {
                let i_g = g[j];
                let f_g = g[h + j];
                let g_g = g[2 * h + j];
                let o_g = g[3 * h + j];
                let c = cells.get(step, j);
                let tanh_c = c.tanh();
                let c_prev = if step == 0 { 0.0 } else { cells.get(step - 1, j) };

                let dh = dh_out.get(step, j) + dh_next[j];
                let dc = dh * o_g * (1.0 - tanh_c * tanh_c) + dc_next[j];

                let d_o = dh * tanh_c;
                let d_i = dc * g_g;
                let d_g = dc * i_g;
                let d_f = dc * c_prev;
                dc_next[j] = dc * f_g;

                dz[j] = d_i * i_g * (1.0 - i_g);
                dz[h + j] = d_f * f_g * (1.0 - f_g);
                dz[2 * h + j] = d_g * (1.0 - g_g * g_g);
                dz[3 * h + j] = d_o * o_g * (1.0 - o_g);
            }

            let xrow = xs.row(step);
            let hprev: Vec<f32> =
                if step == 0 { vec![0.0; h] } else { hiddens.row(step - 1).to_vec() };

            // dW += dz ⊗ x_t ; dU += dz ⊗ h_{t-1} ; db += dz
            for (row, &dzv) in dz.iter().enumerate() {
                if dzv != 0.0 {
                    let wrow = dw.row_mut(row);
                    for (wv, &xv) in wrow.iter_mut().zip(xrow) {
                        *wv += dzv * xv;
                    }
                    let urow = du.row_mut(row);
                    for (uv, &hv) in urow.iter_mut().zip(&hprev) {
                        *uv += dzv * hv;
                    }
                }
                db.as_mut_slice()[row] += dzv;
            }

            // dx_t = W^T dz ; dh_prev = U^T dz
            let dxr = dx.row_mut(step);
            for (row, &dzv) in dz.iter().enumerate() {
                if dzv == 0.0 {
                    continue;
                }
                for (c, x) in dxr.iter_mut().enumerate() {
                    *x += dzv * self.w.value.get(row, c);
                }
            }
            dh_next.iter_mut().for_each(|v| *v = 0.0);
            for (row, &dzv) in dz.iter().enumerate() {
                if dzv == 0.0 {
                    continue;
                }
                for (j, dh) in dh_next.iter_mut().enumerate() {
                    *dh += dzv * self.u.value.get(row, j);
                }
            }
        }
        (dw, du, db, dx)
    }
}

impl Layer for Lstm {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        assert_eq!(x.cols(), self.in_dim, "LSTM input dim mismatch");
        assert_eq!(x.rows() % self.seq_len, 0, "stacked rows not divisible by seq_len");
        let batch = x.rows() / self.seq_len;
        let t = self.seq_len;

        let results: Vec<(Matrix, Matrix, Matrix)> = (0..batch)
            .into_par_iter()
            .map(|n| self.run_sample(&x.slice_rows(n * t, (n + 1) * t)))
            .collect();

        let mut out = Matrix::zeros(batch * t, self.hidden);
        let mut gates = Vec::with_capacity(batch);
        let mut cells = Vec::with_capacity(batch);
        let mut hiddens = Vec::with_capacity(batch);
        for (n, (g, c, hid)) in results.into_iter().enumerate() {
            out.set_rows(n * t, &hid);
            gates.push(g);
            cells.push(c);
            hiddens.push(hid);
        }
        if train {
            self.cache = Some(LstmCache { x: x.clone(), gates, cells, hiddens });
        }
        out
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        let cache = self.cache.take().expect("backward before forward(train=true)");
        let t = self.seq_len;
        let batch = grad.rows() / t;
        assert_eq!(grad.cols(), self.hidden);

        let parts: Vec<(Matrix, Matrix, Matrix, Matrix)> = (0..batch)
            .into_par_iter()
            .map(|n| {
                let xs = cache.x.slice_rows(n * t, (n + 1) * t);
                let dh = grad.slice_rows(n * t, (n + 1) * t);
                self.backward_sample(&xs, &cache.gates[n], &cache.cells[n], &cache.hiddens[n], &dh)
            })
            .collect();

        let mut dx = Matrix::zeros(batch * t, self.in_dim);
        for (n, (dw, du, db, dxs)) in parts.into_iter().enumerate() {
            self.w.grad.add_assign(&dw);
            self.u.grad.add_assign(&du);
            self.b.grad.add_assign(&db);
            dx.set_rows(n * t, &dxs);
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.u);
        f(&mut self.b);
    }

    fn name(&self) -> &'static str {
        "lstm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let mut rng = InitRng::new(21);
        let mut lstm = Lstm::new(5, 7, 4, &mut rng);
        let x = Matrix::from_fn(2 * 4, 5, |r, c| ((r * 5 + c) as f32 * 0.11).sin());
        let y = lstm.forward(&x, false);
        assert_eq!(y.shape(), (8, 7));
    }

    #[test]
    fn hidden_states_bounded() {
        // h = o * tanh(c) with o in (0,1) and tanh in (-1,1) => |h| < 1.
        let mut rng = InitRng::new(22);
        let mut lstm = Lstm::new(3, 6, 5, &mut rng);
        let x = Matrix::from_fn(5, 3, |r, c| (r as f32 - c as f32) * 3.0);
        let y = lstm.forward(&x, false);
        assert!(y.max_abs() < 1.0);
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = InitRng::new(23);
        let mut lstm = Lstm::new(3, 4, 3, &mut rng);
        let x = Matrix::from_fn(3, 3, |r, c| ((r * 3 + c) as f32 * 0.47).cos() * 0.5);

        let y = lstm.forward(&x, true);
        let ones = Matrix::full(y.rows(), y.cols(), 1.0);
        let analytic = lstm.backward(&ones);

        let eps = 1e-2;
        let mut xp = x.clone();
        for i in 0..x.len() {
            let orig = xp.as_slice()[i];
            xp.as_mut_slice()[i] = orig + eps;
            let fp: f32 = lstm.forward(&xp, false).as_slice().iter().sum();
            xp.as_mut_slice()[i] = orig - eps;
            let fm: f32 = lstm.forward(&xp, false).as_slice().iter().sum();
            xp.as_mut_slice()[i] = orig;
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            let denom = a.abs().max(numeric.abs()).max(1e-2);
            assert!(
                (a - numeric).abs() / denom < 5e-2,
                "input {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn batch_independence() {
        let mut rng = InitRng::new(24);
        let mut lstm = Lstm::new(4, 5, 3, &mut rng);
        let a = Matrix::from_fn(3, 4, |r, c| ((r * 4 + c) as f32 * 0.2).sin());
        let b = Matrix::from_fn(3, 4, |r, c| ((r * 4 + c) as f32 * 0.9).cos());
        let ya = lstm.forward(&a, false);
        let stacked = Matrix::vstack(&[a.clone(), b.clone()]);
        let y2 = lstm.forward(&stacked, false);
        for i in 0..ya.len() {
            assert!((ya.as_slice()[i] - y2.as_slice()[i]).abs() < 1e-5);
        }
    }
}
