//! Thread-count-invariance differential suite for the parallel kernels.
//!
//! PR 2 pinned the tiled batch kernels bit-for-bit against their scalar
//! references (`integration_kernels_diff.rs`); this suite pins them across
//! **thread counts**. Every kernel is run under explicit work-stealing
//! pools of 1, 2, 4, and 8 threads (via `rayon::ThreadPool::install`, so
//! one process covers all counts regardless of `DART_NUM_THREADS`) and the
//! outputs must be bit-for-bit identical to each other *and* to the scalar
//! row-at-a-time paths. That holds by construction — parallel pieces only
//! ever write disjoint output tiles and no terminal folds across items —
//! and this suite is what keeps it true as kernels evolve.
//!
//! Batch sizes straddle every tile boundary (empty, 1, tile ± 1,
//! non-multiples), same discipline as the scalar diff suite.
//!
//! Under `--features simd` the same assertions also pin the SIMD kernels:
//! the pooled batch queries dispatch to AVX2/NEON tiles while the
//! `*_scalar` twins and row-at-a-time references stay scalar, so
//! thread-count invariance and simd-vs-scalar equality are proven
//! together (CI runs this suite in both feature modes).

use dart::core::config::TabularConfig;
use dart::core::tabularize::tabularize;
use dart::core::TabularModel;
use dart::nn::init::InitRng;
use dart::nn::matrix::Matrix;
use dart::nn::model::{AccessPredictor, ModelConfig};
use dart::pq::{
    AttentionTable, AttentionTableConfig, EncoderKind, FusedFfnTable, LinearTable,
    ProductQuantizer, AGG_TILE_ROWS, ATTN_TILE_SAMPLES, ENCODE_TILE_ROWS,
};
use dart::trace::PreprocessConfig;
use proptest::prelude::*;
use rayon::ThreadPool;

/// Thread counts every kernel output must be invariant across.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn rand_matrix(r: usize, c: usize, seed: u64) -> Matrix {
    let mut rng = InitRng::new(seed);
    Matrix::from_fn(r, c, |_, _| rng.normal())
}

fn encoder_of(tree: bool) -> EncoderKind {
    if tree {
        EncoderKind::HashTree
    } else {
        EncoderKind::Argmin
    }
}

/// Run `f` under each thread count, assert all results equal the first,
/// and return that canonical (1-thread) result.
fn invariant_across_pools<T, F>(f: F, context: &str) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    let mut canonical: Option<T> = None;
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let got = pool.install(&f);
        match &canonical {
            None => canonical = Some(got),
            Some(reference) => {
                assert_eq!(&got, reference, "{context}: {threads} threads diverged from 1");
            }
        }
    }
    canonical.unwrap()
}

/// Bit-exact view of a Matrix (f32 `==` would treat -0.0 == 0.0 and hide
/// NaN; the invariance contract is on the bits).
fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|f| f.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `encode_batch_into` produces identical codes at every thread count,
    /// all equal to scalar per-row encoding.
    #[test]
    fn encode_batch_is_thread_count_invariant(
        seed in 0u64..5_000,
        k in 2usize..16,
        c in 1usize..4,
        rows_idx in 0usize..5,
        tree in proptest::bool::ANY,
    ) {
        let rows = [0, 1, ENCODE_TILE_ROWS - 1, ENCODE_TILE_ROWS + 1, 2 * ENCODE_TILE_ROWS + 7]
            [rows_idx];
        let dim = 6usize;
        let train = rand_matrix(60, dim, seed);
        let pq = ProductQuantizer::fit(&train, c, k, encoder_of(tree), seed);
        let x = rand_matrix(rows, dim, seed ^ 0xE0C0);

        let codes = invariant_across_pools(
            || {
                let mut codes = vec![0usize; rows * pq.num_subspaces()];
                pq.encode_batch_into(&x, &mut codes);
                codes
            },
            "encode_batch_into",
        );
        for r in 0..rows {
            let reference = pq.encode_row(x.row(r));
            prop_assert_eq!(
                &codes[r * pq.num_subspaces()..(r + 1) * pq.num_subspaces()],
                &reference[..],
                "row {} diverged from scalar", r
            );
        }
    }

    /// The shared `aggregate_codes_batch` kernel (via `LinearTable` and
    /// `FusedFfnTable` batch queries) is thread-count invariant and equal
    /// to the scalar row queries.
    #[test]
    fn aggregate_codes_batch_is_thread_count_invariant(
        seed in 0u64..5_000,
        k in 2usize..16,
        c in 1usize..4,
        rows_idx in 0usize..5,
        tree in proptest::bool::ANY,
    ) {
        let rows = [0, 1, AGG_TILE_ROWS - 1, AGG_TILE_ROWS + 3, 3 * AGG_TILE_ROWS + 5][rows_idx];
        let (din, dh, dout) = (6usize, 8usize, 5usize);
        let train = rand_matrix(70, din, seed);
        let w = rand_matrix(dout, din, seed ^ 0x11);
        let b: Vec<f32> = (0..dout).map(|o| o as f32 * 0.25 - 0.5).collect();
        let linear = LinearTable::fit(&train, &w, &b, c, k, encoder_of(tree), seed);
        let wh = rand_matrix(dh, din, seed ^ 0x33);
        let bh = vec![0.05f32; dh];
        let wo = rand_matrix(dout, dh, seed ^ 0x44);
        let bo = vec![-0.1f32; dout];
        let fused = FusedFfnTable::fit(&train, &wh, &bh, &wo, &bo, c, k, encoder_of(tree), seed);
        let x = rand_matrix(rows, din, seed ^ 0x22);

        let (lin_bits, fused_bits) = invariant_across_pools(
            || {
                let mut lin_out = Matrix::zeros(rows, dout);
                linear.query_batch_into(&x, &mut lin_out);
                (bits(&lin_out), bits(&fused.query(&x)))
            },
            "aggregate_codes_batch",
        );

        // The scalar-tile twin is thread-count invariant too, and equal to
        // the dispatched kernel (the simd-vs-scalar differential when the
        // `simd` feature is on).
        let scalar_bits = invariant_across_pools(
            || {
                let mut out = Matrix::zeros(rows, dout);
                linear.query_batch_scalar_into(&x, &mut out);
                bits(&out)
            },
            "aggregate_codes_batch (scalar tiles)",
        );
        prop_assert_eq!(&scalar_bits, &lin_bits, "simd vs scalar aggregation diverged");

        let lin_batch = linear.query(&x);
        prop_assert_eq!(bits(&lin_batch), lin_bits);
        let mut single = vec![0.0f32; dout];
        for r in 0..rows {
            linear.query_row_into(x.row(r), &mut single);
            prop_assert_eq!(&single[..], lin_batch.row(r), "linear row {} vs scalar", r);
        }
        let fused_batch = fused.query(&x);
        prop_assert_eq!(bits(&fused_batch), fused_bits);
        for r in 0..rows {
            fused.query_row_into(x.row(r), &mut single);
            prop_assert_eq!(&single[..], fused_batch.row(r), "fused row {} vs scalar", r);
        }
    }

    /// `AttentionTable::query_batch` is thread-count invariant and equal to
    /// per-sample queries.
    #[test]
    fn attention_query_batch_is_thread_count_invariant(
        seed in 0u64..5_000,
        k in 2usize..12,
        samples_idx in 0usize..4,
        tree in proptest::bool::ANY,
    ) {
        let samples =
            [1, ATTN_TILE_SAMPLES - 1, ATTN_TILE_SAMPLES + 1, 2 * ATTN_TILE_SAMPLES + 3]
            [samples_idx];
        let (t, dk) = (4usize, 6usize);
        let q = rand_matrix(20 * t, dk, seed ^ 0x66);
        let kk = rand_matrix(20 * t, dk, seed ^ 0x77);
        let v = rand_matrix(20 * t, dk, seed ^ 0x88);
        let cfg = AttentionTableConfig {
            k,
            ck: 2,
            ct: 2,
            encoder: encoder_of(tree),
            ..Default::default()
        };
        let table = AttentionTable::fit(&q, &kk, &v, t, &cfg);

        let qs = rand_matrix(samples * t, dk, seed ^ 0x99);
        let ks = rand_matrix(samples * t, dk, seed ^ 0xAA);
        let vs = rand_matrix(samples * t, dk, seed ^ 0xBB);

        let batch_bits = invariant_across_pools(
            || bits(&table.query_batch(&qs, &ks, &vs)),
            "attention query_batch",
        );
        let scalar_bits = invariant_across_pools(
            || bits(&table.query_batch_scalar(&qs, &ks, &vs)),
            "attention query_batch (scalar tiles)",
        );
        prop_assert_eq!(&scalar_bits, &batch_bits, "attention simd vs scalar diverged");

        let batch = table.query_batch(&qs, &ks, &vs);
        prop_assert_eq!(bits(&batch), batch_bits);
        for n in 0..samples {
            let single = table.query(
                &qs.slice_rows(n * t, (n + 1) * t),
                &ks.slice_rows(n * t, (n + 1) * t),
                &vs.slice_rows(n * t, (n + 1) * t),
            );
            for step in 0..t {
                prop_assert_eq!(
                    single.row(step), batch.row(n * t + step),
                    "sample {} step {} vs per-sample", n, step
                );
            }
        }
    }
}

/// End-to-end `predict_batch`: identical bits at 1/2/4/8 threads and equal
/// to per-sample `forward_probs`, at batch sizes wider than every tile.
#[test]
fn predict_batch_is_thread_count_invariant() {
    let pre = PreprocessConfig {
        seq_len: 4,
        addr_segments: 3,
        seg_bits: 4,
        pc_segments: 1,
        delta_range: 4,
        lookforward: 4,
    };
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 8,
        heads: 2,
        layers: 1,
        ffn_dim: 16,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let student = AccessPredictor::new(cfg, 0xD1FF).unwrap();
    let mut rng = InitRng::new(0xD1FF + 1);
    let x = Matrix::from_fn(40 * pre.seq_len, pre.input_dim(), |_, _| rng.next_f32());
    let tab_cfg = TabularConfig { k: 8, c: 2, fine_tune_epochs: 0, ..Default::default() };
    let (model, _): (TabularModel, _) = tabularize(&student, &x, &tab_cfg);

    for batch in [64usize, 33, 17, 1] {
        let stacked = Matrix::from_fn(batch * pre.seq_len, pre.input_dim(), |r, c| {
            ((r * 31 + c * 7) % 17) as f32 * 0.0625
        });
        let batched_bits = invariant_across_pools(
            || bits(&model.predict_batch(&stacked)),
            &format!("predict_batch({batch})"),
        );
        let batched = model.predict_batch(&stacked);
        assert_eq!(bits(&batched), batched_bits);
        for n in 0..batch {
            let single =
                model.forward_probs(&stacked.slice_rows(n * pre.seq_len, (n + 1) * pre.seq_len));
            assert_eq!(single.row(0), batched.row(n), "sample {n} of batch {batch}");
        }
    }
}

/// The rayon-parallel blocked matmul (the training-side hot path, above
/// `PAR_THRESHOLD`) is also thread-count invariant.
#[test]
fn blocked_matmul_is_thread_count_invariant() {
    // 96x64 @ 64x96: m*n = 9216, comfortably above PAR_THRESHOLD (4096).
    let a = rand_matrix(96, 64, 0xAB);
    let b = rand_matrix(64, 96, 0xCD);
    let product_bits = invariant_across_pools(|| bits(&a.matmul(&b)), "blocked matmul");
    let transb_bits =
        invariant_across_pools(|| bits(&a.matmul_transb(&b.transpose())), "matmul_transb");
    // The two kernels share accumulation order per output element, but
    // that is not part of this contract — only self-consistency is.
    assert_eq!(product_bits.len(), 96 * 96);
    assert_eq!(transb_bits.len(), 96 * 96);
}

/// The int8 table's dispatched batch query is thread-count invariant and
/// equal to its scalar twin and the scalar row path (the int8 simd
/// differential under `--features simd`).
#[test]
fn int8_query_is_thread_count_invariant_and_matches_scalar() {
    let (din, dout) = (8usize, 13usize); // 13 lanes: one AVX2 vector + tail
    let train = rand_matrix(300, din, 0xB1);
    let w = rand_matrix(dout, din, 0xB2);
    let b = vec![0.25f32; dout];
    let table = LinearTable::fit(&train, &w, &b, 2, 16, EncoderKind::Argmin, 0xB3);
    let q8 = dart::pq::QuantizedLinearTable::from_table(&table);
    let x = rand_matrix(67, din, 0xB4);

    let batch_bits = invariant_across_pools(|| bits(&q8.query(&x)), "int8 query");
    let scalar_bits = invariant_across_pools(|| bits(&q8.query_scalar(&x)), "int8 query scalar");
    assert_eq!(batch_bits, scalar_bits, "int8 simd vs scalar diverged");
    let batch = q8.query(&x);
    let mut single = vec![0.0f32; dout];
    for r in 0..x.rows() {
        q8.query_row_into(x.row(r), &mut single);
        assert_eq!(&single[..], batch.row(r), "int8 row {r} vs scalar");
    }
}

/// Tabularization itself (k-means fitting with parallel assignment steps)
/// is deterministic across thread counts: fitting the same quantizer under
/// different pools yields bit-identical prototypes and codes.
#[test]
fn quantizer_fit_is_thread_count_invariant() {
    let train = rand_matrix(200, 8, 0x5EED);
    let probe = rand_matrix(40, 8, 0xFACE);
    let codes = invariant_across_pools(
        || {
            let pq = ProductQuantizer::fit(&train, 2, 12, EncoderKind::Argmin, 42);
            let mut codes = vec![0usize; probe.rows() * pq.num_subspaces()];
            pq.encode_batch_into(&probe, &mut codes);
            codes
        },
        "ProductQuantizer::fit",
    );
    assert_eq!(codes.len(), probe.rows() * 2);
}
