//! Element-wise activation layers: ReLU and Sigmoid.

use crate::layers::{Layer, Param};
use crate::matrix::Matrix;

/// Rectified linear unit, `max(0, x)`.
#[derive(Clone, Debug, Default)]
pub struct Relu {
    cache_x: Option<Matrix>,
}

impl Relu {
    /// New ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        if train {
            self.cache_x = Some(x.clone());
        }
        x.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        let x = self.cache_x.as_ref().expect("backward before forward(train=true)");
        assert_eq!(grad.shape(), x.shape());
        let mut out = grad.clone();
        for (g, &xi) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
            if xi <= 0.0 {
                *g = 0.0;
            }
        }
        out
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "relu"
    }
}

/// Logistic sigmoid `1 / (1 + e^{-x})`.
#[derive(Clone, Debug, Default)]
pub struct Sigmoid {
    cache_y: Option<Matrix>,
}

impl Sigmoid {
    /// New sigmoid layer.
    pub fn new() -> Self {
        Sigmoid::default()
    }
}

/// Scalar logistic sigmoid, shared across the workspace.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let y = x.map(sigmoid);
        if train {
            self.cache_y = Some(y.clone());
        }
        y
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        let y = self.cache_y.as_ref().expect("backward before forward(train=true)");
        assert_eq!(grad.shape(), y.shape());
        let mut out = grad.clone();
        for (g, &yi) in out.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *g *= yi * (1.0 - yi);
        }
        out
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "sigmoid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::grad_check_input;

    #[test]
    fn relu_forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Matrix::from_vec(1, 4, vec![-2.0, -0.5, 0.0, 3.0]);
        assert_eq!(relu.forward(&x, false).as_slice(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn relu_gradient_check() {
        let mut relu = Relu::new();
        // Avoid points exactly at 0 where ReLU is non-differentiable.
        let x = Matrix::from_fn(3, 5, |r, c| (r as f32 - 1.3) * 0.7 + c as f32 * 0.31 - 0.9);
        let err = grad_check_input(&mut relu, &x, 1e-3);
        assert!(err < 1e-2, "relative grad error {err}");
    }

    #[test]
    fn sigmoid_forward_range_and_midpoint() {
        let mut s = Sigmoid::new();
        let x = Matrix::from_vec(1, 3, vec![-10.0, 0.0, 10.0]);
        let y = s.forward(&x, false);
        assert!(y.as_slice()[0] < 1e-4);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-4);
    }

    #[test]
    fn sigmoid_gradient_check() {
        let mut s = Sigmoid::new();
        let x = Matrix::from_fn(2, 6, |r, c| (r * 6 + c) as f32 * 0.37 - 1.5);
        let err = grad_check_input(&mut s, &x, 1e-3);
        assert!(err < 1e-2, "relative grad error {err}");
    }
}
