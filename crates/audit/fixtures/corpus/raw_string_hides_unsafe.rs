// Adversarial lexer fixture: raw strings, char literals and lifetimes that
// *look* like findings. The analyzer must report nothing here.
pub fn all_quiet() -> String {
    let s = r#"unsafe { asm!("nop") } and Ordering::Relaxed and .lock().unwrap()"#;
    let t = r##"fence trap: "# still inside the raw string "##;
    let open = '{';
    let close = '}';
    let semi = ';';
    let _lifetime_not_a_char: &'static str = "x";
    format!("{s}{t}{open}{close}{semi}")
}

pub struct Holder<'a> {
    // An `unsafe` in a normal string, escaped quotes and all.
    pub text: &'a str,
}

pub fn strings(h: &Holder<'_>) -> String {
    let quoted = "escaped \" then unsafe { } and syscall3 after";
    format!("{}{}", h.text, quoted)
}
