//! Design-space exploration with the table configurator: sweep latency and
//! storage constraints and print the chosen `(L, D, H, K, C)` points — how a
//! prefetcher architect would size DART for a cache controller budget.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use dart::core::config::DesignConstraints;
use dart::core::configurator::{model_cost, ShapeParams, TableConfigurator};

fn main() {
    let conf = TableConfigurator::default();
    println!(
        "{:>10} {:>10} | {:>16} {:>9} {:>12} {:>8}",
        "tau (cyc)", "s (bytes)", "config (L,D,H,K,C)", "latency", "storage", "ops"
    );
    println!("{}", "-".repeat(75));
    for tau in [40u64, 60, 100, 200, 400] {
        for s in [16_000u64, 100_000, 1_000_000, 4_000_000] {
            let constraints = DesignConstraints { latency_cycles: tau, storage_bytes: s };
            match conf.configure(&constraints) {
                Some((cfg, cost)) => println!(
                    "{:>10} {:>10} | ({},{},{},{},{})          {:>9} {:>12} {:>8}",
                    tau,
                    s,
                    cfg.layers,
                    cfg.dim,
                    cfg.heads,
                    cfg.k,
                    cfg.c,
                    cost.latency_cycles,
                    cost.storage_bytes,
                    cost.ops
                ),
                None => println!("{tau:>10} {s:>10} | infeasible"),
            }
        }
    }

    // Show the frontier trade-off of Fig. 10 in one line per K.
    println!("\nK sweep at the DART structural point (L=1, D=32, H=2, C=2):");
    for k in [16usize, 64, 256, 1024] {
        let cfg = dart::core::config::PredictorConfig {
            k,
            ..dart::core::config::PredictorConfig::dart()
        };
        let cost = model_cost(&cfg, &ShapeParams::default());
        println!(
            "  K={k:<5} latency={:<4} storage={:<9} ops={}",
            cost.latency_cycles, cost.storage_bytes, cost.ops
        );
    }
}
