//! A TCP load generator: many connections, each multiplexing many
//! streams, verifying **exactly one answer per request** end to end.
//!
//! Each connection runs on its own thread with a bounded in-flight
//! window: it sends request frames until `window` are unanswered, then
//! reads answers before sending more. Every sent request must come back
//! as exactly one response *or* one NACK; anything still unanswered at
//! the read timeout is counted as `lost` (and fails
//! [`TcpLoadReport::is_ok`]).

use std::io;
use std::time::{Duration, Instant};

use crate::client::{ClientEvent, NetClient};

/// Load shape. Total concurrent streams = `connections × streams_per_conn`;
/// total requests = streams × `accesses_per_stream`.
#[derive(Clone, Debug)]
pub struct TcpLoadConfig {
    /// Server address, e.g. the string form of
    /// [`crate::NetServer::local_addr`].
    pub addr: String,
    /// Client connections (one thread each).
    pub connections: usize,
    /// Streams multiplexed per connection (wire stream ids
    /// `0..streams_per_conn`).
    pub streams_per_conn: u32,
    /// Requests per stream.
    pub accesses_per_stream: u32,
    /// Per-connection unanswered-frame window (clamped ≥ 1). Keep at or
    /// below the server's `max_inflight_per_conn` to avoid admission
    /// NACKs; above it to provoke them.
    pub window: u64,
    /// Give up on missing answers after this long without progress.
    pub read_timeout_ms: u64,
    /// Varies the synthetic access pattern across runs.
    pub seed: u64,
}

impl Default for TcpLoadConfig {
    fn default() -> Self {
        TcpLoadConfig {
            addr: String::new(),
            connections: 8,
            streams_per_conn: 64,
            accesses_per_stream: 32,
            window: 256,
            read_timeout_ms: 10_000,
            seed: 1,
        }
    }
}

/// Aggregated verdict over every connection.
#[derive(Clone, Debug, Default)]
pub struct TcpLoadReport {
    /// Request frames sent.
    pub submitted: u64,
    /// Response frames received (served requests).
    pub responses: u64,
    /// NACK frames received (refused requests — accounted, not lost).
    pub nacks: u64,
    /// Responses that carried the failure flag.
    pub failed_responses: u64,
    /// Requests with **no** answer by the deadline, plus answers for
    /// streams this connection never used. Non-zero means the
    /// exactly-once contract broke.
    pub lost: u64,
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
}

impl TcpLoadReport {
    /// Every request accounted (answered or NACKed) and no failure
    /// responses.
    pub fn is_ok(&self) -> bool {
        self.lost == 0
            && self.failed_responses == 0
            && self.responses + self.nacks == self.submitted
    }

    fn absorb(&mut self, other: &TcpLoadReport) {
        self.submitted += other.submitted;
        self.responses += other.responses;
        self.nacks += other.nacks;
        self.failed_responses += other.failed_responses;
        self.lost += other.lost;
    }
}

/// Drive one connection's streams through their accesses.
fn run_connection(cfg: &TcpLoadConfig, conn_index: usize) -> io::Result<TcpLoadReport> {
    let mut client = NetClient::connect(&cfg.addr)?;
    client.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms.max(1))))?;
    let window = cfg.window.max(1);
    let mut report = TcpLoadReport::default();
    // Per-stream answers seen, to pin the exactly-once contract per
    // stream rather than only in aggregate.
    let mut answered = vec![0u64; cfg.streams_per_conn as usize];
    let mut inflight = 0u64;

    let recv_one = |client: &mut NetClient,
                    report: &mut TcpLoadReport,
                    answered: &mut [u64]|
     -> io::Result<bool> {
        match client.recv_event() {
            Ok(event) => {
                let stream = match &event {
                    ClientEvent::Response(r) => {
                        report.responses += 1;
                        if r.failed {
                            report.failed_responses += 1;
                        }
                        r.stream
                    }
                    ClientEvent::Nack(n) => {
                        report.nacks += 1;
                        n.stream
                    }
                };
                match answered.get_mut(stream as usize) {
                    Some(count) => *count += 1,
                    // An answer for a stream we never sent on.
                    None => report.lost += 1,
                }
                Ok(true)
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(false)
            }
            Err(e) => Err(e),
        }
    };

    // Interleave streams round-robin so the window keeps every stream's
    // shard busy, the way concurrent hardware contexts would.
    for access in 0..cfg.accesses_per_stream {
        for stream in 0..cfg.streams_per_conn {
            // A strided walk with a per-stream base: enough structure for
            // warm streams to predict on, cheap to generate.
            let base = (cfg.seed << 24) ^ ((conn_index as u64) << 40) ^ ((stream as u64 + 1) << 22);
            let addr = base + access as u64 * 64;
            let pc = 0x40_0000 + (stream as u64 % 16) * 4;
            client.send_request(stream, pc, addr);
            report.submitted += 1;
            inflight += 1;
            while inflight >= window {
                if recv_one(&mut client, &mut report, &mut answered)? {
                    inflight -= 1;
                } else {
                    // Window never drained within the timeout.
                    report.lost += inflight;
                    return Ok(report);
                }
            }
        }
    }
    client.flush()?;
    while inflight > 0 {
        if recv_one(&mut client, &mut report, &mut answered)? {
            inflight -= 1;
        } else {
            report.lost += inflight;
            return Ok(report);
        }
    }
    for (stream, &count) in answered.iter().enumerate() {
        if count != cfg.accesses_per_stream as u64 {
            // Duplicates or drops within one stream: aggregate totals can
            // mask a duplicate-on-one / lost-on-another pair; this can't.
            report.lost += count.abs_diff(cfg.accesses_per_stream as u64);
            let _ = stream;
        }
    }
    Ok(report)
}

/// Run the full load: one thread per connection, aggregate verdict.
pub fn run_tcp_load(cfg: &TcpLoadConfig) -> io::Result<TcpLoadReport> {
    let start = Instant::now();
    let mut handles = Vec::new();
    for conn_index in 0..cfg.connections.max(1) {
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || run_connection(&cfg, conn_index)));
    }
    let mut report = TcpLoadReport::default();
    let mut first_err: Option<io::Error> = None;
    for handle in handles {
        match handle.join().expect("load connection thread panicked") {
            Ok(conn_report) => report.absorb(&conn_report),
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    report.elapsed_s = start.elapsed().as_secs_f64();
    Ok(report)
}
