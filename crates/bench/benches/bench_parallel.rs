//! Thread-scaling micro-benchmarks for the tile-parallel batch kernels.
//!
//! Runs the DART-sized linear-table batch query and batch encode under
//! explicit work-stealing pools of 1/2/4/8 threads
//! (`rayon::ThreadPool::install`) against the scalar row-at-a-time
//! sequential baseline. Every pooled variant is asserted bit-identical to
//! the sequential result before being timed — the pool may only change
//! *when* tiles run, never what they compute.
//!
//! Expected shape: parity at 1 thread (one-thread pools run inline, so the
//! only delta is the `install` bookkeeping), speedup at >1 threads on
//! multicore hosts. On a single-CPU container the >1-thread rows
//! time-slice one core and report parity; the bench still runs and prints
//! every row so CI exercises the full path.
//!
//! Every pooled row has a `_scalar` twin pinned to the scalar kernel
//! tiles; the default rows run the dispatched kernels (AVX2/NEON under
//! `--features simd`). Bit-equality of the pair is asserted at setup, so
//! the row delta isolates vectorization at each thread count.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dart_nn::init::InitRng;
use dart_nn::matrix::Matrix;
use dart_pq::{EncoderKind, LinearTable, ProductQuantizer};
use rayon::ThreadPool;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn rand_matrix(r: usize, c: usize, seed: u64) -> Matrix {
    let mut rng = InitRng::new(seed);
    Matrix::from_fn(r, c, |_, _| rng.normal())
}

/// Pooled `LinearTable::query` at each thread count vs the scalar
/// row-at-a-time loop, batch 512 (64 samples x 8 tokens through one
/// kernel — the serving shape that actually has enough tiles to spread).
fn bench_parallel_linear(c: &mut Criterion) {
    // Fail fast on a malformed DART_NUM_THREADS, but not announce_threads():
    // that would instantiate the global pool, and this bench measures
    // explicit 1/2/4/8-thread pools only.
    dart_bench::env::validate_threads_env();
    println!("explicit pools of {THREAD_COUNTS:?} threads vs sequential scalar baseline");
    println!("simd dispatch: {}", dart_pq::simd::active_level());
    let (di, dout) = (32usize, 128usize);
    let train = rand_matrix(2000, di, 1);
    let w = rand_matrix(dout, di, 2);
    let b = vec![0.1f32; dout];
    let table = LinearTable::fit(&train, &w, &b, 2, 128, EncoderKind::Argmin, 7);
    let x = rand_matrix(512, di, 5);

    // Sequential scalar reference, also the bit-exactness anchor.
    let mut sequential = Matrix::zeros(x.rows(), dout);
    for r in 0..x.rows() {
        table.query_row_into(x.row(r), sequential.row_mut(r));
    }
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let pooled = pool.install(|| table.query(&x));
        assert_eq!(
            pooled.as_slice(),
            sequential.as_slice(),
            "{threads}-thread query diverged from scalar"
        );
        let mut scalar_tiles = Matrix::zeros(x.rows(), dout);
        pool.install(|| table.query_batch_scalar_into(&x, &mut scalar_tiles));
        assert_eq!(
            scalar_tiles.as_slice(),
            sequential.as_slice(),
            "{threads}-thread scalar tiles diverged"
        );
    }

    let mut group = c.benchmark_group("parallel_linear_query_b512");
    group.sample_size(40);
    group.bench_function("sequential_scalar", |bench| {
        let mut out = Matrix::zeros(x.rows(), dout);
        bench.iter(|| {
            for r in 0..x.rows() {
                table.query_row_into(black_box(x.row(r)), out.row_mut(r));
            }
            black_box(out.as_slice().last().copied())
        })
    });
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        group.bench_function(format!("pool_{threads}_threads"), |bench| {
            bench.iter(|| pool.install(|| black_box(table.query(black_box(&x)))))
        });
        let pool = ThreadPool::new(threads);
        group.bench_function(format!("pool_{threads}_threads_scalar"), |bench| {
            let mut out = Matrix::zeros(x.rows(), dout);
            bench.iter(|| {
                pool.install(|| table.query_batch_scalar_into(black_box(&x), &mut out));
                black_box(out.as_slice().last().copied())
            })
        });
    }
    group.finish();
}

/// Pooled tiled batch encode at each thread count vs the serial
/// subspace-major encode loop.
fn bench_parallel_encode(c: &mut Criterion) {
    let dim = 32usize;
    let train = rand_matrix(2000, dim, 11);
    let pq = ProductQuantizer::fit(&train, 2, 128, EncoderKind::Argmin, 13);
    let cs = pq.num_subspaces();
    let x = rand_matrix(512, dim, 17);

    let mut sequential = vec![0usize; x.rows() * cs];
    for (ci, &(lo, hi)) in pq.bounds().iter().enumerate() {
        for r in 0..x.rows() {
            sequential[r * cs + ci] = pq.encode_sub(ci, &x.row(r)[lo..hi]);
        }
    }
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        let mut codes = vec![0usize; x.rows() * cs];
        pool.install(|| pq.encode_batch_into(&x, &mut codes));
        assert_eq!(codes, sequential, "{threads}-thread encode diverged from serial");
        let mut scalar_codes = vec![0usize; x.rows() * cs];
        pool.install(|| pq.encode_batch_scalar_into(&x, &mut scalar_codes));
        assert_eq!(scalar_codes, sequential, "{threads}-thread scalar encode diverged");
    }

    let mut group = c.benchmark_group("parallel_encode_b512");
    group.sample_size(40);
    group.bench_function("sequential_serial", |bench| {
        let mut codes = vec![0usize; x.rows() * cs];
        bench.iter(|| {
            for (ci, &(lo, hi)) in pq.bounds().iter().enumerate() {
                for r in 0..x.rows() {
                    codes[r * cs + ci] = pq.encode_sub(ci, &x.row(r)[lo..hi]);
                }
            }
            black_box(codes.last().copied())
        })
    });
    for threads in THREAD_COUNTS {
        let pool = ThreadPool::new(threads);
        group.bench_function(format!("pool_{threads}_threads"), |bench| {
            let mut codes = vec![0usize; x.rows() * cs];
            bench.iter(|| {
                pool.install(|| pq.encode_batch_into(black_box(&x), &mut codes));
                black_box(codes.last().copied())
            })
        });
        let pool = ThreadPool::new(threads);
        group.bench_function(format!("pool_{threads}_threads_scalar"), |bench| {
            let mut codes = vec![0usize; x.rows() * cs];
            bench.iter(|| {
                pool.install(|| pq.encode_batch_scalar_into(black_box(&x), &mut codes));
                black_box(codes.last().copied())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_linear, bench_parallel_encode);
criterion_main!(benches);
