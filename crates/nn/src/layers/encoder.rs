//! Transformer encoder block: pre-LN residual MSA followed by pre-LN
//! residual FFN, matching the per-layer cost accounting of paper Eq. 22–23
//! (two LayerNorms, the QKV+output linears, the attention core, and the
//! two FFN linears).

use crate::init::InitRng;
use crate::layers::{Ffn, Layer, LayerNorm, Msa, Param};
use crate::matrix::Matrix;

/// One transformer encoder layer (pre-LN variant).
///
/// `y = x' + FFN(LN2(x'))` where `x' = x + MSA(LN1(x))`.
#[derive(Clone, Debug)]
pub struct EncoderBlock {
    /// LayerNorm before attention.
    pub ln1: LayerNorm,
    /// Multi-head self-attention.
    pub msa: Msa,
    /// LayerNorm before the feed-forward network.
    pub ln2: LayerNorm,
    /// Feed-forward network.
    pub ffn: Ffn,
}

impl EncoderBlock {
    /// New encoder block.
    pub fn new(
        dim: usize,
        heads: usize,
        ffn_dim: usize,
        seq_len: usize,
        rng: &mut InitRng,
    ) -> Self {
        EncoderBlock {
            ln1: LayerNorm::new(dim),
            msa: Msa::new(dim, heads, seq_len, rng),
            ln2: LayerNorm::new(dim),
            ffn: Ffn::new(dim, ffn_dim, rng),
        }
    }

    /// Model dimension.
    pub fn dim(&self) -> usize {
        self.ln1.dim()
    }
}

impl Layer for EncoderBlock {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let a = self.ln1.forward(x, train);
        let a = self.msa.forward(&a, train);
        let x1 = x.add(&a); // residual 1
        let f = self.ln2.forward(&x1, train);
        let f = self.ffn.forward(&f, train);
        x1.add(&f) // residual 2
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        // y = x1 + ffn(ln2(x1))
        let d_ffn = self.ffn.backward(grad);
        let d_ln2 = self.ln2.backward(&d_ffn);
        let d_x1 = grad.add(&d_ln2);
        // x1 = x + msa(ln1(x))
        let d_msa = self.msa.backward(&d_x1);
        let d_ln1 = self.ln1.backward(&d_msa);
        d_x1.add(&d_ln1)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params(f);
        self.msa.visit_params(f);
        self.ln2.visit_params(f);
        self.ffn.visit_params(f);
    }

    fn name(&self) -> &'static str {
        "encoder_block"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::grad_check_input;

    #[test]
    fn shapes_preserved() {
        let mut rng = InitRng::new(6);
        let mut blk = EncoderBlock::new(8, 2, 16, 4, &mut rng);
        let x = Matrix::from_fn(2 * 4, 8, |r, c| ((r * 8 + c) as f32 * 0.07).sin());
        assert_eq!(blk.forward(&x, false).shape(), (8, 8));
    }

    #[test]
    fn gradient_check() {
        let mut rng = InitRng::new(10);
        let mut blk = EncoderBlock::new(4, 2, 6, 3, &mut rng);
        let x = Matrix::from_fn(3, 4, |r, c| ((r * 4 + c) as f32 * 0.31).cos() * 0.7);
        let err = grad_check_input(&mut blk, &x, 1e-2);
        assert!(err < 5e-2, "relative grad error {err}");
    }

    #[test]
    fn residual_dominates_at_init_scale() {
        // With small random weights the block output should stay correlated
        // with its input (residual path), a cheap sanity check for wiring.
        let mut rng = InitRng::new(13);
        let mut blk = EncoderBlock::new(8, 2, 16, 4, &mut rng);
        let x = Matrix::from_fn(4, 8, |r, c| ((r * 8 + c) as f32).sin());
        let y = blk.forward(&x, false);
        let sim = crate::matrix::cosine_similarity(x.as_slice(), y.as_slice());
        assert!(sim > 0.3, "residual correlation too weak: {sim}");
    }
}
