//! Serving quickstart: put a tabularized DART model behind the sharded,
//! batched `dart-serve` runtime and serve many concurrent access streams.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```

use std::sync::Arc;

use dart::core::config::TabularConfig;
use dart::core::tabularize::tabularize;
use dart::nn::model::{AccessPredictor, ModelConfig};
use dart::serve::{generate_requests, LoadGenConfig, ServeConfig, ServeRuntime};
use dart::trace::{build_dataset, workload_by_name, PreprocessConfig};

fn main() {
    // 1. A DART table model. Quickstart shortcut: tabularize an untrained
    //    student on real trace features (see examples/end_to_end_dart.rs
    //    for the full train -> distill -> tabularize pipeline; serving
    //    mechanics are identical).
    let pre = PreprocessConfig {
        seq_len: 8,
        addr_segments: 4,
        seg_bits: 6,
        pc_segments: 2,
        delta_range: 16,
        lookforward: 8,
    };
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 16,
        heads: 2,
        layers: 1,
        ffn_dim: 32,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let student = AccessPredictor::new(cfg, 42).expect("valid config");
    let trace = workload_by_name("leslie3d").expect("workload").generate(3_000, 11);
    let data = build_dataset(&trace, &pre, 2);
    let tab_cfg = TabularConfig { k: 16, c: 2, fine_tune_epochs: 0, ..Default::default() };
    let (model, _) = tabularize(&student, &data.inputs, &tab_cfg);
    println!("tabular model ready: {} KiB of tables", model.storage_bytes() / 1024);

    // 2. Start the runtime: 4 shard workers share the model; streams are
    //    hash-routed so each shard owns its streams' history.
    let runtime = ServeRuntime::start(
        Arc::new(model),
        pre,
        ServeConfig { shards: 4, max_batch: 64, threshold: 0.4, ..ServeConfig::default() },
    );
    println!(
        "runtime up: {} shards sharing a {}-thread kernel pool",
        runtime.num_shards(),
        runtime.pool_threads()
    );

    // 3. Synthetic traffic: 64 interleaved client streams, each replaying a
    //    SPEC-like synthetic pattern.
    let reqs =
        generate_requests(&LoadGenConfig { streams: 64, accesses_per_stream: 200, seed: 0xFEED });
    println!("submitting {} requests across 64 streams...", reqs.len());
    // Submit in per-round waves with back-pressure so reported latency
    // reflects queue + inference time rather than an unbounded backlog.
    for round in reqs.chunks(64) {
        runtime.submit_all(round.iter().copied());
        if runtime.outstanding() > 512 {
            runtime.wait_below(256);
        }
    }
    runtime.wait_idle();

    // 4. Collect responses and statistics.
    let responses = runtime.drain_completed();
    let with_prefetch = responses.iter().filter(|r| !r.prefetch_blocks.is_empty()).count();
    println!("{} responses ({} with prefetch emissions)", responses.len(), with_prefetch);
    if let Some(sample) = responses.iter().find(|r| !r.prefetch_blocks.is_empty()) {
        println!(
            "e.g. stream {} seq {} on shard {} -> prefetch blocks {:?}",
            sample.stream_id, sample.seq, sample.shard, sample.prefetch_blocks
        );
    }

    let stats = runtime.shutdown();
    println!(
        "predictions: {}, batched calls: {} (mean batch {:.1}, max {})",
        stats.predictions,
        stats.batches,
        stats.mean_batch(),
        stats.max_batch
    );
    println!(
        "latency: p50 {:.1} us, p99 {:.1} us",
        stats.p50_latency_ns as f64 / 1_000.0,
        stats.p99_latency_ns as f64 / 1_000.0
    );
    println!("per-shard requests: {:?}", stats.per_shard_requests);
}
