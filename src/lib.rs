//! # dart — facade crate for the DART reproduction
//!
//! Re-exports every workspace crate under one roof:
//!
//! * [`nn`] — neural-network substrate (attention predictor, LSTM, training),
//! * [`pq`] — product-quantization tabularization kernels,
//! * [`trace`] — memory traces, synthetic workloads, preprocessing,
//! * [`sim`] — trace-driven cache/CPU simulator,
//! * [`prefetch`] — prefetcher zoo (BO, ISB, DART, NN baselines),
//! * [`core`] — the DART pipeline: configurator, distillation, tabularization,
//! * [`numa`] — NUMA topology discovery + raw-syscall thread affinity,
//! * [`serve`] — the sharded, batched prefetch-serving runtime,
//! * [`net`] — the TCP front-end: binary wire protocol, epoll IO loop,
//!   backpressure NACKs, `GET /metrics`.
//!
//! See `examples/quickstart.rs` for a five-minute tour and
//! `examples/serve_quickstart.rs` for the serving runtime.

pub use dart_core as core;
pub use dart_net as net;
pub use dart_nn as nn;
pub use dart_numa as numa;
pub use dart_pq as pq;
pub use dart_prefetch as prefetch;
pub use dart_serve as serve;
pub use dart_sim as sim;
pub use dart_trace as trace;
