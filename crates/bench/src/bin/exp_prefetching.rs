//! Combined Fig. 12 + 13 + 14 run: evaluates the prefetcher matrix once and
//! prints all three figures (the individual `exp_fig1x` binaries recompute
//! unless `DART_REUSE=1`).

use dart_bench::prefetch_eval::{load_or_run, print_metric_table};
use dart_bench::{record_json, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::from_env();
    let matrix = load_or_run(&ctx);
    print_metric_table(
        "Fig. 12: prefetch accuracy",
        &matrix,
        &[("BO", 0.894), ("DART", 0.807), ("TransFetch-I", 0.896), ("Voyager", 0.499)],
        |c| c.accuracy,
        false,
    );
    print_metric_table(
        "Fig. 13: prefetch coverage",
        &matrix,
        &[("DART", 0.510), ("TransFetch", 0.144), ("Voyager", 0.021)],
        |c| c.coverage,
        false,
    );
    print_metric_table(
        "Fig. 14: IPC improvement",
        &matrix,
        &[("BO", 31.5), ("DART", 37.6), ("TransFetch", 4.5), ("Voyager", 0.38)],
        |c| c.ipc_improvement_pct,
        true,
    );
    record_json("prefetching", &serde_json::to_value(&matrix).unwrap());
}
