//! The project-invariant rules the gate enforces.
//!
//! Everything here works on the lexed [`FileView`]: code text with
//! comments/literals removed, plus the comment stream. The rules are the
//! ones rustc/clippy cannot express because they encode *project policy*:
//!
//! * **R1** `unsafe-needs-safety-comment` — every `unsafe` keyword
//!   (block, fn, impl, trait) must be covered by a `SAFETY:` comment (or a
//!   `# Safety` doc heading) between the end of the previous statement and
//!   the `unsafe` itself.
//! * **R2** `asm-confined` — `asm!` and raw-syscall shims (`syscall*`
//!   identifiers) are only allowed in modules the allowlist names.
//! * **R3** `atomic-ordering-allowlist` — every `Ordering::Relaxed` /
//!   `Ordering::SeqCst` in non-test code must be allowlisted with a
//!   justification. (`Acquire`/`Release`/`AcqRel` are exempt: they state
//!   an explicit happens-before edge, which *is* the justification. The
//!   two flagged orderings are the footguns: Relaxed because it promises
//!   nothing, SeqCst because it is the silent "didn't think about it"
//!   default.)
//! * **R4** `lock-unwrap` — non-test code in the serving crates must not
//!   call `.unwrap()`/`.expect(..)` directly on `Mutex::lock` /
//!   `RwLock::read`/`write` results; the poison-recovering helpers (or an
//!   allowlisted fail-fast) are the policy.
//! * **R5** `allow-needs-justification` — every `#[allow(..)]` /
//!   `#![allow(..)]` must carry a justification comment on the same line
//!   or a non-doc comment immediately above it.

use crate::lexer::FileView;

/// The rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    R1,
    R2,
    R3,
    R4,
    R5,
}

impl Rule {
    pub const ALL: [Rule; 5] = [Rule::R1, Rule::R2, Rule::R3, Rule::R4, Rule::R5];

    pub fn id(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Rule::R1 => "unsafe-needs-safety-comment",
            Rule::R2 => "asm-confined",
            Rule::R3 => "atomic-ordering-allowlist",
            Rule::R4 => "lock-unwrap",
            Rule::R5 => "allow-needs-justification",
        }
    }

    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == s || r.name() == s)
    }
}

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

/// Directories whose files are hot-path serving code for R4.
const R4_SCOPE: [&str; 2] = ["crates/serve/src/", "crates/net/src/"];

/// A word token in the joined code stream.
struct Token {
    text: String,
    /// Char offset into the joined stream.
    start: usize,
    /// 0-based line.
    line: usize,
}

fn tokenize(joined: &str, line_of: &[usize]) -> Vec<Token> {
    let chars: Vec<char> = joined.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            let mut text = String::new();
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                text.push(chars[i]);
                i += 1;
            }
            out.push(Token { text, start, line: line_of[start] });
        } else {
            i += 1;
        }
    }
    out
}

/// Char offsets (into the joined stream) of `#[cfg(test)]`-module lines,
/// expanded to a per-line test flag. Files under a `tests/` directory are
/// entirely test code and handled by the caller.
fn test_lines(view: &FileView, joined: &str, line_of: &[usize]) -> Vec<bool> {
    let mut is_test = vec![false; view.len()];
    let chars: Vec<char> = joined.chars().collect();
    let mut from = 0;
    while let Some(pos) = joined[from..].find("#[cfg(test)]") {
        // `find` returns byte offsets; the char-indexed walk below needs a
        // char offset.
        let abs_byte = from + pos;
        let start = joined[..abs_byte].chars().count();
        from = abs_byte + "#[cfg(test)]".len();
        // Expect `mod <ident> {` next (attributes in between are fine);
        // anything else (cfg(test) on a use/fn) is not a module region.
        let mut i = start + "#[cfg(test)]".chars().count();
        // Skip whitespace and further attributes.
        loop {
            while i < chars.len() && chars[i].is_whitespace() {
                i += 1;
            }
            if chars.get(i) == Some(&'#') {
                while i < chars.len() && chars[i] != '\n' && chars[i] != ']' {
                    i += 1;
                }
                i += 1;
                continue;
            }
            break;
        }
        let word: String = chars[i..].iter().take(3).collect();
        if word != "mod" {
            continue;
        }
        // Find the opening brace, then match braces.
        while i < chars.len() && chars[i] != '{' {
            if chars[i] == ';' {
                break; // `mod tests;` — out-of-line, nothing to mark here
            }
            i += 1;
        }
        if chars.get(i) != Some(&'{') {
            continue;
        }
        let open = i;
        let mut depth = 0i64;
        while i < chars.len() {
            match chars[i] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        let end = i.min(chars.len() - 1);
        for flag in is_test.iter_mut().take(line_of[end] + 1).skip(line_of[open]) {
            *flag = true;
        }
    }
    is_test
}

/// The comment marker R1 accepts: `SAFETY:` anywhere in a comment, or a
/// `# Safety` doc heading.
fn has_safety_marker(view: &FileView, line_range: std::ops::RangeInclusive<usize>) -> bool {
    for li in line_range {
        for c in &view.comments[li] {
            if c.text.contains("SAFETY:") || c.text.trim_start().starts_with("# Safety") {
                return true;
            }
        }
    }
    false
}

/// Analyze one file. `rel_path` uses forward slashes and is relative to the
/// workspace root; it drives the per-rule scoping (test dirs, R4 dirs).
pub fn analyze(rel_path: &str, view: &FileView) -> Vec<Finding> {
    let mut findings = Vec::new();
    if view.is_empty() {
        return findings;
    }
    let (joined, line_of) = view.joined_code();
    let chars: Vec<char> = joined.chars().collect();
    let tokens = tokenize(&joined, &line_of);
    let in_tests_dir = rel_path.starts_with("tests/") || rel_path.contains("/tests/");
    let cfg_test = test_lines(view, &joined, &line_of);
    let is_test_line = |li: usize| in_tests_dir || cfg_test[li];

    let finding = |rule: Rule, line: usize, message: String| Finding {
        rule,
        file: rel_path.to_string(),
        line: line + 1,
        message,
    };

    // R1: every `unsafe` keyword needs a SAFETY comment between the end of
    // the previous statement and the keyword itself.
    let mut r1_lines_flagged = Vec::new();
    for tok in tokens.iter().filter(|t| t.text == "unsafe") {
        if r1_lines_flagged.contains(&tok.line) {
            continue;
        }
        // Walk back to the previous statement/item boundary.
        let mut j = tok.start;
        let mut boundary_line = None;
        while j > 0 {
            j -= 1;
            if matches!(chars[j], ';' | '{' | '}') {
                boundary_line = Some(line_of[j]);
                break;
            }
        }
        let from = match boundary_line {
            Some(b) if b == tok.line => tok.line,
            Some(b) => b + 1,
            None => 0,
        };
        if !has_safety_marker(view, from..=tok.line) {
            r1_lines_flagged.push(tok.line);
            findings.push(finding(
                Rule::R1,
                tok.line,
                "`unsafe` without a covering `// SAFETY:` comment (or `# Safety` doc heading) \
                 since the previous statement"
                    .to_string(),
            ));
        }
    }

    // R2: `asm!` invocations and raw-syscall shims must be allowlisted
    // (the allowlist carries the two sanctioned sys modules).
    let char_at = |idx: usize| chars.get(idx).copied();
    for tok in &tokens {
        let is_asm = tok.text == "asm" && {
            let mut k = tok.start + tok.text.chars().count();
            while char_at(k).is_some_and(|c| c.is_whitespace()) {
                k += 1;
            }
            char_at(k) == Some('!')
        };
        let is_syscall = tok.text.starts_with("syscall")
            && tok.text["syscall".len()..].chars().all(|c| c.is_ascii_digit());
        if is_asm {
            findings.push(finding(
                Rule::R2,
                tok.line,
                "`asm!` outside the allowlisted raw-syscall modules".to_string(),
            ));
        } else if is_syscall {
            findings.push(finding(
                Rule::R2,
                tok.line,
                format!("raw-syscall shim `{}` outside the allowlisted modules", tok.text),
            ));
        }
    }

    // R3: Relaxed/SeqCst atomics in non-test code must be allowlisted.
    for (li, code) in view.code.iter().enumerate() {
        if is_test_line(li) {
            continue;
        }
        for ord in ["Ordering::Relaxed", "Ordering::SeqCst"] {
            let mut from = 0;
            while let Some(pos) = code[from..].find(ord) {
                let abs = from + pos;
                from = abs + ord.len();
                // Word boundary on the left: `MyOrdering::Relaxed` is not a
                // std ordering.
                let prev = code[..abs].chars().next_back();
                if prev.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                    continue;
                }
                findings.push(finding(
                    Rule::R3,
                    li,
                    format!("`{ord}` not covered by an allowlist justification"),
                ));
            }
        }
    }

    // R4: `.lock()/.read()/.write()` immediately unwrapped/expected in the
    // serving crates' non-test code.
    if R4_SCOPE.iter().any(|p| rel_path.starts_with(p)) {
        let mut i = 0;
        while i < chars.len() {
            if chars[i] != '.' {
                i += 1;
                continue;
            }
            // `.lock()` / `.read()` / `.write()` with EMPTY parens — the
            // empty argument list is what distinguishes the sync-primitive
            // acquire from io::Read/Write calls.
            let mut k = i + 1;
            let mut name = String::new();
            while char_at(k).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                name.push(chars[k]);
                k += 1;
            }
            if !matches!(name.as_str(), "lock" | "read" | "write") {
                i += 1;
                continue;
            }
            let mut k2 = k;
            while char_at(k2).is_some_and(|c| c.is_whitespace()) {
                k2 += 1;
            }
            if char_at(k2) != Some('(') {
                i += 1;
                continue;
            }
            k2 += 1;
            while char_at(k2).is_some_and(|c| c.is_whitespace()) {
                k2 += 1;
            }
            if char_at(k2) != Some(')') {
                i += 1;
                continue;
            }
            k2 += 1;
            // Skip whitespace (including newlines — rustfmt splits chains).
            while char_at(k2).is_some_and(|c| c.is_whitespace()) {
                k2 += 1;
            }
            if char_at(k2) != Some('.') {
                i = k2;
                continue;
            }
            k2 += 1;
            while char_at(k2).is_some_and(|c| c.is_whitespace()) {
                k2 += 1;
            }
            let mut next = String::new();
            while char_at(k2).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                next.push(chars[k2]);
                k2 += 1;
            }
            if matches!(next.as_str(), "unwrap" | "expect") && !is_test_line(line_of[i]) {
                findings.push(finding(
                    Rule::R4,
                    line_of[i],
                    format!(
                        "bare `.{name}().{next}(..)` on a lock result — use the \
                         poison-recovering helpers or allowlist an intended fail-fast"
                    ),
                ));
            }
            i = k2;
        }
    }

    // R5: `#[allow(..)]` / `#![allow(..)]` needs a justification comment on
    // the same line or a non-doc comment immediately above.
    for (li, code) in view.code.iter().enumerate() {
        if !(code.contains("#[allow(") || code.contains("#![allow(")) {
            continue;
        }
        if !view.comments[li].is_empty() {
            continue; // trailing (or leading) comment on the same line
        }
        // Contiguous comment-only block immediately above, at least one
        // non-doc comment in it (doc comments document the item, not the
        // lint suppression).
        let mut j = li;
        let mut justified = false;
        while j > 0 && view.is_comment_only(j - 1) {
            j -= 1;
            if view.comments[j].iter().any(|c| !c.doc) {
                justified = true;
                break;
            }
        }
        if !justified {
            findings.push(finding(
                Rule::R5,
                li,
                "`#[allow(..)]` without a justification comment (same line or directly above)"
                    .to_string(),
            ));
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}
