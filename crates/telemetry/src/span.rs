//! Bounded ring buffer of recent request-lifecycle spans.
//!
//! Histograms answer "what is p99 queue-wait"; the span ring answers
//! "what did the last slow request actually do" — one record per served
//! request with its per-stage breakdown, overwriting the oldest beyond a
//! fixed capacity so a long-running server never grows it.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// One request's lifecycle timing, all durations in nanoseconds. Stage
/// durations that are shared by the whole coalesced batch (coalesce /
/// kernel / sink — one kernel call serves the batch) carry the batch's
/// value; queue-wait is the request's own.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanRecord {
    pub stream_id: u64,
    /// Per-stream sequence number of the request.
    pub seq: u64,
    /// Shard that served it.
    pub shard: usize,
    /// Size of the coalesced batch it was served in.
    pub batch_size: usize,
    /// Enqueue → drained by the worker.
    pub queue_wait_ns: u64,
    /// Drain → feature matrix formed (stream-state update + staging).
    pub coalesce_ns: u64,
    /// Feature matrix → predictions decoded (`predict_batch` + emission).
    pub kernel_ns: u64,
    /// Predictions → responses delivered to the completion sink.
    pub sink_ns: u64,
}

impl SpanRecord {
    /// Total lifecycle time of this request as observed by the runtime.
    pub fn total_ns(&self) -> u64 {
        self.queue_wait_ns
            .saturating_add(self.coalesce_ns)
            .saturating_add(self.kernel_ns)
            .saturating_add(self.sink_ns)
    }
}

/// Fixed-capacity ring of the most recent spans. Capacity 0 disables
/// recording entirely ([`Self::push`] returns without taking the lock).
#[derive(Debug)]
pub struct SpanRing {
    inner: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
}

impl SpanRing {
    pub fn new(capacity: usize) -> SpanRing {
        SpanRing { inner: Mutex::new(VecDeque::with_capacity(capacity.min(4096))), capacity }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a span, evicting the oldest if full. No-op at capacity 0.
    pub fn push(&self, rec: SpanRecord) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(rec);
    }

    /// The retained spans, oldest first.
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).iter().copied().collect()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64) -> SpanRecord {
        SpanRecord { stream_id: 1, seq, queue_wait_ns: 10, kernel_ns: 5, ..Default::default() }
    }

    #[test]
    fn ring_keeps_most_recent_up_to_capacity() {
        let ring = SpanRing::new(3);
        for seq in 0..5 {
            ring.push(span(seq));
        }
        let seqs: Vec<u64> = ring.recent().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest spans must be evicted first");
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let ring = SpanRing::new(0);
        ring.push(span(0));
        assert!(ring.is_empty());
    }

    #[test]
    fn total_saturates() {
        let rec = SpanRecord { queue_wait_ns: u64::MAX, kernel_ns: 7, ..Default::default() };
        assert_eq!(rec.total_ns(), u64::MAX);
        assert_eq!(span(0).total_ns(), 15);
    }
}
