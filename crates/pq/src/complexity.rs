//! Kernel complexity model (paper §V-C, Eq. 16–21).
//!
//! These formulas quantify the latency (cycles under full parallelism),
//! storage (bits: table entries at `d`-bit precision plus encoded indices),
//! and arithmetic operations of the two kernels. DART's table configurator
//! (in `dart-core`) composes them into whole-model costs (Eq. 22–23).

use serde::{Deserialize, Serialize};

/// `ceil(log2(x))`, with `log2(1) = 0` and `log2(0) = 0`.
#[inline]
pub fn log2_ceil(x: usize) -> u64 {
    if x <= 1 {
        0
    } else {
        (usize::BITS - (x - 1).leading_zeros()) as u64
    }
}

/// Latency / storage / ops of a kernel instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Cycles, assuming fully parallel implementation.
    pub latency_cycles: u64,
    /// Bits (paper's Eq. 18–19 count index bits + `d`-bit table entries).
    pub storage_bits: u64,
    /// Arithmetic operations per query (encoding + aggregation).
    pub ops: u64,
}

impl KernelCost {
    /// Storage in bytes (rounded up).
    pub fn storage_bytes(&self) -> u64 {
        self.storage_bits.div_ceil(8)
    }

    /// Sequential composition.
    pub fn seq(self, other: KernelCost) -> KernelCost {
        KernelCost {
            latency_cycles: self.latency_cycles + other.latency_cycles,
            storage_bits: self.storage_bits + other.storage_bits,
            ops: self.ops + other.ops,
        }
    }
}

/// Eq. 16 — linear kernel latency: `log(K) + log(C) + 1`.
pub fn linear_latency(k: usize, c: usize) -> u64 {
    log2_ceil(k) + log2_ceil(c) + 1
}

/// Eq. 17 — attention kernel latency:
/// `2 log(K) + log(C_k) + log(C_t) + 2`.
pub fn attention_latency(k: usize, ck: usize, ct: usize) -> u64 {
    2 * log2_ceil(k) + log2_ceil(ck) + log2_ceil(ct) + 2
}

/// Eq. 18 — linear kernel storage (bits):
/// `T*C*log(K)` (encoded indices) `+ D_O*K*C*d` (table entries).
pub fn linear_storage_bits(t: usize, d_o: usize, k: usize, c: usize, d_bits: usize) -> u64 {
    (t * c) as u64 * log2_ceil(k) + (d_o * k * c * d_bits) as u64
}

/// Eq. 19 — attention kernel storage (bits):
/// `(2*T*C_k + T*C_t + D_k*C_t) * log(K) + K^2 * (C_k + C_t) * d`.
pub fn attention_storage_bits(
    t: usize,
    d_k: usize,
    k: usize,
    ck: usize,
    ct: usize,
    d_bits: usize,
) -> u64 {
    ((2 * t * ck + t * ct + d_k * ct) as u64) * log2_ceil(k) + (k * k * (ck + ct) * d_bits) as u64
}

/// Eq. 20 — linear kernel arithmetic operations:
/// `T*C*log(K)` (encoding) `+ T*D_O*log(C)` (aggregation).
pub fn linear_ops(t: usize, d_o: usize, k: usize, c: usize) -> u64 {
    (t * c) as u64 * log2_ceil(k) + (t * d_o) as u64 * log2_ceil(c).max(1)
}

/// Eq. 21 — attention kernel arithmetic operations:
/// `(2*T*C_k + T*C_t + D_k*C_t) * log(K) + T^2*log(C_k) + D_k^2*log(C_t)`.
pub fn attention_ops(t: usize, d_k: usize, k: usize, ck: usize, ct: usize) -> u64 {
    ((2 * t * ck + t * ct + d_k * ct) as u64) * log2_ceil(k)
        + (t * t) as u64 * log2_ceil(ck).max(1)
        + (d_k * d_k) as u64 * log2_ceil(ct).max(1)
}

/// Full cost of a linear kernel instance.
pub fn linear_kernel_cost(t: usize, d_o: usize, k: usize, c: usize, d_bits: usize) -> KernelCost {
    KernelCost {
        latency_cycles: linear_latency(k, c),
        storage_bits: linear_storage_bits(t, d_o, k, c, d_bits),
        ops: linear_ops(t, d_o, k, c),
    }
}

/// Full cost of an attention kernel instance (with `C = C_k = C_t`).
pub fn attention_kernel_cost(
    t: usize,
    d_k: usize,
    k: usize,
    c: usize,
    d_bits: usize,
) -> KernelCost {
    KernelCost {
        latency_cycles: attention_latency(k, c, c),
        storage_bits: attention_storage_bits(t, d_k, k, c, c, d_bits),
        ops: attention_ops(t, d_k, k, c, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(16), 4);
        assert_eq!(log2_ceil(128), 7);
        assert_eq!(log2_ceil(1024), 10);
    }

    #[test]
    fn linear_latency_matches_paper_example() {
        // DART config: K=128, C=2 => log(128) + log(2) + 1 = 9.
        assert_eq!(linear_latency(128, 2), 9);
        // DART-S: K=16, C=1 => 4 + 0 + 1 = 5.
        assert_eq!(linear_latency(16, 1), 5);
    }

    #[test]
    fn attention_latency_is_twice_linear_when_c_equal() {
        // Eq. 17 collapses to 2*(log K + log C + 1) when C_k = C_t = C.
        for (k, c) in [(128, 2), (16, 1), (256, 2), (1024, 8)] {
            assert_eq!(attention_latency(k, c, c), 2 * linear_latency(k, c));
        }
    }

    #[test]
    fn storage_grows_linearly_in_k_for_linear_kernel() {
        let s1 = linear_storage_bits(16, 128, 64, 2, 32);
        let s2 = linear_storage_bits(16, 128, 128, 2, 32);
        // Table part dominates; doubling K should roughly double storage.
        assert!(s2 > s1 * 18 / 10, "{s1} -> {s2}");
    }

    #[test]
    fn storage_grows_quadratically_in_k_for_attention_kernel() {
        let s1 = attention_storage_bits(16, 32, 64, 2, 2, 32);
        let s2 = attention_storage_bits(16, 32, 128, 2, 2, 32);
        assert!(s2 > s1 * 3, "expected ~4x growth: {s1} -> {s2}");
    }

    #[test]
    fn latency_grows_logarithmically_in_k() {
        // Fig. 10: latency linear in log(K).
        let lat: Vec<u64> =
            [16usize, 32, 64, 128, 256, 512, 1024].iter().map(|&k| linear_latency(k, 2)).collect();
        for w in lat.windows(2) {
            assert_eq!(w[1] - w[0], 1, "latency should step by 1 per K doubling");
        }
    }

    #[test]
    fn ops_dwarfed_by_dense_equivalent() {
        // The whole point of tabularization: ops(T, D_O, K, C) must be tiny
        // compared to the dense 2*T*D_I*D_O.
        let (t, d_i, d_o, k, c) = (16usize, 32usize, 128usize, 128usize, 2usize);
        let dense = 2 * t * d_i * d_o;
        let tab = linear_ops(t, d_o, k, c);
        assert!(tab < (dense / 10) as u64, "tab {tab} vs dense {dense}");
    }

    #[test]
    fn kernel_cost_composition() {
        let a = linear_kernel_cost(16, 128, 128, 2, 32);
        let b = attention_kernel_cost(16, 32, 128, 2, 32);
        let s = a.seq(b);
        assert_eq!(s.latency_cycles, a.latency_cycles + b.latency_cycles);
        assert_eq!(s.storage_bits, a.storage_bits + b.storage_bits);
        assert_eq!(s.ops, a.ops + b.ops);
        assert_eq!(KernelCost { storage_bits: 9, ..Default::default() }.storage_bytes(), 2);
    }
}
