//! Hot-swap integration tests: the versioned model slot under live
//! traffic, the registry's promotion/rollback bookkeeping, and the
//! shadow-retraining A/B gate.
//!
//! The two load-bearing properties:
//!
//! 1. **Zero downtime, zero divergence**: swapping in a bit-identical
//!    `deep_clone` mid-traffic must change *nothing* — every request
//!    still gets exactly one response and every response is
//!    bit-for-bit what the un-swapped run produced. Any lost, failed,
//!    or changed response is the swap machinery's fault.
//! 2. **The swap actually lands**: a *different* model swapped in mid
//!    stream serves subsequent requests with the new weights while the
//!    per-stream history survives the swap.
//!
//! This suite also runs under `--features lockcheck` in CI, which turns
//! any lock-order inversion between the slot, registry, replay ring and
//! the serving-path locks into a panic.

use std::collections::HashMap;
use std::sync::Arc;

use dart_core::config::TabularConfig;
use dart_core::eval::evaluate_tabular_f1;
use dart_core::tabularize::tabularize;
use dart_core::TabularModel;
use dart_nn::init::InitRng;
use dart_nn::matrix::Matrix;
use dart_nn::model::{AccessPredictor, ModelConfig};
use dart_nn::train::{train_bce, Dataset, TrainConfig};
use dart_serve::{
    gate_candidate, generate_requests, LoadGenConfig, ModelRegistry, ModelSlot, PrefetchRequest,
    ServeConfig, ServeRuntime, ShadowConfig, ShadowOutcome, ShadowTrainer, VersionState,
};
use dart_trace::PreprocessConfig;

fn tiny_pre() -> PreprocessConfig {
    PreprocessConfig {
        seq_len: 4,
        addr_segments: 3,
        seg_bits: 4,
        pc_segments: 1,
        delta_range: 4,
        lookforward: 4,
    }
}

fn model_cfg(pre: &PreprocessConfig) -> ModelConfig {
    ModelConfig {
        input_dim: pre.input_dim(),
        dim: 8,
        heads: 2,
        layers: 1,
        ffn_dim: 16,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    }
}

/// A tiny tabularized model; different `seed`s give genuinely different
/// tables (asserted via fingerprint where it matters).
fn tiny_model(pre: &PreprocessConfig, seed: u64) -> Arc<TabularModel> {
    let student = AccessPredictor::new(model_cfg(pre), seed).unwrap();
    let mut rng = InitRng::new(seed ^ 0x9E37);
    let x = Matrix::from_fn(40 * pre.seq_len, pre.input_dim(), |_, _| rng.next_f32());
    let tab_cfg = TabularConfig { k: 8, c: 2, fine_tune_epochs: 0, ..Default::default() };
    let (model, _) = tabularize(&student, &x, &tab_cfg);
    Arc::new(model)
}

fn serve_cfg(shards: usize) -> ServeConfig {
    ServeConfig { shards, max_batch: 16, threshold: 0.0, max_degree: 4, ..ServeConfig::default() }
}

/// Serial single-sample replay of the serving emit policy (threshold
/// 0.0, degree 4) for one warm window — the ground truth a response is
/// compared against. Mirrors `batched_serving_matches_serial_replay`.
fn serial_predict(
    model: &TabularModel,
    pre: &PreprocessConfig,
    window: &[(u64, u64)], // (block, pc), len == seq_len
) -> Vec<u64> {
    let mut feats = Matrix::zeros(pre.seq_len, pre.input_dim());
    for (t, &(block, pc)) in window.iter().enumerate() {
        pre.write_token_features(block, pc, feats.row_mut(t));
    }
    let probs = model.forward_probs(&feats);
    let anchor = window.last().unwrap().0;
    let mut candidates: Vec<(f32, usize)> =
        probs.row(0).iter().enumerate().map(|(bit, &p)| (p, bit)).collect();
    candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    candidates
        .into_iter()
        .take(4)
        .filter_map(|(_, bit)| {
            let target = anchor as i64 + pre.bit_to_delta(bit);
            (target > 0).then_some(target as u64)
        })
        .collect()
}

/// The zero-divergence property: swap a bit-identical `deep_clone` of
/// the active model into a loaded runtime — repeatedly, mid-traffic —
/// and every response must be bit-for-bit identical to a run that never
/// swapped, with exactly one response per request and zero failures.
#[test]
fn bit_identical_swap_mid_load_changes_no_response() {
    let pre = tiny_pre();
    let model = tiny_model(&pre, 3);
    let reqs = generate_requests(&LoadGenConfig { streams: 24, accesses_per_stream: 40, seed: 7 });
    let total = reqs.len();

    // Reference run: no swap ever.
    let reference: HashMap<(u64, u64), Vec<u64>> = {
        let runtime = ServeRuntime::start(Arc::clone(&model), pre, serve_cfg(3));
        runtime.submit_all(reqs.iter().copied());
        runtime.wait_idle();
        let responses = runtime.drain_completed();
        assert_eq!(responses.len(), total);
        runtime.shutdown();
        responses.into_iter().map(|r| ((r.stream_id, r.seq), r.prefetch_blocks)).collect()
    };

    // Swapping run: same traffic in chunks, a hot-swap fired between the
    // chunks while earlier requests are still in flight (no wait_idle
    // until the end).
    let runtime = ServeRuntime::start(model, pre, serve_cfg(3));
    let swaps = 3usize;
    let chunk = total.div_ceil(swaps + 1);
    for (i, part) in reqs.chunks(chunk).enumerate() {
        runtime.submit_all(part.iter().copied());
        if i < swaps {
            let (_, active) = runtime.registry().active();
            let clone = Arc::new(active.deep_clone());
            runtime.swap_model(clone, "test clone swap").expect("clone is dimension-compatible");
        }
    }
    runtime.wait_idle();
    let responses = runtime.drain_completed();
    assert_eq!(responses.len(), total, "a swap lost or duplicated responses");

    let mut seen = std::collections::HashSet::new();
    for resp in &responses {
        assert!(resp.error.is_none(), "a swap failed a response: {:?}", resp.error);
        assert!(seen.insert((resp.stream_id, resp.seq)), "duplicate response");
        assert_eq!(
            reference.get(&(resp.stream_id, resp.seq)),
            Some(&resp.prefetch_blocks),
            "stream {} seq {} diverged across a bit-identical swap",
            resp.stream_id,
            resp.seq
        );
    }

    let stats = runtime.shutdown();
    assert_eq!(stats.requests as usize, total);
    assert_eq!(stats.failed, 0, "zero-downtime means zero failures");
    assert_eq!(stats.model_swaps, swaps as u64);
    assert_eq!(stats.model_version, 1 + swaps as u64);
    // Every shard finished on the final version.
    assert!(stats.per_shard_model_version.iter().all(|&v| v == 1 + swaps as u64));
}

/// A *different* model swapped in mid-stream must take effect — and the
/// per-stream history must survive the swap, so the first post-swap
/// prediction's window still includes pre-swap accesses.
#[test]
fn swapped_model_takes_effect_and_stream_state_survives() {
    let pre = tiny_pre();
    let model_a = tiny_model(&pre, 3);
    let model_b = tiny_model(&pre, 99);
    assert_ne!(
        model_a.fingerprint(),
        model_b.fingerprint(),
        "test needs two genuinely different models"
    );

    let runtime = ServeRuntime::start(Arc::clone(&model_a), pre, serve_cfg(1));
    let mut history: Vec<(u64, u64)> = Vec::new(); // (block, pc)
    let pc = 0x400u64;

    // Warm the stream on model A and drain those responses.
    for i in 0..(pre.seq_len as u64 + 2) {
        let addr = (100 + i) << 6;
        history.push((addr >> 6, pc));
        runtime.submit(PrefetchRequest { stream_id: 7, pc, addr });
    }
    runtime.wait_idle();
    let pre_swap = runtime.drain_completed();
    assert_eq!(pre_swap.len(), pre.seq_len + 2);

    // Swap to B, then keep the same stream going.
    let v = runtime.swap_model(Arc::clone(&model_b), "test model change").unwrap();
    assert_eq!(v, 2);
    let post_accesses = 6u64;
    let first_post_seq = pre.seq_len as u64 + 2;
    for i in 0..post_accesses {
        let addr = (100 + pre.seq_len as u64 + 2 + i) << 6;
        history.push((addr >> 6, pc));
        runtime.submit(PrefetchRequest { stream_id: 7, pc, addr });
    }
    runtime.wait_idle();
    let mut post_swap = runtime.drain_completed();
    post_swap.sort_by_key(|r| r.seq);
    assert_eq!(post_swap.len(), post_accesses as usize);

    let mut some_window_distinguishes = false;
    for resp in &post_swap {
        let upto = (resp.seq + 1) as usize;
        let window = &history[upto - pre.seq_len..upto];
        let expect_b = serial_predict(&model_b, &pre, window);
        let expect_a = serial_predict(&model_a, &pre, window);
        assert_eq!(
            resp.prefetch_blocks, expect_b,
            "seq {} not served by the swapped-in model (history window lost?)",
            resp.seq
        );
        some_window_distinguishes |= expect_a != expect_b;
        // The first post-swap window still spans pre-swap accesses: the
        // stream re-warming from scratch would have emitted nothing.
        if resp.seq == first_post_seq {
            assert!(!resp.prefetch_blocks.is_empty(), "stream state was lost across the swap");
        }
    }
    assert!(
        some_window_distinguishes,
        "models A and B agree on every tested window; the test has no power"
    );
    runtime.shutdown();
}

/// A swap candidate with the wrong dimensions is refused outright: an
/// error comes back, no version is published, and serving continues on
/// the incumbent.
#[test]
fn dimension_mismatched_candidate_is_refused_without_state_change() {
    let pre = tiny_pre();
    let runtime = ServeRuntime::start(tiny_model(&pre, 3), pre, serve_cfg(1));

    let mut wrong_pre = tiny_pre();
    wrong_pre.seq_len = 5;
    let wrong = tiny_model(&wrong_pre, 3);
    let err = runtime.swap_model(wrong, "bad candidate").unwrap_err();
    assert!(err.contains("seq_len"), "error must name the mismatched dimension: {err}");
    assert_eq!(runtime.model_version(), 1, "a refused candidate must not bump the version");
    assert_eq!(runtime.registry().counters().swaps, 0);

    for i in 0..8u64 {
        runtime.submit(PrefetchRequest { stream_id: 1, pc: 0x10, addr: (300 + i) << 6 });
    }
    runtime.wait_idle();
    assert_eq!(runtime.drain_completed().len(), 8);
    let stats = runtime.shutdown();
    assert_eq!(stats.failed, 0);
}

/// The deterministic A/B gate test: a trained candidate and an untrained
/// one are evaluated on the same held-out live-shaped data. The gate
/// must promote the better model over the worse incumbent and reject
/// the worse candidate against the better incumbent — and the margin
/// knob must be able to veto an otherwise-winning candidate.
#[test]
fn gate_promotes_better_and_rejects_worse_deterministically() {
    // A deterministic, genuinely learnable multi-label task (the same
    // shape the eval-crate tests use): each sample's "level" decides
    // which output bits are on, so a trained model scores high F1 while
    // a model trained against all-zero targets scores exactly 0 (it
    // learns to predict nothing).
    let (seq, di, dout, n) = (4usize, 4usize, 6usize, 220usize);
    let mut rng = InitRng::new(41);
    let mut inputs = Matrix::zeros(n * seq, di);
    let mut targets = Matrix::zeros(n, dout);
    for i in 0..n {
        let level = rng.next_f32();
        for t in 0..seq {
            for d in 0..di {
                inputs.set(i * seq + t, d, level + rng.normal() * 0.05);
            }
        }
        for b in 0..dout {
            if level > (b + 1) as f32 / (dout + 1) as f32 {
                targets.set(i, b, 1.0);
            }
        }
    }
    let data = Dataset::new(inputs, targets, seq);
    let (train, holdout) = data.split(0.8);
    assert!(!holdout.is_empty());

    let cfg = ModelConfig {
        input_dim: di,
        dim: 8,
        heads: 2,
        layers: 1,
        ffn_dim: 16,
        output_dim: dout,
        seq_len: seq,
    };
    let tcfg = TrainConfig { epochs: 25, batch_size: 32, ..TrainConfig::default() };
    let tab_cfg = TabularConfig { k: 128, c: 2, fine_tune_epochs: 6, ..Default::default() };
    let good = {
        let mut student = AccessPredictor::new(cfg.clone(), 5).unwrap();
        train_bce(&mut student, &train, &tcfg);
        Arc::new(tabularize(&student, &train.inputs, &tab_cfg).0)
    };
    let bad = {
        // Trained to predict nothing: all-zero targets drive every
        // logit negative, so held-out F1 is 0 by construction.
        let zeroed = Dataset::new(train.inputs.clone(), Matrix::zeros(train.len(), dout), seq);
        let mut student = AccessPredictor::new(cfg, 12_345).unwrap();
        train_bce(&mut student, &zeroed, &tcfg);
        Arc::new(tabularize(&student, &zeroed.inputs, &tab_cfg).0)
    };

    // Precondition the whole test rests on: the models are separable.
    let f1_good = evaluate_tabular_f1(&good, &holdout, 64);
    let f1_bad = evaluate_tabular_f1(&bad, &holdout, 64);
    assert!(
        f1_good > f1_bad,
        "precondition failed: trained F1 {f1_good} must beat predict-nothing F1 {f1_bad}"
    );

    // Worse candidate vs better incumbent: rejected, slot untouched.
    let registry = ModelRegistry::new(Arc::new(ModelSlot::new(Arc::clone(&good), 1, 1)));
    let outcome =
        gate_candidate(&registry, Arc::clone(&bad), &holdout, 0.0, "worse candidate", None, 64);
    match outcome {
        ShadowOutcome::Rejected { candidate_f1, incumbent_f1 } => {
            assert_eq!(candidate_f1, f1_bad);
            assert_eq!(incumbent_f1, f1_good);
        }
        other => panic!("worse candidate must be rejected, got {other:?}"),
    }
    assert_eq!(registry.active_version(), 1);
    assert_eq!(registry.versions().len(), 1);
    assert_eq!(registry.rejected().len(), 1);
    assert_eq!(registry.counters().rejections, 1);
    assert_eq!(registry.counters().swaps, 0);

    // Better candidate vs worse incumbent: promoted, with the eval score
    // and training window recorded on the new version.
    let registry = ModelRegistry::new(Arc::new(ModelSlot::new(Arc::clone(&bad), 1, 1)));
    let outcome = gate_candidate(
        &registry,
        Arc::clone(&good),
        &holdout,
        0.0,
        "better candidate",
        Some((10, 20)),
        64,
    );
    match outcome {
        ShadowOutcome::Promoted { version, candidate_f1, incumbent_f1 } => {
            assert_eq!(version, 2);
            assert_eq!(candidate_f1, f1_good);
            assert_eq!(incumbent_f1, f1_bad);
        }
        other => panic!("better candidate must be promoted, got {other:?}"),
    }
    assert_eq!(registry.active_version(), 2);
    let versions = registry.versions();
    assert_eq!(versions.len(), 2);
    assert_eq!(versions[0].state, VersionState::Superseded);
    assert_eq!(versions[1].state, VersionState::Active);
    assert_eq!(versions[1].eval_f1, Some(f1_good));
    assert_eq!(versions[1].training_window, Some((10, 20)));
    assert_eq!(versions[1].fingerprint, good.fingerprint());

    // An unreachable margin vetoes even a genuinely better candidate.
    let registry = ModelRegistry::new(Arc::new(ModelSlot::new(Arc::clone(&bad), 1, 1)));
    let outcome =
        gate_candidate(&registry, good, &holdout, 2.0, "margin-vetoed candidate", None, 64);
    assert!(
        matches!(outcome, ShadowOutcome::Rejected { .. }),
        "a margin no candidate can clear must reject, got {outcome:?}"
    );
    assert_eq!(registry.active_version(), 1);
}

/// Rollback restores the predecessor's model under a NEW forward
/// version id (epochs never move backwards), demotes the abandoned
/// version to `RolledBack`, and counts in both swap and rollback
/// counters — all visible in `ServeStats`.
#[test]
fn rollback_restores_previous_model_as_a_new_version() {
    let pre = tiny_pre();
    let model_a = tiny_model(&pre, 3);
    let model_b = tiny_model(&pre, 99);
    let runtime = ServeRuntime::start(Arc::clone(&model_a), pre, serve_cfg(1));
    let registry = Arc::clone(runtime.registry());

    // Nothing to roll back to at startup.
    assert_eq!(registry.rollback(), None);

    runtime.swap_model(Arc::clone(&model_b), "promotion").unwrap();
    assert_eq!(registry.active().1.fingerprint(), model_b.fingerprint());

    let rolled = registry.rollback().expect("a predecessor exists now");
    assert_eq!(rolled, 3, "rollback must install a NEW forward version");
    let (active_id, active) = registry.active();
    assert_eq!(active_id, 3);
    assert_eq!(active.fingerprint(), model_a.fingerprint(), "rollback must restore A's bits");

    let versions = registry.versions();
    assert_eq!(versions.len(), 3);
    assert_eq!(versions[1].state, VersionState::RolledBack, "the abandoned version is marked");
    assert_eq!(versions[2].provenance, "rollback to version 1");
    assert_eq!(versions[2].fingerprint, model_a.fingerprint());

    // The rolled-back-to model serves traffic, and the stats surface
    // the full story.
    for i in 0..8u64 {
        runtime.submit(PrefetchRequest { stream_id: 1, pc: 0x10, addr: (300 + i) << 6 });
    }
    runtime.wait_idle();
    assert_eq!(runtime.drain_completed().len(), 8);
    let stats = runtime.shutdown();
    assert_eq!(stats.model_version, 3);
    assert_eq!(stats.model_swaps, 2, "the rollback also counts as a swap");
    assert_eq!(stats.model_rollbacks, 1);
    assert_eq!(stats.failed, 0);
}

/// Regression guard: a worker that panics around a swap must not break
/// the exactly-one-response invariant. The model handle is refreshed
/// *after* the batch guard arms, so even a panic during adoption fails
/// the batch cleanly instead of leaking in-flight slots — and a swap
/// published to a dead shard must not hang anything.
#[test]
fn worker_panic_during_swap_keeps_exactly_one_response_accounting() {
    let pre = tiny_pre();
    let model = tiny_model(&pre, 3);
    let mut cfg = serve_cfg(1);
    cfg.panic_on_stream = Some(3);
    let runtime = ServeRuntime::start(Arc::clone(&model), pre, cfg);

    // Interleaved backlog with the poison stream buried mid-batch; the
    // swap lands while that backlog is in flight.
    let mut reqs = Vec::new();
    for k in 0..20u64 {
        for s in 0..5u64 {
            reqs.push(PrefetchRequest { stream_id: s, pc: 0x40, addr: (500 + s * 1000 + k) << 6 });
        }
    }
    let total = reqs.len();
    runtime.submit_all(reqs);
    runtime
        .swap_model(Arc::new(model.deep_clone()), "swap racing a worker death")
        .expect("publishing must not depend on worker health");

    // Must return, not hang: the dying batch and the drained backlog are
    // all answered as failures.
    runtime.wait_idle();
    let responses = runtime.drain_completed();
    assert_eq!(responses.len(), total, "every submit gets exactly one response across the panic");

    // A swap *after* the only worker died still publishes (nobody left
    // to adopt it — that is a health problem, not a registry problem).
    runtime
        .swap_model(Arc::new(model.deep_clone()), "swap after worker death")
        .expect("swap on a dead runtime must not error or hang");

    let stats = runtime.shutdown();
    assert_eq!(stats.worker_panics.len(), 1);
    assert_eq!((stats.requests + stats.failed) as usize, total);
    assert!(stats.model_swaps >= 2);
}

fn shadow_cfg(pre: PreprocessConfig, min_samples: usize) -> ShadowConfig {
    ShadowConfig {
        pre,
        student: model_cfg(&pre),
        train: TrainConfig { epochs: 3, batch_size: 32, ..TrainConfig::default() },
        teacher: None,
        tabular: TabularConfig { k: 8, c: 2, fine_tune_epochs: 0, ..Default::default() },
        min_samples,
        holdout_frac: 0.25,
        margin: 0.0,
        stride: 1,
        seed: 0xFEED,
        eval_batch: 32,
    }
}

/// The shadow loop end-to-end against a live runtime: served traffic
/// lands in the replay ring, a round trains and gates a candidate, and
/// the registry's books agree with the outcome — while serving keeps
/// answering.
#[test]
fn shadow_round_trains_on_live_replay_and_updates_the_registry() {
    let pre = tiny_pre();
    let mut cfg = serve_cfg(2);
    cfg.replay_capacity = 4096;
    let runtime = ServeRuntime::start(tiny_model(&pre, 3), pre, cfg);

    // Not-enough-samples first: an empty ring trains nothing.
    let trainer = ShadowTrainer::new(shadow_cfg(pre, 64));
    let sampler = Arc::clone(runtime.replay().expect("replay_capacity > 0 enables the sampler"));
    assert_eq!(
        trainer.run_once(runtime.registry(), &sampler),
        ShadowOutcome::NotEnoughSamples { resident: 0 }
    );

    // Live traffic fills the ring (sequential streams — learnable).
    let reqs = generate_requests(&LoadGenConfig { streams: 8, accesses_per_stream: 80, seed: 13 });
    let total = reqs.len();
    runtime.submit_all(reqs);
    runtime.wait_idle();
    assert_eq!(runtime.drain_completed().len(), total);
    // The replay push lands *after* response delivery (sampling never
    // adds request latency), so `wait_idle` can return a beat before the
    // final batch's samples arrive — poll briefly before asserting.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while (sampler.total_sampled() as usize) < total && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(sampler.total_sampled() as usize, total, "every served access must be sampled");
    assert!(sampler.len() >= 64);

    let outcome = trainer.run_once(runtime.registry(), &sampler);
    let registry = runtime.registry();
    match outcome {
        ShadowOutcome::Promoted { version, candidate_f1, incumbent_f1 } => {
            assert_eq!(version, 2);
            assert_eq!(registry.active_version(), 2);
            assert!(candidate_f1 > incumbent_f1);
            let v = &registry.versions()[1];
            assert_eq!(v.provenance, "shadow-retrain round 2");
            assert_eq!(v.eval_f1, Some(candidate_f1));
            let (start, end) = v.training_window.expect("shadow promotions record their window");
            assert!(start < end && end == total as u64);
        }
        ShadowOutcome::Rejected { .. } => {
            assert_eq!(registry.active_version(), 1);
            assert_eq!(registry.rejected().len(), 1);
            assert_eq!(registry.rejected()[0].provenance, "shadow-retrain round 2");
        }
        ShadowOutcome::NotEnoughSamples { resident } => {
            panic!("{resident} resident samples must be enough to train")
        }
    }

    // Serving is alive either way — the whole point of shadow training.
    for i in 0..8u64 {
        runtime.submit(PrefetchRequest { stream_id: 999, pc: 0x10, addr: (300 + i) << 6 });
    }
    runtime.wait_idle();
    assert_eq!(runtime.drain_completed().len(), 8);
    let stats = runtime.shutdown();
    assert_eq!(stats.failed, 0);
}

/// The background loop spawns, runs rounds on an interval, and
/// stop() joins it deterministically, returning every round's outcome.
#[test]
fn background_shadow_loop_stops_cleanly_and_reports_outcomes() {
    let pre = tiny_pre();
    let mut cfg = serve_cfg(1);
    cfg.replay_capacity = 256;
    let runtime = ServeRuntime::start(tiny_model(&pre, 3), pre, cfg);
    let sampler = Arc::clone(runtime.replay().unwrap());

    // min_samples is unreachably high, so every round is a cheap
    // NotEnoughSamples — this test is about the loop lifecycle, not
    // training.
    let trainer = ShadowTrainer::new(shadow_cfg(pre, usize::MAX));
    let handle = trainer.spawn(
        Arc::clone(runtime.registry()),
        sampler,
        runtime.kernel_pool(),
        std::time::Duration::from_millis(20),
    );
    std::thread::sleep(std::time::Duration::from_millis(250));
    let outcomes = handle.stop();
    assert!(!outcomes.is_empty(), "250ms at a 20ms interval must run at least one round");
    assert!(outcomes.iter().all(|o| matches!(o, ShadowOutcome::NotEnoughSamples { .. })));
    assert_eq!(runtime.model_version(), 1, "no round had data, so no promotion");
    runtime.shutdown();
}
