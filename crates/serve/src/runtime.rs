//! The serving runtime: shard lifecycle, placement, submission, and
//! statistics.

use dart_telemetry::lockcheck::{named_mutex, Mutex};
use std::sync::{Arc, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use dart_core::TabularModel;
use dart_numa::NumaTopology;
use dart_telemetry::{Histogram, SpanRecord, SpanRing};
use dart_trace::PreprocessConfig;

use crate::placement::{plan_placement, ShardPlacement};
use crate::registry::ModelRegistry;
use crate::request::{PrefetchRequest, PrefetchResponse};
use crate::router::StreamRouter;
use crate::shadow::ReplaySampler;
use crate::shard::{
    CompletionSink, EmitPolicy, Envelope, RetireCell, ShardQueue, ShardReport, ShardTelemetry,
    ShardWorker, TryPushError,
};
use crate::slot::ModelSlot;

/// Why [`ServeRuntime::try_submit`] did **not** accept a request. This is
/// the only rejection that produces no response through the completion
/// sink — the caller still holds the request and must answer for it
/// (the network front-end answers with a protocol NACK carrying `depth`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitRejected {
    /// The target shard's bounded queue is at capacity.
    QueueFull {
        /// Shard whose queue was full.
        shard: usize,
        /// Queue depth at rejection time (goes out in the NACK frame).
        depth: u64,
    },
}

/// Runtime configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of shard worker threads.
    pub shards: usize,
    /// Maximum requests coalesced into one batched prediction.
    pub max_batch: usize,
    /// Bitmap probability threshold for emitting a prefetch.
    pub threshold: f32,
    /// Maximum prefetches emitted per prediction (variable degree cap).
    /// Clamped to at least 1 at [`ServeRuntime::start`], matching
    /// `DartPrefetcher` — `max_degree: 0` used to silently disable all
    /// serving-path prefetching while the sim path emitted 1.
    pub max_degree: usize,
    /// Resident-stream cap **per shard**: each shard's stream-state map
    /// holds at most this many streams, evicting the least-recently-seen
    /// beyond it (clamped to at least 1). Bounds shard memory under
    /// stream-id churn — the map used to grow with every stream id ever
    /// routed to the shard. An evicted stream that returns re-warms from
    /// scratch (cold responses for its first `seq_len - 1` accesses, seq
    /// restarting at 0) rather than predicting on a stale window.
    pub max_streams_per_shard: usize,
    /// NUMA-aware shard placement policy (see [`ShardPlacement`]). The
    /// default `Disabled` is today's exact behavior; `NumaRoundRobin`
    /// pins workers round-robin across nodes and serves each node from
    /// its own first-touch-local model replica. Behavior-neutral for
    /// predictions either way (replicas are bit-identical copies).
    pub placement: ShardPlacement,
    /// Kernel thread-pool size. `Some(n)` builds one `n`-thread
    /// work-stealing pool shared by **all** shard workers — the shards ×
    /// pool-threads knob: `n` bounds the *extra* kernel threads, instead
    /// of each shard spawning its own pool. Note that a shard thread also
    /// executes kernel tiles itself while draining (`install` does not
    /// migrate the caller; waiting threads help), so concurrently-draining
    /// shards contribute their own thread each on top of the `n` workers —
    /// and with `Some(1)` kernels run entirely inline on each shard
    /// thread. `None` shares the process-global pool sized by
    /// `DART_NUM_THREADS`.
    pub pool_threads: Option<usize>,
    /// Bounded capacity of each shard's request queue (clamped to at
    /// least 1; `usize::MAX` — the default — is the unbounded sentinel).
    /// When a queue is full, [`ServeRuntime::submit`]/`submit_all`
    /// **block** the producer until space frees (in-process
    /// back-pressure), while [`ServeRuntime::try_submit`] fails fast with
    /// the queue depth — the network front-end turns that into a protocol
    /// NACK instead of blocking an IO thread.
    pub queue_capacity: usize,
    /// Fault injection for tests and chaos drills: the owning shard worker
    /// panics when it pops a batch containing this stream id, exercising
    /// the worker-death path (batch failure, queue poisoning, panic
    /// surfacing). `None` (the default) in production.
    pub panic_on_stream: Option<u64>,
    /// Fault injection: the owning shard worker sleeps [`Self::stall_ms`]
    /// before serving any batch containing this stream id — deterministic
    /// back-pressure for queue-full (NACK) tests. `None` in production.
    pub stall_on_stream: Option<u64>,
    /// Milliseconds [`Self::stall_on_stream`] stalls for (0 disables).
    pub stall_ms: u64,
    /// Fault injection: after a worker panic is caught, the recovery
    /// handler itself panics (while holding the shard's report-cell lock,
    /// so the cell is left poisoned). Exercises the join-error path in
    /// [`ServeRuntime::shutdown`] — the shard's served statistics and the
    /// second panic must both survive. `false` (the default) in
    /// production.
    pub panic_in_recovery: bool,
    /// Capacity of the recent-request span ring
    /// ([`ServeRuntime::recent_spans`]): the last N served requests keep
    /// their per-stage lifecycle breakdown for debugging. `0` disables
    /// the ring entirely; spans are only recorded when the crate is built
    /// with the `telemetry` feature (the stage timestamps otherwise
    /// compile to no-ops).
    pub span_capacity: usize,
    /// Capacity of the live-traffic replay buffer feeding the shadow
    /// retrainer ([`ServeRuntime::replay`]): shard workers append each
    /// served batch's accesses (one bulk push per batch, after responses
    /// are delivered), oldest samples falling off beyond the cap. `0` —
    /// the default — disables sampling entirely (no buffer, no per-batch
    /// cost).
    pub replay_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8);
        ServeConfig {
            shards,
            max_batch: 64,
            threshold: 0.5,
            max_degree: 4,
            max_streams_per_shard: 4096,
            placement: ShardPlacement::default(),
            pool_threads: None,
            queue_capacity: usize::MAX,
            panic_on_stream: None,
            stall_on_stream: None,
            stall_ms: 0,
            panic_in_recovery: false,
            span_capacity: 256,
            replay_capacity: 0,
        }
    }
}

/// Aggregate serving statistics, live or final.
///
/// Both [`ServeRuntime::stats_snapshot`] (while serving) and
/// [`ServeRuntime::shutdown`] (final) produce this through the **same**
/// aggregation path, so the two can never drift: a snapshot is simply the
/// aggregation run before the workers have stopped. Counters come from
/// per-shard report cells committed whole-batch, so every snapshot is
/// internally consistent (`latency.count() == requests`,
/// `predictions <= requests`) and counters are monotone across snapshots.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Requests answered by shard workers. Every submit produces exactly
    /// one response; responses not counted here were **failure** responses
    /// (see [`Self::failed`]).
    pub requests: u64,
    /// Failure responses delivered (worker panicked mid-batch, request
    /// queued behind a panic, or submitted to a dead/shut-down shard).
    pub failed: u64,
    /// `(shard_id, panic message)` of every shard worker that died.
    pub worker_panics: Vec<(usize, String)>,
    /// Model predictions made (requests whose stream history was warm).
    pub predictions: u64,
    /// Batched `predict_batch` calls issued across all shards.
    pub batches: u64,
    /// Largest coalesced batch observed on any shard.
    pub max_batch: usize,
    /// Requests handled per shard (routing balance diagnostic).
    pub per_shard_requests: Vec<u64>,
    /// NUMA node each shard was assigned to by [`ServeConfig::placement`]
    /// (`None` = unplaced, scheduler's choice). All `None` when placement
    /// is disabled.
    pub per_shard_node: Vec<Option<usize>>,
    /// Whether each shard's worker actually pinned itself to its assigned
    /// node's cpuset. `false` when unplaced, when the `numa` feature is
    /// off (pinning is a reported no-op), or when the kernel rejected the
    /// mask (e.g. a cgroup cpuset) — in those cases the shard also serves
    /// from the shared model, never from a node replica, since without
    /// the pin there is no first-touch locality to gain.
    pub per_shard_pinned: Vec<bool>,
    /// Streams resident in each shard's bounded LRU map at shutdown
    /// (each entry `<= ServeConfig::max_streams_per_shard`).
    pub per_shard_streams: Vec<usize>,
    /// Streams evicted by the per-shard LRU cap, across all shards.
    pub stream_evictions: u64,
    /// Streams explicitly retired by dead-connection cleanup
    /// ([`ServeRuntime::retire_streams_with_prefix`]), across all shards.
    pub stream_retirements: u64,
    /// The active model version (the [`crate::ModelSlot`] epoch; starts
    /// at 1, bumps on every hot-swap including rollbacks). Scrapes can
    /// correlate latency shifts with promotions through this.
    pub model_version: u64,
    /// Successful model hot-swaps since startup (promotions + rollbacks).
    pub model_swaps: u64,
    /// Explicit model rollbacks since startup (each also counts in
    /// [`Self::model_swaps`]).
    pub model_rollbacks: u64,
    /// Model version each shard most recently adopted (at startup, then
    /// re-checked every batch boundary). `0` means the shard's worker has
    /// not finished its initial adoption yet; after a swap, a lagging
    /// entry identifies a shard that may still serve one more batch on
    /// the older version.
    pub per_shard_model_version: Vec<u64>,
    /// Median request latency (queue + inference), nanoseconds.
    /// Percentiles come from a log2-bucketed histogram (O(1) memory per
    /// shard), so they are exact to within ~1.5x.
    pub p50_latency_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_latency_ns: u64,
    /// Mean request latency, nanoseconds.
    pub mean_latency_ns: u64,
    /// Requests submitted but not yet answered at aggregation time
    /// (always 0 after `shutdown`, which drains every queue).
    pub in_flight: u64,
    /// Requests sitting in shard queues at aggregation time.
    pub queue_depth: u64,
    /// Nanoseconds since `ServeRuntime::start`.
    pub uptime_ns: u64,
    /// The full request-latency histogram the percentiles above are read
    /// from (merged across shards) — callers can take their own quantiles.
    pub latency: Histogram,
    /// Coalesced batch-size distribution (one sample per served batch).
    pub batch_sizes: Histogram,
    /// Lifecycle stage: enqueue → drained by the worker, per request.
    /// Populated only in `telemetry` builds (otherwise empty).
    pub stage_queue_wait: Histogram,
    /// Lifecycle stage: drain → feature matrix formed, per batch.
    /// Populated only in `telemetry` builds.
    pub stage_coalesce: Histogram,
    /// Lifecycle stage: features → predictions decoded, per batch.
    /// Populated only in `telemetry` builds.
    pub stage_kernel: Histogram,
    /// Lifecycle stage: predictions → responses in the sink, per batch.
    /// Populated only in `telemetry` builds.
    pub stage_sink: Histogram,
}

impl ServeStats {
    /// Mean requests per batched prediction call.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// The sharded, batched serving runtime (see the crate docs for the
/// architecture diagram).
pub struct ServeRuntime {
    router: StreamRouter,
    queues: Vec<Arc<ShardQueue>>,
    sink: Arc<CompletionSink>,
    /// The versioned model slot every shard worker serves through, and
    /// its registry front (version metadata, publish/rollback, swap and
    /// rejection counters). The runtime's hot-swap surface.
    registry: Arc<ModelRegistry>,
    /// Live-traffic replay buffer feeding the shadow retrainer
    /// (`None` when `ServeConfig::replay_capacity` is 0).
    replay: Option<Arc<ReplaySampler>>,
    /// Preprocessing the runtime was started with — the dimension
    /// contract every hot-swapped candidate is validated against.
    pre: PreprocessConfig,
    workers: Vec<JoinHandle<()>>,
    /// Per-shard statistics cells. Workers commit into these once per
    /// served batch; shutdown reads them directly, so a shard's served
    /// numbers survive even a worker thread that dies outside its own
    /// panic handler (the cell may be poisoned — its data is still
    /// consistent, committed whole batches only).
    reports: Vec<Arc<Mutex<ShardReport>>>,
    /// Per-shard lock-free lifecycle cells (stage histograms, batch-size
    /// distribution), snapshot live without stopping the workers.
    telemetry: Vec<Arc<ShardTelemetry>>,
    /// Per-shard dead-stream retirement cells
    /// (see [`ServeRuntime::retire_streams_with_prefix`]).
    retire: Vec<Arc<RetireCell>>,
    /// Bounded ring of the most recently served requests' lifecycle spans.
    spans: Arc<SpanRing>,
    /// Dedicated kernel pool when `cfg.pool_threads` was set; `None` means
    /// the shard workers use the process-global pool. Kept here so the pool
    /// outlives every worker thread that installed it.
    pool: Option<Arc<rayon::ThreadPool>>,
    /// The machine's NUMA layout as discovered at startup (single-node
    /// fallback on hosts without sysfs topology).
    topology: Arc<NumaTopology>,
    /// Node id each shard was assigned to (`None` = unplaced).
    plan: Vec<Option<usize>>,
    started: Instant,
}

impl ServeRuntime {
    /// Spawn `cfg.shards` worker threads, each holding a handle to the
    /// model (or, under NUMA placement, to its node's replica) and its own
    /// bounded per-stream state.
    ///
    /// Validates the emission rule here, once, for the whole runtime:
    /// `max_degree` is clamped to at least 1, the same rule
    /// `DartPrefetcher` applies — `max_degree: 0` used to silently
    /// disable all serving-path prefetching while the sim path emitted 1.
    ///
    /// Panics if the model and preprocessing dimensions disagree (same
    /// contract as `DartPrefetcher`).
    pub fn start(
        model: Arc<TabularModel>,
        pre: PreprocessConfig,
        cfg: ServeConfig,
    ) -> ServeRuntime {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert_eq!(model.config.seq_len, pre.seq_len, "seq_len mismatch");
        assert_eq!(model.config.input_dim, pre.input_dim(), "input dim mismatch");
        assert_eq!(model.config.output_dim, pre.output_dim(), "output dim mismatch");
        // Unified emission rule (shared with `DartPrefetcher`): a degree
        // cap of 0 means "the minimum useful degree", never "silently off".
        let emit = EmitPolicy { threshold: cfg.threshold, max_degree: cfg.max_degree.max(1) };

        // NUMA placement: discover the topology (cheap sysfs read; exact
        // single-node fallback elsewhere) and plan shard -> node
        // assignments. Each node lazily gets one model replica per model
        // *version*, deep-copied by the FIRST worker pinned there to adopt
        // that version — first-touch puts the replica's arena pages on
        // that node, and a hot-swap refreshes the cell the same way. On a
        // single-node topology no replica is made: the original model
        // already is node-local.
        let topology = Arc::new(NumaTopology::detect());
        let plan = plan_placement(&topology, cfg.shards, cfg.placement);

        // Versioned model state: the slot holds the authoritative
        // (epoch, model) pair every worker reads through a per-shard
        // handle; the registry fronts it with version metadata and the
        // publish/rollback API. Startup is version 1.
        let slot = Arc::new(ModelSlot::new(model, topology.nodes().len(), cfg.shards));
        let registry = Arc::new(ModelRegistry::new(Arc::clone(&slot)));
        let replay =
            (cfg.replay_capacity > 0).then(|| Arc::new(ReplaySampler::new(cfg.replay_capacity)));

        let sink = Arc::new(CompletionSink::new());
        // One kernel pool for the whole runtime: every shard's batched
        // kernels (`predict_batch` tiles) are scheduled onto the same
        // work-stealing pool instead of each shard spawning its own.
        let pool = cfg.pool_threads.map(|n| Arc::new(rayon::ThreadPool::new(n)));
        if pool.is_none() {
            // Force the global pool NOW, on the caller thread: a malformed
            // `DART_NUM_THREADS` must panic here at startup, not lazily
            // inside each shard worker's first kernel call (which would
            // kill the shards without completing requests and leave
            // `wait_idle` callers hung).
            let _ = rayon::global_pool();
        }
        let spans = Arc::new(SpanRing::new(cfg.span_capacity));
        let mut queues = Vec::with_capacity(cfg.shards);
        let mut workers = Vec::with_capacity(cfg.shards);
        let mut reports = Vec::with_capacity(cfg.shards);
        let mut telemetry = Vec::with_capacity(cfg.shards);
        let mut retire = Vec::with_capacity(cfg.shards);
        for (shard_id, &node_id) in plan.iter().enumerate() {
            let queue = Arc::new(ShardQueue::new(cfg.queue_capacity));
            let shard_telemetry = Arc::new(ShardTelemetry::default());
            telemetry.push(Arc::clone(&shard_telemetry));
            let retire_cell = Arc::new(RetireCell::default());
            retire.push(Arc::clone(&retire_cell));
            // The worker commits statistics into this shared cell once per
            // served batch; the runtime holds the other reference, so what
            // a shard served survives any way its thread can die.
            let report_cell = Arc::new(named_mutex("serve.shard_report", ShardReport::default()));
            reports.push(Arc::clone(&report_cell));
            let worker_slot = Arc::clone(&slot);
            let worker_replay = replay.clone();
            let topo = Arc::clone(&topology);
            let max_batch = cfg.max_batch;
            let max_streams = cfg.max_streams_per_shard;
            let panic_on_stream = cfg.panic_on_stream;
            let stall_on_stream = cfg.stall_on_stream;
            let stall_ms = cfg.stall_ms;
            let panic_in_recovery = cfg.panic_in_recovery;
            let q = Arc::clone(&queue);
            let s = Arc::clone(&sink);
            let p = pool.clone();
            let span_ring = Arc::clone(&spans);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dart-serve-shard-{shard_id}"))
                    .spawn(move || {
                        // Placement order matters: pin FIRST, so the model
                        // replica (first-touch pages) and everything the
                        // worker allocates afterwards — stream-state map,
                        // feature scratch — land on the assigned node.
                        // Pinning is best-effort: a reported no-op (feature
                        // off, non-Linux) or a cpuset-restricted failure
                        // degrades to unpinned, never to a dead shard —
                        // and an unpinned worker does NOT serve from a
                        // node replica: without the pin there is no
                        // first-touch guarantee, so a copy would spend
                        // memory for zero locality. The outcome is
                        // recorded (`ServeStats::per_shard_pinned`) so
                        // operators can see placement silently degrading.
                        let replica_node = match node_id {
                            Some(id) => {
                                let node =
                                    topo.node(id).expect("placement plan references unknown node");
                                // `within`: intersect with the thread's
                                // allowed CPUs, so placement can never
                                // widen a taskset/cgroup restriction and
                                // a disjoint (e.g. fallback-synthesized)
                                // cpuset is a clean no-pin, not EINVAL.
                                let pinned = dart_numa::pin_current_thread_within(&node.cpus)
                                    .unwrap_or(false);
                                report_cell.lock().unwrap_or_else(PoisonError::into_inner).pinned =
                                    pinned;
                                if pinned && topo.is_multi_node() {
                                    // Serve from this node's refreshable
                                    // replica cell — the slot deep-copies
                                    // on this (pinned) thread when the
                                    // cell is stale, at startup and after
                                    // every hot-swap alike.
                                    Some(
                                        topo.node_index(id)
                                            .expect("plan node must exist in topology"),
                                    )
                                } else {
                                    // One node (the original already lives
                                    // there — a copy would only waste
                                    // memory), or the pin didn't take.
                                    None
                                }
                            }
                            None => None,
                        };
                        // Initial adoption happens HERE, on the pinned
                        // worker thread (first-touch for any replica), and
                        // publishes this shard's adopted epoch.
                        let model = worker_slot.handle(shard_id, replica_node);
                        let worker = ShardWorker {
                            shard_id,
                            model,
                            pre,
                            max_batch,
                            emit,
                            max_streams,
                            panic_on_stream,
                            stall_on_stream,
                            stall_ms,
                            retire: retire_cell,
                            telemetry: shard_telemetry,
                            spans: span_ring,
                            replay: worker_replay,
                        };
                        let run_cell = Arc::clone(&report_cell);
                        // A panicking worker must not strand its queue: the
                        // in-progress batch was already failed by the
                        // worker's batch guard; here the panic is caught,
                        // everything still queued is failed, the queue is
                        // poisoned so later submits fail fast, and the
                        // original panic message is surfaced instead of a
                        // later `PoisonError` at some unrelated lock site.
                        let run_q = Arc::clone(&q);
                        let run_s = Arc::clone(&s);
                        let result =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match p {
                                Some(pool) => pool.install(|| worker.run(run_q, run_s, run_cell)),
                                None => worker.run(run_q, run_s, run_cell),
                            }));
                        if let Err(payload) = result {
                            if panic_in_recovery {
                                // Fault injection: die inside the recovery
                                // handler while holding the report cell, so
                                // shutdown must survive a poisoned cell AND
                                // a join error.
                                let _poisoner =
                                    report_cell.lock().unwrap_or_else(PoisonError::into_inner);
                                panic!("fault injection: recovery handler told to die");
                            }
                            let msg = panic_message(payload.as_ref());
                            let reason = format!("shard {shard_id} worker panicked: {msg}");
                            let leaked = q.poison(&reason);
                            // Record the panic before releasing the
                            // *queued* envelopes' slots below, so any
                            // waiter those releases wake already sees the
                            // cause in `worker_panics()`. (The in-progress
                            // batch was failed during unwinding by the
                            // batch guard, which necessarily precedes this
                            // handler — a waiter woken by that alone may
                            // observe the panic record slightly later.)
                            s.record_worker_panic(shard_id, msg);
                            let items = leaked
                                .into_iter()
                                .map(|env| (env.req.stream_id, env.enqueued))
                                .collect();
                            s.fail_requests(shard_id, items, &reason);
                        }
                    })
                    .expect("spawn shard worker"),
            );
            queues.push(queue);
        }
        ServeRuntime {
            router: StreamRouter::new(cfg.shards),
            queues,
            sink,
            registry,
            replay,
            pre,
            workers,
            reports,
            telemetry,
            retire,
            spans,
            pool,
            topology,
            plan,
            started: Instant::now(),
        }
    }

    /// Worker-thread count of the kernel pool the shard workers share (the
    /// dedicated pool if `pool_threads` was set, else the global pool).
    pub fn pool_threads(&self) -> usize {
        // Deliberately NOT `current_num_threads()`: that reports the
        // *caller's* installed pool, which is not the pool the shard
        // worker threads run kernels on.
        self.pool.as_ref().map_or_else(|| rayon::global_pool().num_threads(), |p| p.num_threads())
    }

    /// The stream-to-shard router in use.
    pub fn router(&self) -> &StreamRouter {
        &self.router
    }

    /// The model registry fronting this runtime's versioned model slot:
    /// version metadata, publish/rollback, and the swap counters. The
    /// shadow retrainer promotes through this; operators can too.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The active model version (slot epoch; starts at 1, bumps on every
    /// hot-swap including rollbacks).
    pub fn model_version(&self) -> u64 {
        self.registry.active_version()
    }

    /// Hot-swap the serving model with **zero downtime**: validates the
    /// candidate against the runtime's preprocessing dimensions, then
    /// publishes it as a new version. Every shard worker adopts it at its
    /// next batch boundary — in-flight batches finish on the version they
    /// adopted, no request is dropped or answered by a torn model, and
    /// under NUMA placement each node re-clones its first-touch replica
    /// on first adoption. Returns the new version id, or an error (and no
    /// state change at all) on a dimension mismatch.
    pub fn swap_model(&self, model: Arc<TabularModel>, provenance: &str) -> Result<u64, String> {
        // Same dimension contract `start` asserts — but a hot-swap comes
        // from a live retraining loop, so refuse instead of panicking.
        if model.config.seq_len != self.pre.seq_len {
            return Err(format!(
                "candidate seq_len {} != serving seq_len {}",
                model.config.seq_len, self.pre.seq_len
            ));
        }
        if model.config.input_dim != self.pre.input_dim() {
            return Err(format!(
                "candidate input_dim {} != serving input_dim {}",
                model.config.input_dim,
                self.pre.input_dim()
            ));
        }
        if model.config.output_dim != self.pre.output_dim() {
            return Err(format!(
                "candidate output_dim {} != serving output_dim {}",
                model.config.output_dim,
                self.pre.output_dim()
            ));
        }
        Ok(self.registry.publish(model, provenance, None, None))
    }

    /// The live-traffic replay buffer feeding the shadow retrainer
    /// (`None` unless [`ServeConfig::replay_capacity`] > 0).
    pub fn replay(&self) -> Option<&Arc<ReplaySampler>> {
        self.replay.as_ref()
    }

    /// The dedicated kernel pool, when `pool_threads` was set — hand this
    /// to [`crate::ShadowTrainer::spawn`] so background retraining steals
    /// work alongside the serving kernels instead of spawning its own
    /// threads. `None` means the process-global pool is in use.
    pub fn kernel_pool(&self) -> Option<Arc<rayon::ThreadPool>> {
        self.pool.clone()
    }

    /// The preprocessing configuration the runtime serves with (the
    /// dimension contract for hot-swap candidates and the config a
    /// shadow trainer must be built with).
    pub fn preprocess(&self) -> &PreprocessConfig {
        &self.pre
    }

    /// The NUMA topology discovered at startup (the single-node fallback
    /// on hosts without sysfs topology) — observability for operators and
    /// benches.
    pub fn topology(&self) -> &NumaTopology {
        &self.topology
    }

    /// Node id each shard worker was assigned to (`None` = unplaced).
    /// All `None` when [`ServeConfig::placement`] is `Disabled`.
    pub fn per_shard_node(&self) -> &[Option<usize>] {
        &self.plan
    }

    /// Number of shard workers.
    pub fn num_shards(&self) -> usize {
        self.queues.len()
    }

    /// Submit one access; the response arrives via [`Self::drain_completed`].
    ///
    /// If the target shard's worker has died, the request is answered
    /// immediately with a failure response carrying the worker's panic
    /// message — it is never silently dropped or left hanging.
    pub fn submit(&self, req: PrefetchRequest) {
        self.sink.lock().in_flight += 1;
        let shard = self.router.shard_of(req.stream_id);
        if let Err((rejected, reason)) =
            self.queues[shard].push(Envelope { req, enqueued: Instant::now() })
        {
            self.fail_rejected(shard, rejected, &reason);
        }
    }

    /// Submit one access **without ever blocking**: a full bounded shard
    /// queue comes back as [`SubmitRejected::QueueFull`] with the queue
    /// depth, and the request is *not* accounted — no response will be
    /// delivered for it, the caller still owns it (the network front-end
    /// answers the client with a NACK frame carrying the depth).
    ///
    /// Every other path behaves like [`Self::submit`]: an accepted
    /// request gets exactly one response via [`Self::drain_completed`],
    /// and a submit to a dead/shut-down shard is answered immediately
    /// with a failure response (also `Ok` here — a response IS coming).
    pub fn try_submit(&self, req: PrefetchRequest) -> Result<(), SubmitRejected> {
        self.sink.lock().in_flight += 1;
        let shard = self.router.shard_of(req.stream_id);
        match self.queues[shard].try_push(Envelope { req, enqueued: Instant::now() }) {
            Ok(()) => Ok(()),
            Err((_env, TryPushError::Full { depth })) => {
                // The request never entered the system: release the
                // in-flight slot it was pre-charged (and wake waiters —
                // this may have been the last outstanding slot).
                let mut state = self.sink.lock();
                debug_assert!(state.in_flight >= 1, "in-flight accounting underflow");
                state.in_flight -= 1;
                drop(state);
                self.sink.cv.notify_all();
                Err(SubmitRejected::QueueFull { shard, depth })
            }
            Err((env, TryPushError::Closed(reason))) => {
                // Dead/shut-down shard: same contract as `submit` — the
                // request is answered right now with a failure response.
                self.fail_rejected(shard, vec![env], &reason);
                Ok(())
            }
        }
    }

    /// Submit many accesses in one go.
    ///
    /// Routes the whole batch first, then takes each shard queue's lock
    /// once — roughly an order of magnitude cheaper per request than
    /// [`Self::submit`] in a tight producer loop. Per-stream order is
    /// preserved (grouping by shard keeps each stream's requests in
    /// submission order, since a stream maps to exactly one shard).
    pub fn submit_all(&self, reqs: impl IntoIterator<Item = PrefetchRequest>) {
        let now = Instant::now();
        let mut per_shard: Vec<Vec<Envelope>> =
            (0..self.queues.len()).map(|_| Vec::new()).collect();
        let mut total = 0u64;
        for req in reqs {
            per_shard[self.router.shard_of(req.stream_id)].push(Envelope { req, enqueued: now });
            total += 1;
        }
        if total == 0 {
            return;
        }
        self.sink.lock().in_flight += total;
        for (shard, (queue, batch)) in self.queues.iter().zip(per_shard).enumerate() {
            if !batch.is_empty() {
                if let Err((rejected, reason)) = queue.push_all(batch) {
                    self.fail_rejected(shard, rejected, &reason);
                }
            }
        }
    }

    /// Turn envelopes a dead/shut-down queue bounced back into immediate
    /// failure responses (releasing their in-flight slots).
    fn fail_rejected(&self, shard: usize, rejected: Vec<Envelope>, reason: &str) {
        let items = rejected.into_iter().map(|env| (env.req.stream_id, env.enqueued)).collect();
        self.sink.fail_requests(shard, items, reason);
    }

    /// Requests submitted but not yet answered.
    pub fn outstanding(&self) -> u64 {
        self.sink.lock().in_flight
    }

    /// Worker panics observed so far, as `(shard_id, panic message)`.
    /// Non-empty means one or more shards are dead: their streams receive
    /// immediate failure responses until the runtime is restarted.
    pub fn worker_panics(&self) -> Vec<(usize, String)> {
        self.sink.lock().worker_panics.clone()
    }

    /// Block until fewer than `limit` requests are outstanding (producer
    /// back-pressure for open-loop load generators). Never hangs on a
    /// dead shard: panicked workers fail their requests, which releases
    /// the in-flight slots this waits on.
    pub fn wait_below(&self, limit: u64) {
        let mut state = self.sink.lock();
        while state.in_flight >= limit.max(1) {
            state = self.sink.cv.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Take every response completed so far (normal and failure responses;
    /// see [`PrefetchResponse::error`]).
    pub fn drain_completed(&self) -> Vec<PrefetchResponse> {
        std::mem::take(&mut self.sink.lock().completed)
    }

    /// Block until at least one response is available (or `timeout`
    /// elapses), then take everything completed so far. Returns an empty
    /// vector on timeout. This is the response-dispatcher primitive the
    /// network front-end pumps — it wakes on every completed batch and on
    /// failure deliveries, without spinning on [`Self::drain_completed`].
    pub fn take_completed_timeout(&self, timeout: std::time::Duration) -> Vec<PrefetchResponse> {
        let mut out = Vec::new();
        self.take_completed_timeout_into(timeout, &mut out);
        out
    }

    /// [`Self::take_completed_timeout`], but draining into a
    /// caller-owned buffer (cleared first) so a dispatcher pumping this
    /// in a loop reuses one allocation instead of taking a fresh `Vec`
    /// per tick. On timeout `out` is left empty.
    pub fn take_completed_timeout_into(
        &self,
        timeout: std::time::Duration,
        out: &mut Vec<PrefetchResponse>,
    ) {
        out.clear();
        let deadline = Instant::now() + timeout;
        let mut state = self.sink.lock();
        while state.completed.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, _timed_out) = self
                .sink
                .cv
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
        }
        // Swap the sink's filled buffer for the caller's (empty) one:
        // the sink keeps an allocation to refill, the caller gets the
        // responses, and neither side allocates in steady state.
        std::mem::swap(&mut state.completed, out);
    }

    /// Retire every resident stream namespaced under `prefix` (upper 32
    /// bits of the stream id) from all shards' stream maps — the
    /// dead-connection cleanup hook for front-ends that namespace wire
    /// stream ids as `conn_id << 32 | stream`. Without it, a dead
    /// connection's streams stay resident until LRU cap churn evicts
    /// them, displacing live streams in the meantime.
    ///
    /// Asynchronous and non-blocking: each shard's worker applies the
    /// retirement just before it serves its next batch, so the freed
    /// residency is visible to the traffic that would have displaced it.
    /// In-flight requests for retired streams are unaffected (they were
    /// drained before the retirement applies, or they re-enter cold —
    /// the same contract as an LRU eviction).
    pub fn retire_streams_with_prefix(&self, prefix: u32) {
        for cell in &self.retire {
            cell.push(prefix);
        }
    }

    /// Block until every submitted request has been answered. Never hangs
    /// on a dead shard (see [`Self::wait_below`]).
    pub fn wait_idle(&self) {
        let mut state = self.sink.lock();
        while state.in_flight > 0 {
            state = self.sink.cv.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// A consistent statistics snapshot of the **running** runtime — no
    /// shutdown required. This is the same aggregation that backs
    /// [`Self::shutdown`] (one function, two call sites), so live and
    /// final numbers can never drift apart.
    ///
    /// Consistency guarantees, even under full submission load and across
    /// worker deaths:
    /// * counters (`requests`, `predictions`, `batches`, `failed`,
    ///   `stream_evictions`) are monotone from one snapshot to the next;
    /// * `predictions <= requests` and `latency.count() == requests` hold
    ///   in every snapshot — per-shard numbers are committed whole-batch
    ///   under the report cell's lock, never mid-batch.
    pub fn stats_snapshot(&self) -> ServeStats {
        self.collect_stats()
    }

    /// The most recently served requests' per-stage lifecycle spans,
    /// oldest first (bounded by [`ServeConfig::span_capacity`]). Empty
    /// unless the crate is built with the `telemetry` feature.
    pub fn recent_spans(&self) -> Vec<SpanRecord> {
        self.spans.recent()
    }

    /// Render the live Prometheus-style plaintext exposition: the
    /// runtime's own metrics ([`crate::metrics::render_exposition`] over
    /// [`Self::stats_snapshot`]) followed by the process-global registry
    /// (e.g. `dart-pq` kernel profiling counters in `telemetry` builds).
    pub fn render_metrics(&self) -> String {
        let mut out = crate::metrics::render_exposition(&self.stats_snapshot());
        out.push_str(&dart_telemetry::global().render());
        out
    }

    /// The single aggregation path behind both [`Self::stats_snapshot`]
    /// and [`Self::shutdown`]: fold every shard's report cell (committed
    /// whole-batch, so each clone is internally consistent — a poisoned
    /// cell still holds consistent data), the lock-free lifecycle cells,
    /// and the sink state into one [`ServeStats`].
    fn collect_stats(&self) -> ServeStats {
        let mut stats = ServeStats::default();
        let mut latency = Histogram::new();
        for (cell, telem) in self.reports.iter().zip(&self.telemetry) {
            let report = cell.lock().unwrap_or_else(PoisonError::into_inner).clone();
            stats.requests += report.requests;
            stats.predictions += report.predictions;
            stats.batches += report.batches;
            stats.max_batch = stats.max_batch.max(report.max_batch);
            stats.per_shard_requests.push(report.requests);
            stats.per_shard_pinned.push(report.pinned);
            stats.per_shard_streams.push(report.resident_streams);
            stats.stream_evictions += report.stream_evictions;
            stats.stream_retirements += report.stream_retirements;
            latency.merge(&report.latency);
            stats.batch_sizes.merge(&telem.batch_size.snapshot());
            stats.stage_queue_wait.merge(&telem.queue_wait.snapshot());
            stats.stage_coalesce.merge(&telem.coalesce.snapshot());
            stats.stage_kernel.merge(&telem.kernel.snapshot());
            stats.stage_sink.merge(&telem.sink.snapshot());
        }
        for q in &self.queues {
            stats.queue_depth += q.depth();
        }
        let sink_state = self.sink.lock();
        stats.failed = sink_state.failed;
        stats.in_flight = sink_state.in_flight;
        stats.worker_panics = sink_state.worker_panics.clone();
        drop(sink_state);
        stats.per_shard_node = self.plan.clone();
        // Versioned-model observability: the active version, the swap /
        // rollback counters, and how far each shard's worker has adopted.
        stats.model_version = self.registry.active_version();
        let counters = self.registry.counters();
        stats.model_swaps = counters.swaps;
        stats.model_rollbacks = counters.rollbacks;
        stats.per_shard_model_version = self.registry.slot().adopted_epochs();
        stats.p50_latency_ns = latency.percentile(0.50);
        stats.p99_latency_ns = latency.percentile(0.99);
        stats.mean_latency_ns = latency.mean();
        stats.latency = latency;
        stats.uptime_ns = self.started.elapsed().as_nanos() as u64;
        stats
    }

    /// Stop the workers (after finishing all queued work) and return
    /// aggregate statistics — the same aggregation `stats_snapshot`
    /// serves live. Safe to call after a worker panic: the panic was
    /// already caught and converted into failure responses, and the
    /// message is surfaced in [`ServeStats::worker_panics`]. Even a join
    /// error — the recovery handler *itself* died — is recorded there
    /// instead of being discarded, and the shard's served statistics still
    /// come through: workers commit them per batch into a cell the runtime
    /// holds, so neither the second panic nor the (possibly poisoned) cell
    /// lock loses them.
    pub fn shutdown(mut self) -> ServeStats {
        for q in &self.queues {
            q.shutdown();
        }
        let mut join_panics: Vec<(usize, String)> = Vec::new();
        for (shard_id, handle) in std::mem::take(&mut self.workers).into_iter().enumerate() {
            if let Err(payload) = handle.join() {
                // The worker's own panic handler died (its panic was
                // caught; this one escaped). The shard's stats below are
                // intact — committed per batch — but the panic itself must
                // not vanish with the thread.
                let msg = panic_message(payload.as_ref());
                join_panics
                    .push((shard_id, format!("shard worker died in its panic handler: {msg}")));
            }
        }
        let mut stats = self.collect_stats();
        stats.worker_panics.extend(join_panics);
        stats
    }
}

/// Best-effort extraction of a panic payload's message (the two payload
/// types `panic!` produces, with a fallback for exotic ones).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.shards >= 1);
        assert!(cfg.max_batch >= 1);
        assert!((0.0..=1.0).contains(&cfg.threshold));
        assert!(cfg.span_capacity > 0, "span ring should be on by default (cheap, bounded)");
    }

    #[test]
    fn default_stats_are_empty_and_consistent() {
        let stats = ServeStats::default();
        assert_eq!(stats.mean_batch(), 0.0);
        assert_eq!(stats.latency.count(), stats.requests);
        assert_eq!(stats.batch_sizes.count(), stats.batches);
        assert_eq!(stats.stage_queue_wait.count(), 0);
    }
}
