//! Per-subspace quantizers: prototype learning (`p_c`, Eq. 5) plus vector
//! encoding (`g_c`, Eq. 7).
//!
//! Two encoders are provided:
//!
//! * [`EncoderKind::Argmin`] — exact nearest-prototype search over k-means
//!   centroids, `O(K * V)` per encode. The accuracy upper bound.
//! * [`EncoderKind::HashTree`] — a MADDNESS-style balanced binary decision
//!   tree (`log2(K)` comparisons per encode). This is the paper's
//!   "locality sensitive hashing \[24\]" encoder and the one its latency
//!   model (`L_g = log K`) assumes. Prototypes are the leaf-bucket means.

use dart_nn::matrix::Matrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::arena::CodebookArena;
use crate::kmeans::{kmeans, nearest_centroid, nearest_centroid_flat, KMeansConfig};
use crate::simd::{self, SimdOps};

/// Rows per tile of the tiled batch encoder: a tile of input rows stays
/// L1-resident while the per-subspace codebooks (or hash trees) are swept
/// over it, and tiles are the unit of rayon parallelism.
pub const ENCODE_TILE_ROWS: usize = 64;

/// Which encoding function `g_c` a quantizer uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncoderKind {
    /// Exact arg-min over k-means prototypes (`O(K*V)` per query).
    Argmin,
    /// Balanced hash tree with `log2(K)` scalar comparisons per query.
    HashTree,
}

/// Balanced binary decision tree over one subspace.
///
/// Level `l` holds one split dimension and `2^l` thresholds (one per node).
/// A query walks `depth` levels; the leaf index is the bucket.
///
/// Thresholds are stored as a single flat heap-ordered array (level `l`,
/// node `idx` at `(1 << l) - 1 + idx`) so the whole tree is one contiguous
/// allocation — an `encode` touches one cache-resident array instead of
/// chasing a `Vec<Vec<f32>>` across the heap.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HashTree {
    split_dims: Vec<usize>,
    thresholds: Vec<f32>,
    k: usize,
}

impl HashTree {
    /// Tree depth (`log2 K`, rounded up).
    pub fn depth(&self) -> usize {
        self.split_dims.len()
    }

    /// Number of buckets `K`.
    pub fn num_buckets(&self) -> usize {
        self.k
    }

    /// Route a subvector to its bucket.
    #[inline]
    pub fn encode(&self, sub: &[f32]) -> usize {
        let mut idx = 0usize;
        for (level, &dim) in self.split_dims.iter().enumerate() {
            let go_right = sub[dim] > self.thresholds[(1 << level) - 1 + idx];
            idx = 2 * idx + usize::from(go_right);
        }
        if idx >= self.k {
            idx % self.k
        } else {
            idx
        }
    }

    /// Fit a tree on the rows of `data` (`n x v`).
    ///
    /// At each level the split dimension is the one with the largest summed
    /// within-bucket variance; each node splits at its bucket median.
    fn fit(data: &Matrix, k: usize) -> HashTree {
        assert!(k >= 1);
        let depth = usize::max(1, (k as f64).log2().ceil() as usize);
        let n = data.rows();
        let v = data.cols();
        let mut buckets: Vec<usize> = vec![0; n]; // current node of each point
        let mut split_dims = Vec::with_capacity(depth);
        // Flat heap order: level l's thresholds land at (1<<l)-1 onward.
        let mut thresholds = Vec::with_capacity((1usize << depth) - 1);

        for level in 0..depth {
            let num_nodes = 1usize << level;
            // Pick the dimension with max total within-node variance.
            let mut best_dim = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for d in 0..v {
                let mut sums = vec![0.0f64; num_nodes];
                let mut sqs = vec![0.0f64; num_nodes];
                let mut counts = vec![0usize; num_nodes];
                #[allow(clippy::needless_range_loop)] // i indexes data rows and buckets together
                for i in 0..n {
                    let b = buckets[i];
                    let val = data.get(i, d) as f64;
                    sums[b] += val;
                    sqs[b] += val * val;
                    counts[b] += 1;
                }
                let mut score = 0.0f64;
                for b in 0..num_nodes {
                    if counts[b] > 1 {
                        let mean = sums[b] / counts[b] as f64;
                        score += sqs[b] - counts[b] as f64 * mean * mean;
                    }
                }
                if score > best_score {
                    best_score = score;
                    best_dim = d;
                }
            }

            // Median threshold per node.
            let mut node_vals: Vec<Vec<f32>> = vec![Vec::new(); num_nodes];
            for i in 0..n {
                node_vals[buckets[i]].push(data.get(i, best_dim));
            }
            let mut level_thresh = Vec::with_capacity(num_nodes);
            for vals in &mut node_vals {
                if vals.is_empty() {
                    level_thresh.push(0.0);
                } else {
                    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    let mid = vals.len() / 2;
                    // Midpoint between the halves generalizes better than the
                    // median value itself for queries between clusters.
                    let t = if mid == 0 { vals[0] } else { 0.5 * (vals[mid - 1] + vals[mid]) };
                    level_thresh.push(t);
                }
            }

            // Route points down one level.
            #[allow(clippy::needless_range_loop)] // i indexes data rows and buckets together
            for i in 0..n {
                let b = buckets[i];
                let right = data.get(i, best_dim) > level_thresh[b];
                buckets[i] = 2 * b + usize::from(right);
            }
            split_dims.push(best_dim);
            debug_assert_eq!(thresholds.len(), num_nodes - 1);
            thresholds.extend_from_slice(&level_thresh);
        }

        HashTree { split_dims, thresholds, k }
    }
}

/// The per-subspace encoder variant.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum Encoder {
    Argmin,
    HashTree(HashTree),
}

/// Prototypes + encoder for one subspace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Quantizer {
    /// Learned prototypes, `K x V` (`P^c_k` in the paper).
    pub prototypes: Matrix,
    encoder: Encoder,
}

impl Quantizer {
    /// Fit on subvectors (`n x v`).
    pub fn fit(data: &Matrix, k: usize, kind: EncoderKind, seed: u64) -> Quantizer {
        assert!(k >= 1, "K must be positive");
        match kind {
            EncoderKind::Argmin => {
                let res = kmeans(data, &KMeansConfig { k, seed, ..Default::default() });
                Quantizer { prototypes: res.centroids, encoder: Encoder::Argmin }
            }
            EncoderKind::HashTree => {
                let tree = HashTree::fit(data, k);
                // Prototypes = bucket means over the training data.
                let v = data.cols();
                let mut sums = Matrix::zeros(k, v);
                let mut counts = vec![0usize; k];
                for i in 0..data.rows() {
                    let b = tree.encode(data.row(i));
                    counts[b] += 1;
                    for (s, &x) in sums.row_mut(b).iter_mut().zip(data.row(i)) {
                        *s += x;
                    }
                }
                // Empty buckets fall back to the global mean.
                let global = data.mean_rows();
                #[allow(clippy::needless_range_loop)] // b indexes counts and sums rows in lockstep
                for b in 0..k {
                    if counts[b] > 0 {
                        let inv = 1.0 / counts[b] as f32;
                        for s in sums.row_mut(b) {
                            *s *= inv;
                        }
                    } else {
                        sums.row_mut(b).copy_from_slice(global.row(0));
                    }
                }
                Quantizer { prototypes: sums, encoder: Encoder::HashTree(tree) }
            }
        }
    }

    /// Number of prototypes `K`.
    pub fn num_protos(&self) -> usize {
        self.prototypes.rows()
    }

    /// Subspace dimensionality `V`.
    pub fn sub_dim(&self) -> usize {
        self.prototypes.cols()
    }

    /// Encode a subvector to its prototype index (`g_c`, Eq. 7).
    #[inline]
    pub fn encode(&self, sub: &[f32]) -> usize {
        debug_assert_eq!(sub.len(), self.sub_dim());
        match &self.encoder {
            Encoder::Argmin => nearest_centroid(sub, &self.prototypes).0,
            Encoder::HashTree(tree) => tree.encode(sub),
        }
    }

    /// The encoder kind in use.
    pub fn encoder_kind(&self) -> EncoderKind {
        match self.encoder {
            Encoder::Argmin => EncoderKind::Argmin,
            Encoder::HashTree(_) => EncoderKind::HashTree,
        }
    }
}

/// Split `dim` into `c` contiguous chunks whose sizes differ by at most one.
/// When `c > dim`, the subspace count is clamped to `dim`.
pub fn subspace_bounds(dim: usize, c: usize) -> Vec<(usize, usize)> {
    assert!(dim > 0, "dim must be positive");
    let c = c.clamp(1, dim);
    let base = dim / c;
    let extra = dim % c;
    let mut bounds = Vec::with_capacity(c);
    let mut start = 0;
    for i in 0..c {
        let len = base + usize::from(i < extra);
        bounds.push((start, start + len));
        start += len;
    }
    bounds
}

/// A product quantizer: one per-subspace encoder over each contiguous
/// chunk of a `dim`-dimensional vector space, with every subspace's
/// prototypes stored in one flat code-major [`CodebookArena`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProductQuantizer {
    dim: usize,
    bounds: Vec<(usize, usize)>,
    codebook: CodebookArena,
    encoders: Vec<Encoder>,
}

impl ProductQuantizer {
    /// Fit on the rows of `data` (`n x dim`), with `c` subspaces and `k`
    /// prototypes per subspace. Subspaces are fitted in parallel, then
    /// their prototypes are packed into the flat codebook arena.
    pub fn fit(data: &Matrix, c: usize, k: usize, kind: EncoderKind, seed: u64) -> Self {
        let dim = data.cols();
        let bounds = subspace_bounds(dim, c);
        let quantizers: Vec<Quantizer> = bounds
            .par_iter()
            .enumerate()
            .map(|(ci, &(lo, hi))| {
                let sub = data.slice_cols(lo, hi);
                Quantizer::fit(&sub, k, kind, seed.wrapping_add(ci as u64 * 0x9E37))
            })
            .collect();
        let (protos, encoders): (Vec<Matrix>, Vec<Encoder>) =
            quantizers.into_iter().map(|q| (q.prototypes, q.encoder)).unzip();
        let codebook = CodebookArena::from_prototype_matrices(&protos);
        ProductQuantizer { dim, bounds, codebook, encoders }
    }

    /// Full vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Effective number of subspaces `C` (clamped to `dim`).
    pub fn num_subspaces(&self) -> usize {
        self.bounds.len()
    }

    /// Prototypes per subspace `K`.
    pub fn num_protos(&self) -> usize {
        self.codebook.num_protos()
    }

    /// Subspace column ranges.
    pub fn bounds(&self) -> &[(usize, usize)] {
        &self.bounds
    }

    /// The flat code-major prototype arena.
    pub fn codebook(&self) -> &CodebookArena {
        &self.codebook
    }

    /// Prototype `k` of subspace `ci` (a slice into the flat arena).
    #[inline]
    pub fn proto(&self, ci: usize, k: usize) -> &[f32] {
        self.codebook.proto(ci, k)
    }

    /// Encode one subvector against subspace `ci`'s encoder (the scalar
    /// reference path — the batch encoder's SIMD-dispatched codes must
    /// always match this bit for bit).
    #[inline]
    pub fn encode_sub(&self, ci: usize, sub: &[f32]) -> usize {
        match &self.encoders[ci] {
            Encoder::Argmin => nearest_centroid_flat(sub, self.codebook.subspace(ci), sub.len()).0,
            Encoder::HashTree(tree) => tree.encode(sub),
        }
    }

    /// [`Self::encode_sub`] through a kernel table: the argmin distance
    /// scan over the codebook arena runs vectorized when `ops` carries
    /// SIMD kernels (the hash tree's `log2 K` comparisons have no width
    /// dimension to vectorize and always run scalar). Codes are identical
    /// to the scalar path for every table — SIMD distances are bit-exact,
    /// so the strict-`<` argmin picks the same prototype.
    #[inline]
    pub(crate) fn encode_sub_with(&self, ci: usize, sub: &[f32], ops: &SimdOps) -> usize {
        match &self.encoders[ci] {
            Encoder::Argmin => ops.nearest_flat(sub, self.codebook.subspace(ci), sub.len()).0,
            Encoder::HashTree(tree) => tree.encode(sub),
        }
    }

    /// Encode a full row into `C` prototype indices.
    pub fn encode_row(&self, row: &[f32]) -> Vec<usize> {
        debug_assert_eq!(row.len(), self.dim);
        self.bounds
            .iter()
            .enumerate()
            .map(|(ci, &(lo, hi))| self.encode_sub(ci, &row[lo..hi]))
            .collect()
    }

    /// Encode into a caller-provided buffer (hot path, avoids allocation).
    #[inline]
    pub fn encode_row_into(&self, row: &[f32], out: &mut [usize]) {
        self.encode_row_into_with(row, out, simd::scalar_ops());
    }

    /// [`Self::encode_row_into`] through a kernel table (the attention
    /// batch kernel's per-row encodes; codes are identical at every
    /// dispatch level, see [`Self::encode_sub_with`]).
    #[inline]
    pub(crate) fn encode_row_into_with(&self, row: &[f32], out: &mut [usize], ops: &SimdOps) {
        debug_assert_eq!(out.len(), self.bounds.len());
        for (ci, (slot, &(lo, hi))) in out.iter_mut().zip(&self.bounds).enumerate() {
            *slot = self.encode_sub_with(ci, &row[lo..hi], ops);
        }
    }

    /// Encode every row of `x` into `out` (`rows * C` codes, row-major:
    /// code of row `r`, subspace `c` lands at `out[r * C + c]`).
    ///
    /// Tiled: rows are processed in blocks of [`ENCODE_TILE_ROWS`]; within
    /// a tile the loop runs subspace-major so each subspace's codebook
    /// block (or hash tree) is swept across cache-resident input rows.
    /// Tiles are independent, so they run rayon-parallel; codes are
    /// identical to calling [`Self::encode_row_into`] per row. The argmin
    /// distance scans run through the process-wide SIMD dispatch
    /// ([`simd::ops`]) without changing any code.
    pub fn encode_batch_into(&self, x: &Matrix, out: &mut [usize]) {
        self.encode_batch_into_with(x, out, simd::ops());
    }

    /// [`Self::encode_batch_into`] pinned to the scalar kernel tiles — the
    /// reference path of the simd differential suites and benches.
    pub fn encode_batch_scalar_into(&self, x: &Matrix, out: &mut [usize]) {
        self.encode_batch_into_with(x, out, simd::scalar_ops());
    }

    pub(crate) fn encode_batch_into_with(&self, x: &Matrix, out: &mut [usize], ops: &SimdOps) {
        let c = self.bounds.len();
        assert_eq!(x.cols(), self.dim, "encode dim mismatch");
        assert_eq!(out.len(), x.rows() * c, "code buffer size mismatch");
        crate::profile::profile_kernel("encode_batch", x.rows() as u64);
        out.par_chunks_mut(ENCODE_TILE_ROWS * c).enumerate().for_each(|(tile, chunk)| {
            let r0 = tile * ENCODE_TILE_ROWS;
            let rows = chunk.len() / c;
            for (ci, &(lo, hi)) in self.bounds.iter().enumerate() {
                for rr in 0..rows {
                    chunk[rr * c + ci] = self.encode_sub_with(ci, &x.row(r0 + rr)[lo..hi], ops);
                }
            }
        });
    }

    /// Reconstruct an approximation of a row from its codes (testing aid).
    pub fn reconstruct(&self, codes: &[usize]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        for ((ci, &(lo, hi)), &code) in self.bounds.iter().enumerate().zip(codes) {
            out[lo..hi].copy_from_slice(self.codebook.proto(ci, code));
        }
        out
    }

    /// Mean squared reconstruction error over the rows of `data`.
    pub fn reconstruction_mse(&self, data: &Matrix) -> f64 {
        let mut total = 0.0f64;
        for i in 0..data.rows() {
            let codes = self.encode_row(data.row(i));
            let rec = self.reconstruct(&codes);
            total +=
                rec.iter().zip(data.row(i)).map(|(a, b)| ((a - b) * (a - b)) as f64).sum::<f64>();
        }
        total / (data.rows() * self.dim) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_nn::init::InitRng;

    fn sample_data(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = InitRng::new(seed);
        // Two latent clusters per dimension pair for structure.
        Matrix::from_fn(n, dim, |r, _| {
            let base = if r % 2 == 0 { -2.0 } else { 2.0 };
            base + rng.normal() * 0.3
        })
    }

    #[test]
    fn subspace_bounds_cover_dim() {
        for dim in [1, 5, 8, 13] {
            for c in [1, 2, 3, 8, 20] {
                let b = subspace_bounds(dim, c);
                assert_eq!(b[0].0, 0);
                assert_eq!(b.last().unwrap().1, dim);
                for w in b.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "gaps in bounds");
                }
                let sizes: Vec<usize> = b.iter().map(|&(l, h)| h - l).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "uneven split {sizes:?}");
            }
        }
    }

    #[test]
    fn argmin_encode_returns_nearest() {
        let data = sample_data(100, 4, 3);
        let q = Quantizer::fit(&data, 4, EncoderKind::Argmin, 7);
        for i in 0..20 {
            let code = q.encode(data.row(i));
            let (nearest, _) = nearest_centroid(data.row(i), &q.prototypes);
            assert_eq!(code, nearest);
        }
    }

    #[test]
    fn hash_tree_bucket_count_and_depth() {
        let data = sample_data(200, 4, 5);
        let q = Quantizer::fit(&data, 16, EncoderKind::HashTree, 7);
        assert_eq!(q.num_protos(), 16);
        if let Encoder::HashTree(t) = &q.encoder {
            assert_eq!(t.depth(), 4);
        } else {
            panic!("expected hash tree");
        }
        for i in 0..data.rows() {
            assert!(q.encode(data.row(i)) < 16);
        }
    }

    #[test]
    fn hash_tree_separates_clusters() {
        // Two well-separated clusters must land in different buckets.
        let mut data = Matrix::zeros(100, 2);
        for i in 0..50 {
            data.set(i, 0, -5.0 + (i as f32) * 0.01);
            data.set(i, 1, -5.0);
        }
        for i in 50..100 {
            data.set(i, 0, 5.0 + (i as f32) * 0.01);
            data.set(i, 1, 5.0);
        }
        let q = Quantizer::fit(&data, 2, EncoderKind::HashTree, 1);
        let a = q.encode(&[-5.0, -5.0]);
        let b = q.encode(&[5.0, 5.0]);
        assert_ne!(a, b);
    }

    #[test]
    fn product_quantizer_roundtrip_shapes() {
        let data = sample_data(120, 8, 9);
        let pq = ProductQuantizer::fit(&data, 4, 8, EncoderKind::Argmin, 11);
        assert_eq!(pq.num_subspaces(), 4);
        assert_eq!(pq.num_protos(), 8);
        let codes = pq.encode_row(data.row(0));
        assert_eq!(codes.len(), 4);
        assert_eq!(pq.reconstruct(&codes).len(), 8);
    }

    #[test]
    fn more_prototypes_reduce_reconstruction_error() {
        let data = sample_data(300, 8, 13);
        let lo = ProductQuantizer::fit(&data, 2, 2, EncoderKind::Argmin, 1);
        let hi = ProductQuantizer::fit(&data, 2, 32, EncoderKind::Argmin, 1);
        assert!(
            hi.reconstruction_mse(&data) < lo.reconstruction_mse(&data),
            "more prototypes should reconstruct better"
        );
    }

    #[test]
    fn clamps_subspaces_to_dim() {
        let data = sample_data(50, 3, 17);
        let pq = ProductQuantizer::fit(&data, 8, 4, EncoderKind::Argmin, 1);
        assert_eq!(pq.num_subspaces(), 3);
    }

    #[test]
    fn encode_row_into_matches_encode_row() {
        let data = sample_data(60, 6, 19);
        let pq = ProductQuantizer::fit(&data, 3, 4, EncoderKind::HashTree, 23);
        let mut buf = vec![0usize; 3];
        for i in 0..10 {
            pq.encode_row_into(data.row(i), &mut buf);
            assert_eq!(buf, pq.encode_row(data.row(i)));
        }
    }

    #[test]
    fn argmin_beats_or_matches_hash_tree_on_reconstruction() {
        let data = sample_data(300, 8, 29);
        let exact = ProductQuantizer::fit(&data, 2, 16, EncoderKind::Argmin, 1);
        let tree = ProductQuantizer::fit(&data, 2, 16, EncoderKind::HashTree, 1);
        // Argmin over k-means centroids is the accuracy upper bound; allow a
        // small tolerance because the tree trains its own prototypes.
        assert!(exact.reconstruction_mse(&data) <= tree.reconstruction_mse(&data) * 1.5);
    }
}
