//! End-to-end tests of the sharded serving runtime against a real (tiny)
//! tabularized model: completeness, ordering, routing, serial equivalence,
//! and a multi-threaded submission smoke test.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use dart_core::config::TabularConfig;
use dart_core::tabularize::tabularize;
use dart_core::TabularModel;
use dart_nn::init::InitRng;
use dart_nn::matrix::Matrix;
use dart_nn::model::{AccessPredictor, ModelConfig};
use dart_serve::{generate_requests, LoadGenConfig, PrefetchRequest, ServeConfig, ServeRuntime};
use dart_trace::PreprocessConfig;

/// A tiny tabularized model + preprocessing pair (fast to fit).
fn tiny_setup() -> (Arc<TabularModel>, PreprocessConfig) {
    let pre = PreprocessConfig {
        seq_len: 4,
        addr_segments: 3,
        seg_bits: 4,
        pc_segments: 1,
        delta_range: 4,
        lookforward: 4,
    };
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 8,
        heads: 2,
        layers: 1,
        ffn_dim: 16,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let student = AccessPredictor::new(cfg, 3).unwrap();
    let mut rng = InitRng::new(9);
    let x = Matrix::from_fn(40 * 4, pre.input_dim(), |_, _| rng.next_f32());
    let tab_cfg = TabularConfig { k: 8, c: 2, fine_tune_epochs: 0, ..Default::default() };
    let (model, _) = tabularize(&student, &x, &tab_cfg);
    (Arc::new(model), pre)
}

fn serve_cfg(shards: usize) -> ServeConfig {
    ServeConfig { shards, max_batch: 16, threshold: 0.0, max_degree: 4, pool_threads: None }
}

#[test]
fn every_request_gets_exactly_one_response() {
    let (model, pre) = tiny_setup();
    let runtime = ServeRuntime::start(model, pre, serve_cfg(2));
    let reqs = generate_requests(&LoadGenConfig { streams: 8, accesses_per_stream: 20, seed: 1 });
    let total = reqs.len();
    runtime.submit_all(reqs);
    runtime.wait_idle();
    let responses = runtime.drain_completed();
    assert_eq!(responses.len(), total);
    let stats = runtime.shutdown();
    assert_eq!(stats.requests as usize, total);
    // threshold 0.0: every warm request must emit prefetches.
    // streams warm after seq_len accesses: 8 * (20 - 3) warm requests.
    assert_eq!(stats.predictions, 8 * 17);
}

#[test]
fn per_stream_order_and_routing_hold() {
    let (model, pre) = tiny_setup();
    let runtime = ServeRuntime::start(model, pre, serve_cfg(4));
    let reqs = generate_requests(&LoadGenConfig { streams: 16, accesses_per_stream: 12, seed: 2 });
    runtime.submit_all(reqs);
    runtime.wait_idle();
    let responses = runtime.drain_completed();
    let router = *runtime.router();

    let mut seqs: HashMap<u64, Vec<u64>> = HashMap::new();
    for resp in &responses {
        assert_eq!(resp.shard, router.shard_of(resp.stream_id), "misrouted response");
        seqs.entry(resp.stream_id).or_default().push(resp.seq);
    }
    assert_eq!(seqs.len(), 16);
    for (stream, mut s) in seqs {
        s.sort_unstable();
        let expect: Vec<u64> = (0..12).collect();
        assert_eq!(s, expect, "stream {stream} has gaps or duplicates");
    }
    runtime.shutdown();
}

#[test]
fn warmup_responses_are_empty_then_predictions_flow() {
    let (model, pre) = tiny_setup();
    let runtime = ServeRuntime::start(model, pre, serve_cfg(1));
    // One stream, sequential blocks.
    for i in 0..10u64 {
        runtime.submit(PrefetchRequest { stream_id: 7, pc: 0x400, addr: (100 + i) << 6 });
    }
    runtime.wait_idle();
    let mut responses = runtime.drain_completed();
    responses.sort_by_key(|r| r.seq);
    assert_eq!(responses.len(), 10);
    for resp in &responses[..3] {
        assert!(resp.prefetch_blocks.is_empty(), "seq {} predicted while cold", resp.seq);
    }
    // threshold 0.0 with max_degree 4: every warm prediction emits (the
    // emission rule only drops non-positive targets, impossible here).
    for resp in &responses[3..] {
        assert!(!resp.prefetch_blocks.is_empty(), "seq {} emitted nothing", resp.seq);
    }
    runtime.shutdown();
}

/// The runtime's batched predictions must match a serial replay of the same
/// per-stream accesses through `TabularModel::forward_probs` one sample at
/// a time (the naive DartPrefetcher-style loop).
#[test]
fn batched_serving_matches_serial_replay() {
    let (model, pre) = tiny_setup();
    let reqs = generate_requests(&LoadGenConfig { streams: 6, accesses_per_stream: 15, seed: 5 });

    // Serial reference: replay per stream, predicting on every warm window.
    let mut reference: HashMap<(u64, u64), Vec<u64>> = HashMap::new();
    let mut histories: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    let mut seq_counters: HashMap<u64, u64> = HashMap::new();
    for req in &reqs {
        let hist = histories.entry(req.stream_id).or_default();
        hist.push((req.addr >> 6, req.pc));
        let seq = *seq_counters.entry(req.stream_id).and_modify(|s| *s += 1).or_insert(0);
        if hist.len() >= pre.seq_len {
            let window = &hist[hist.len() - pre.seq_len..];
            let mut feats = Matrix::zeros(pre.seq_len, pre.input_dim());
            for (t, &(block, pc)) in window.iter().enumerate() {
                pre.write_token_features(block, pc, feats.row_mut(t));
            }
            let probs = model.forward_probs(&feats);
            let anchor = window.last().unwrap().0;
            let mut candidates: Vec<(f32, usize)> =
                probs.row(0).iter().enumerate().map(|(bit, &p)| (p, bit)).collect();
            candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
            let blocks: Vec<u64> = candidates
                .into_iter()
                .take(4)
                .filter_map(|(_, bit)| {
                    let target = anchor as i64 + pre.bit_to_delta(bit);
                    (target > 0).then_some(target as u64)
                })
                .collect();
            reference.insert((req.stream_id, seq), blocks);
        }
    }

    let runtime = ServeRuntime::start(model, pre, serve_cfg(3));
    runtime.submit_all(reqs);
    runtime.wait_idle();
    for resp in runtime.drain_completed() {
        if let Some(expect) = reference.get(&(resp.stream_id, resp.seq)) {
            assert_eq!(
                &resp.prefetch_blocks, expect,
                "stream {} seq {} diverged from serial replay",
                resp.stream_id, resp.seq
            );
        } else {
            assert!(resp.prefetch_blocks.is_empty());
        }
    }
    runtime.shutdown();
}

/// Scratch-buffer-reuse hammer: the shard worker recycles its feature
/// staging buffers across batches, and responses must be identical whether
/// a shard drains requests one at a time (`max_batch = 1`, one buffer
/// cycle per request) or in large coalesced batches (`max_batch = 64`,
/// buffers resized and reused at every drain) — with heavily interleaved
/// stream IDs so consecutive rows of one staging buffer belong to
/// different streams. Also asserts no request is dropped either way.
#[test]
fn coalesced_and_single_drain_produce_identical_responses() {
    let (model, pre) = tiny_setup();
    // Interleave 24 streams round-robin so every coalesced batch mixes
    // streams and repeated same-stream requests land in one batch.
    let streams = 24u64;
    let accesses = 30u64;
    let mut reqs = Vec::new();
    for k in 0..accesses {
        for s in 0..streams {
            reqs.push(PrefetchRequest {
                stream_id: s,
                pc: 0x400 + s * 8,
                addr: (2_000 + s * 50_000 + k * (1 + s % 3)) << 6,
            });
        }
    }

    let run = |max_batch: usize| -> HashMap<(u64, u64), Vec<u64>> {
        let runtime = ServeRuntime::start(
            Arc::clone(&model),
            pre,
            ServeConfig { shards: 2, max_batch, threshold: 0.0, max_degree: 4, pool_threads: None },
        );
        runtime.submit_all(reqs.iter().copied());
        runtime.wait_idle();
        let responses = runtime.drain_completed();
        assert_eq!(
            responses.len(),
            (streams * accesses) as usize,
            "dropped requests at max_batch {max_batch}"
        );
        let stats = runtime.shutdown();
        assert_eq!(stats.requests, streams * accesses);
        responses.into_iter().map(|r| ((r.stream_id, r.seq), r.prefetch_blocks)).collect()
    };

    let single = run(1);
    let coalesced = run(64);
    assert_eq!(single.len(), coalesced.len());
    for (key, blocks) in &single {
        assert_eq!(
            coalesced.get(key),
            Some(blocks),
            "stream {} seq {} diverged between drain modes",
            key.0,
            key.1
        );
    }
}

/// Concurrency smoke test: hammer the runtime from 8 submitter threads and
/// verify no response is dropped, duplicated, or misrouted.
#[test]
fn eight_thread_hammer_drops_nothing() {
    hammer_with_config(serve_cfg(4));
}

/// Same hammer, but the shard workers' drains run their batched kernels on
/// a dedicated 4-thread work-stealing pool shared across shards: pooled
/// tile-parallel kernels under concurrent submission must still answer
/// every request exactly once.
#[test]
fn pooled_kernel_hammer_drops_nothing() {
    let mut cfg = serve_cfg(2);
    cfg.pool_threads = Some(4);
    hammer_with_config(cfg);
}

/// Degenerate pool: one kernel thread (the `DART_NUM_THREADS=1` shape —
/// kernels run inline on each shard thread). The runtime must behave
/// identically.
#[test]
fn single_thread_pool_hammer_drops_nothing() {
    let mut cfg = serve_cfg(2);
    cfg.pool_threads = Some(1);
    hammer_with_config(cfg);
}

fn hammer_with_config(cfg: ServeConfig) {
    let (model, pre) = tiny_setup();
    let expected_pool = cfg.pool_threads;
    let runtime = Arc::new(ServeRuntime::start(model, pre, cfg));
    if let Some(n) = expected_pool {
        assert_eq!(runtime.pool_threads(), n, "runtime must report its kernel pool size");
    }
    let threads = 8;
    let per_thread_streams = 8;
    let accesses = 40;

    thread::scope(|scope| {
        for tid in 0..threads {
            let rt = Arc::clone(&runtime);
            scope.spawn(move || {
                // Each thread owns disjoint stream ids.
                for k in 0..accesses {
                    for s in 0..per_thread_streams {
                        let stream_id = (tid * per_thread_streams + s) as u64;
                        rt.submit(PrefetchRequest {
                            stream_id,
                            pc: 0x400 + stream_id * 4,
                            addr: (1000 + stream_id * 10_000 + k as u64) << 6,
                        });
                    }
                }
            });
        }
    });

    runtime.wait_idle();
    let responses = runtime.drain_completed();
    let total = threads * per_thread_streams * accesses;
    assert_eq!(responses.len(), total, "dropped or duplicated responses");

    let router = *runtime.router();
    let mut per_stream: HashMap<u64, Vec<u64>> = HashMap::new();
    for resp in &responses {
        assert_eq!(resp.shard, router.shard_of(resp.stream_id), "misrouted");
        per_stream.entry(resp.stream_id).or_default().push(resp.seq);
    }
    assert_eq!(per_stream.len(), threads * per_thread_streams);
    for (stream, mut seqs) in per_stream {
        seqs.sort_unstable();
        let expect: Vec<u64> = (0..accesses as u64).collect();
        assert_eq!(seqs, expect, "stream {stream} sequence corrupted");
    }

    let stats = Arc::into_inner(runtime).unwrap().shutdown();
    assert_eq!(stats.requests as usize, total);
    assert_eq!(stats.per_shard_requests.iter().sum::<u64>() as usize, total);
    assert!(stats.p99_latency_ns >= stats.p50_latency_ns);
}
