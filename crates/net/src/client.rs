//! A small blocking client for the wire protocol — what the TCP load
//! generator and the integration tests speak to the server with.

use dart_telemetry::lockcheck::{named_mutex, Mutex};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};
use std::time::Duration;

use crate::wire::{
    encode_request, Frame, FrameDecoder, NackFrame, RequestFrame, ResponseFrame, REQUEST_LEN,
};

/// What the server answers with: exactly one of these per sent request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientEvent {
    /// Served (or failed by the runtime — see
    /// [`ResponseFrame::failed`]); the request was accepted.
    Response(ResponseFrame),
    /// Refused: the request never entered the system and will get no
    /// response. Retry is the client's decision.
    Nack(NackFrame),
}

/// One blocking connection to a [`crate::NetServer`]. Requests are
/// buffered locally; [`NetClient::flush`] (called implicitly by
/// [`NetClient::recv_event`]) pushes them out in one write.
pub struct NetClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    send_buf: Vec<u8>,
    read_buf: Vec<u8>,
}

impl NetClient {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            decoder: FrameDecoder::new(),
            send_buf: Vec::new(),
            read_buf: vec![0u8; 16 * 1024],
        })
    }

    /// Bound how long [`NetClient::recv_event`] blocks (`None` = forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Queue one request frame (buffered until the next flush).
    pub fn send_request(&mut self, stream: u32, pc: u64, addr: u64) {
        self.send_buf.reserve(REQUEST_LEN);
        encode_request(&RequestFrame { stream, pc, addr }, &mut self.send_buf);
    }

    /// Push every queued request into the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.send_buf.is_empty() {
            self.stream.write_all(&self.send_buf)?;
            self.send_buf.clear();
        }
        Ok(())
    }

    /// Flush, then block until the server's next answer arrives.
    ///
    /// Errors surface the socket failure (including read timeouts, as
    /// `WouldBlock`/`TimedOut` per platform); a server that violates the
    /// protocol (bad frame, or a request-kind frame) is `InvalidData`.
    pub fn recv_event(&mut self) -> io::Result<ClientEvent> {
        self.flush()?;
        loop {
            match self.decoder.next() {
                Ok(Some(Frame::Response(r))) => return Ok(ClientEvent::Response(r)),
                Ok(Some(Frame::Nack(n))) => return Ok(ClientEvent::Nack(n)),
                Ok(Some(Frame::Request(_))) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "server sent a request frame",
                    ));
                }
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            }
            let n = self.stream.read(&mut self.read_buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.decoder.extend(&self.read_buf[..n]);
        }
    }
}

/// A reusable pool of [`NetClient`] connections to one server address.
///
/// [`ClientPool::get`] hands out an idle pooled connection (or dials a
/// fresh one); dropping the returned [`PooledClient`] checks the
/// connection back in for the next caller. With server-side idle
/// timeouts and per-conn stream state, connection churn is no longer
/// free — reusing sockets keeps the server's accept/reap machinery and
/// the shard LRU maps out of the request path.
///
/// A connection that hit an error must NOT be returned to the pool (the
/// decoder may hold a torn frame): call [`PooledClient::discard`].
pub struct ClientPool {
    addr: String,
    idle: Mutex<Vec<NetClient>>,
    max_idle: usize,
    created: AtomicU64,
}

impl ClientPool {
    /// A pool dialing `addr`, keeping at most `max_idle` parked
    /// connections (excess check-ins just close the socket).
    pub fn new(addr: impl Into<String>, max_idle: usize) -> Arc<ClientPool> {
        Arc::new(ClientPool {
            addr: addr.into(),
            idle: named_mutex("net.client_idle", Vec::new()),
            max_idle,
            created: AtomicU64::new(0),
        })
    }

    /// Check out a connection: a parked one if available, else a fresh
    /// dial. The guard returns it on drop.
    pub fn get(self: &Arc<ClientPool>) -> io::Result<PooledClient> {
        let parked = self.idle.lock().unwrap_or_else(PoisonError::into_inner).pop();
        let client = match parked {
            Some(c) => c,
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                NetClient::connect(&self.addr)?
            }
        };
        Ok(PooledClient { pool: Arc::clone(self), client: Some(client), discard: false })
    }

    /// Connections dialed so far (reuse keeps this below checkout count).
    pub fn created(&self) -> u64 {
        self.created.load(Ordering::Relaxed)
    }

    /// Connections currently parked.
    pub fn idle(&self) -> usize {
        self.idle.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    fn check_in(&self, client: NetClient) {
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        if idle.len() < self.max_idle {
            idle.push(client);
        }
    }
}

/// A checked-out pool connection; derefs to [`NetClient`]. Returns to
/// the pool on drop unless [`PooledClient::discard`] was called.
pub struct PooledClient {
    pool: Arc<ClientPool>,
    client: Option<NetClient>,
    discard: bool,
}

impl PooledClient {
    /// Drop this connection on check-in instead of recycling it — call
    /// after any IO error, when the stream state is no longer trusted.
    pub fn discard(&mut self) {
        self.discard = true;
    }
}

impl Deref for PooledClient {
    type Target = NetClient;
    fn deref(&self) -> &NetClient {
        self.client.as_ref().expect("present until drop")
    }
}

impl DerefMut for PooledClient {
    fn deref_mut(&mut self) -> &mut NetClient {
        self.client.as_mut().expect("present until drop")
    }
}

impl Drop for PooledClient {
    fn drop(&mut self) {
        if let Some(client) = self.client.take() {
            if !self.discard {
                self.pool.check_in(client);
            }
        }
    }
}

/// Scrape `GET /metrics` from a server over plain HTTP and return the
/// body (the exposition document).
pub fn fetch_metrics(addr: impl ToSocketAddrs) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: dart\r\nConnection: close\r\n\r\n")?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "no HTTP header terminator"));
    };
    if !head.starts_with("HTTP/1.1 200") {
        let status = head.lines().next().unwrap_or("").to_string();
        return Err(io::Error::new(io::ErrorKind::InvalidData, format!("scrape failed: {status}")));
    }
    Ok(body.to_string())
}
