//! The Fig. 12–14 evaluation matrix: every prefetcher on every workload,
//! reporting accuracy, coverage, and IPC improvement over a no-prefetch
//! baseline.

use dart_core::configurator::model_latency;
use dart_core::distill::distill;
use dart_core::tabularize::tabularize;
use dart_core::DistillConfig;
use dart_nn::model::{AccessPredictor, SequenceModel};
use dart_nn::train::train_bce;
use dart_prefetch::{precompute_predictions, BestOffset, DartPrefetcher, Isb, NnBatchPrefetcher};
use dart_sim::{NullPrefetcher, Prefetcher, SimResult};
use dart_trace::spec_workloads;
use serde::{Deserialize, Serialize};

use crate::context::ExperimentContext;
use crate::zoo::{
    dart_variants, student_config, tabular_config, teacher_config, train_config, train_voyager,
};

/// Bitmap probability threshold for issuing a prefetch.
const PREDICT_THRESHOLD: f32 = 0.5;
/// Maximum prefetches per trigger (variable-degree cap).
const MAX_DEGREE: usize = 8;
/// TransFetch inference latency (paper Table IX).
const TRANSFETCH_LATENCY: u64 = 4_500;
/// Voyager inference latency (paper Table IX).
const VOYAGER_LATENCY: u64 = 27_700;

/// One (workload, prefetcher) cell of the Fig. 12–14 matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrefetchCell {
    /// Workload name.
    pub workload: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Prefetch accuracy (Fig. 12).
    pub accuracy: f64,
    /// Prefetch coverage (Fig. 13).
    pub coverage: f64,
    /// IPC improvement over no-prefetch, percent (Fig. 14).
    pub ipc_improvement_pct: f64,
    /// Prefetcher storage (bytes).
    pub storage_bytes: u64,
    /// Prefetcher latency (cycles).
    pub latency_cycles: u64,
}

/// Full evaluation output.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PrefetchMatrix {
    /// All cells, grouped by workload then prefetcher.
    pub cells: Vec<PrefetchCell>,
}

impl PrefetchMatrix {
    /// Prefetcher names in first-appearance order.
    pub fn prefetchers(&self) -> Vec<String> {
        let mut names = Vec::new();
        for c in &self.cells {
            if !names.contains(&c.prefetcher) {
                names.push(c.prefetcher.clone());
            }
        }
        names
    }

    /// Mean of a metric across workloads for one prefetcher.
    pub fn mean(&self, prefetcher: &str, metric: impl Fn(&PrefetchCell) -> f64) -> f64 {
        let vals: Vec<f64> =
            self.cells.iter().filter(|c| c.prefetcher == prefetcher).map(&metric).collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

/// How many workloads to evaluate (env `DART_WORKLOADS`, default all 8).
pub fn workload_limit() -> usize {
    std::env::var("DART_WORKLOADS").ok().and_then(|v| v.parse().ok()).unwrap_or(8).clamp(1, 8)
}

/// Run the full prefetcher-evaluation matrix.
///
/// Per workload: a no-prefetch baseline, BO, ISB, the three DART variants
/// (fresh student + tables each), TransFetch(-I) replaying the teacher's
/// predictions, and Voyager(-I) replaying a trained LSTM's predictions.
pub fn run_matrix(ctx: &ExperimentContext, verbose: bool) -> PrefetchMatrix {
    let mut matrix = PrefetchMatrix::default();
    let workloads: Vec<_> = spec_workloads().into_iter().take(workload_limit()).collect();

    for (wi, workload) in workloads.iter().enumerate() {
        if verbose {
            eprintln!("[prefetch-eval] {} ({}/{})", workload.name, wi + 1, workloads.len());
        }
        let prepared = ctx.prepare(workload, 0x5EC + wi as u64 * 101);
        let baseline = ctx.sim.run(&prepared.trace, &mut NullPrefetcher, false);

        let mut push = |name: &str, result: &SimResult, storage: u64, latency: u64| {
            matrix.cells.push(PrefetchCell {
                workload: workload.name.clone(),
                prefetcher: name.to_string(),
                accuracy: result.prefetch_accuracy(),
                coverage: result.prefetch_coverage(),
                ipc_improvement_pct: result.ipc_improvement_pct(&baseline),
                storage_bytes: storage,
                latency_cycles: latency,
            });
        };

        // Rule-based baselines.
        let mut bo = BestOffset::new();
        let r = ctx.sim.run(&prepared.trace, &mut bo, false);
        push("BO", &r, bo.storage_bytes(), bo.latency());

        let mut isb = Isb::new();
        let r = ctx.sim.run(&prepared.trace, &mut isb, false);
        push("ISB", &r, isb.storage_bytes(), isb.latency());

        // One teacher per workload, shared by every DART variant (each
        // variant distills its own student from it) and by TransFetch.
        let mut teacher =
            AccessPredictor::new(teacher_config(ctx.scale, &ctx.pre), 0x7EAC).expect("teacher");
        train_bce(&mut teacher, &prepared.train, &train_config(ctx.scale, 3, 8));

        for (name, variant) in dart_variants() {
            let dcfg =
                DistillConfig { train: train_config(ctx.scale, 5, 12), ..Default::default() };
            let (student, _) =
                distill(&mut teacher, student_config(&variant, &ctx.pre), &prepared.train, &dcfg);
            let (tabular, _) =
                tabularize(&student, &prepared.train.inputs, &tabular_config(ctx.scale, &variant));
            let latency = model_latency(&variant);
            let mut dart = DartPrefetcher::with_latency(
                name,
                tabular,
                ctx.pre,
                latency,
                PREDICT_THRESHOLD,
                MAX_DEGREE,
            );
            let r = ctx.sim.run(&prepared.trace, &mut dart, false);
            push(name, &r, dart.storage_bytes(), latency);
        }

        // TransFetch-like: the attention teacher with its Table IX latency,
        // plus the idealized zero-latency variant.
        let teacher_storage = (teacher.param_count() * 4) as u64;
        let preds = precompute_predictions(
            &mut teacher,
            &prepared.llc_trace,
            &ctx.pre,
            PREDICT_THRESHOLD,
            MAX_DEGREE,
        );
        for (name, latency) in [("TransFetch", TRANSFETCH_LATENCY), ("TransFetch-I", 0)] {
            let mut pf = NnBatchPrefetcher::new(name, latency, teacher_storage, preds.clone());
            let r = ctx.sim.run(&prepared.trace, &mut pf, false);
            push(name, &r, teacher_storage, latency);
        }

        // Voyager-like LSTM, practical and ideal.
        let mut voyager = train_voyager(&prepared, &ctx.pre, ctx.scale);
        let voyager_storage = (voyager.param_count() * 4) as u64;
        let preds = precompute_predictions(
            &mut voyager,
            &prepared.llc_trace,
            &ctx.pre,
            PREDICT_THRESHOLD,
            MAX_DEGREE,
        );
        for (name, latency) in [("Voyager", VOYAGER_LATENCY), ("Voyager-I", 0)] {
            let mut pf = NnBatchPrefetcher::new(name, latency, voyager_storage, preds.clone());
            let r = ctx.sim.run(&prepared.trace, &mut pf, false);
            push(name, &r, voyager_storage, latency);
        }
    }
    matrix
}

/// Path the evaluated matrix is cached at.
pub fn matrix_cache_path() -> std::path::PathBuf {
    std::path::PathBuf::from("target/experiments/prefetch_matrix.json")
}

/// Run the matrix, or reuse a previously saved one when `DART_REUSE=1`
/// (the Fig. 12/13/14 binaries share one expensive evaluation that way).
pub fn load_or_run(ctx: &ExperimentContext) -> PrefetchMatrix {
    let path = matrix_cache_path();
    if std::env::var("DART_REUSE").as_deref() == Ok("1") {
        if let Ok(data) = std::fs::read_to_string(&path) {
            if let Ok(matrix) = serde_json::from_str::<PrefetchMatrix>(&data) {
                eprintln!("[prefetch-eval] reusing cached matrix at {}", path.display());
                return matrix;
            }
        }
        eprintln!("[prefetch-eval] no usable cache; running fresh");
    }
    let matrix = run_matrix(ctx, true);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(&path, serde_json::to_string_pretty(&matrix).unwrap_or_default());
    matrix
}

/// Print one Fig. 12/13/14-style table from the matrix.
pub fn print_metric_table(
    title: &str,
    matrix: &PrefetchMatrix,
    paper_means: &[(&str, f64)],
    metric: impl Fn(&PrefetchCell) -> f64 + Copy,
    as_pct_points: bool,
) {
    use crate::report::{print_table, Table};
    let prefetchers = matrix.prefetchers();
    let mut headers: Vec<String> = vec!["Workload".into()];
    headers.extend(prefetchers.iter().cloned());
    let mut t = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());

    let mut workloads = Vec::new();
    for c in &matrix.cells {
        if !workloads.contains(&c.workload) {
            workloads.push(c.workload.clone());
        }
    }
    let fmt = |v: f64| {
        if as_pct_points {
            format!("{v:.1}%")
        } else {
            format!("{:.1}%", v * 100.0)
        }
    };
    for w in &workloads {
        let mut row = vec![w.clone()];
        for p in &prefetchers {
            let cell = matrix.cells.iter().find(|c| &c.workload == w && &c.prefetcher == p);
            row.push(cell.map_or("-".into(), |c| fmt(metric(c))));
        }
        t.row(row);
    }
    let mut mean_row = vec!["Mean (ours)".to_string()];
    for p in &prefetchers {
        mean_row.push(fmt(matrix.mean(p, metric)));
    }
    t.row(mean_row);
    let mut paper_row = vec!["Mean (paper)".to_string()];
    for p in &prefetchers {
        let v = paper_means.iter().find(|(name, _)| name == p).map(|&(_, v)| v);
        paper_row.push(v.map_or("-".into(), |v| {
            if as_pct_points {
                format!("{v:.1}%")
            } else {
                format!("{:.1}%", v * 100.0)
            }
        }));
    }
    t.row(paper_row);
    print_table(title, &t);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_means_are_per_prefetcher() {
        let mut m = PrefetchMatrix::default();
        for (w, acc) in [("a", 0.5), ("b", 0.7)] {
            m.cells.push(PrefetchCell {
                workload: w.into(),
                prefetcher: "BO".into(),
                accuracy: acc,
                coverage: 0.0,
                ipc_improvement_pct: 0.0,
                storage_bytes: 0,
                latency_cycles: 0,
            });
        }
        m.cells.push(PrefetchCell {
            workload: "a".into(),
            prefetcher: "ISB".into(),
            accuracy: 0.1,
            coverage: 0.0,
            ipc_improvement_pct: 0.0,
            storage_bytes: 0,
            latency_cycles: 0,
        });
        assert!((m.mean("BO", |c| c.accuracy) - 0.6).abs() < 1e-9);
        assert!((m.mean("ISB", |c| c.accuracy) - 0.1).abs() < 1e-9);
        assert_eq!(m.prefetchers(), vec!["BO".to_string(), "ISB".to_string()]);
        assert_eq!(m.mean("none", |c| c.accuracy), 0.0);
    }
}
