//! Multi-label knowledge distillation (paper §VI-D).
//!
//! The teacher's logits over the training set are computed once; the student
//! then minimizes `λ·KD + (1-λ)·BCE` where KD is the KL divergence between
//! T-Sigmoid-softened teacher and student outputs (Eq. 24–25).

use dart_nn::model::{AccessPredictor, ModelConfig};
use dart_nn::train::{predict_logits, train_bce, Dataset, EpochStats, TrainConfig};
use serde::{Deserialize, Serialize};

/// Distillation hyperparameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DistillConfig {
    /// Softening temperature `T` of the T-Sigmoid (Eq. 24).
    pub temperature: f32,
    /// Loss mixing weight `λ` (Eq. 25); 0 = pure BCE, 1 = pure KD.
    pub lambda: f32,
    /// Student training loop settings.
    #[serde(skip)]
    pub train: TrainConfig,
    /// Weight-init seed for the student.
    pub student_seed: u64,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            temperature: 2.0,
            lambda: 0.5,
            train: TrainConfig::default(),
            student_seed: 0x57D,
        }
    }
}

/// Distill `teacher` into a fresh student with architecture `student_cfg`.
///
/// Returns the trained student and its per-epoch losses.
pub fn distill(
    teacher: &mut AccessPredictor,
    student_cfg: ModelConfig,
    data: &Dataset,
    cfg: &DistillConfig,
) -> (AccessPredictor, Vec<EpochStats>) {
    let teacher_logits = predict_logits(teacher, data, cfg.train.batch_size.max(1));
    let mut student =
        AccessPredictor::new(student_cfg, cfg.student_seed).expect("valid student config");
    let history = dart_nn::train::train_distill(
        &mut student,
        data,
        &teacher_logits,
        cfg.temperature,
        cfg.lambda,
        &cfg.train,
    );
    (student, history)
}

/// Train a student of the same architecture *without* distillation
/// (the paper's "Stu w/o KD" baseline in Table VI).
pub fn train_student_without_kd(
    student_cfg: ModelConfig,
    data: &Dataset,
    train: &TrainConfig,
    seed: u64,
) -> (AccessPredictor, Vec<EpochStats>) {
    let mut student = AccessPredictor::new(student_cfg, seed).expect("valid student config");
    let history = train_bce(&mut student, data, train);
    (student, history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_nn::matrix::Matrix;
    use dart_nn::model::SequenceModel;
    use dart_nn::train::evaluate_f1;

    /// A learnable toy task: bit b is set iff the (normalized) mean of the
    /// sample's inputs exceeds a per-bit threshold.
    fn toy_dataset(n: usize, seq: usize, di: usize, dout: usize, seed: u64) -> Dataset {
        use dart_nn::init::InitRng;
        let mut rng = InitRng::new(seed);
        let mut inputs = Matrix::zeros(n * seq, di);
        let mut targets = Matrix::zeros(n, dout);
        for i in 0..n {
            let level = rng.next_f32();
            for t in 0..seq {
                for d in 0..di {
                    inputs.set(i * seq + t, d, level + rng.normal() * 0.05);
                }
            }
            for b in 0..dout {
                if level > (b + 1) as f32 / (dout + 1) as f32 {
                    targets.set(i, b, 1.0);
                }
            }
        }
        Dataset::new(inputs, targets, seq)
    }

    fn small_teacher_cfg() -> ModelConfig {
        ModelConfig {
            input_dim: 4,
            dim: 16,
            heads: 2,
            layers: 2,
            ffn_dim: 32,
            output_dim: 6,
            seq_len: 4,
        }
    }

    fn small_student_cfg() -> ModelConfig {
        ModelConfig { dim: 8, layers: 1, ffn_dim: 16, ..small_teacher_cfg() }
    }

    #[test]
    fn distilled_student_learns_task() {
        let data = toy_dataset(256, 4, 4, 6, 11);
        let (train, test) = data.split(0.8);

        let mut teacher = AccessPredictor::new(small_teacher_cfg(), 1).unwrap();
        let tcfg = TrainConfig { epochs: 20, batch_size: 32, ..Default::default() };
        train_bce(&mut teacher, &train, &tcfg);
        let teacher_f1 = evaluate_f1(&mut teacher, &test, 64);
        assert!(teacher_f1 > 0.8, "teacher failed to learn: F1 {teacher_f1}");

        let dcfg = DistillConfig {
            train: TrainConfig { epochs: 20, batch_size: 32, ..Default::default() },
            ..Default::default()
        };
        let (mut student, history) = distill(&mut teacher, small_student_cfg(), &train, &dcfg);
        let student_f1 = evaluate_f1(&mut student, &test, 64);
        assert!(student_f1 > 0.7, "student F1 {student_f1}");
        assert!(history.last().unwrap().loss < history.first().unwrap().loss);
    }

    #[test]
    fn lambda_zero_is_pure_bce() {
        // With lambda = 0 distillation reduces to plain supervised training,
        // so the teacher is irrelevant: two different teachers must produce
        // identical students (same seeds).
        let data = toy_dataset(64, 4, 4, 6, 13);
        let mut t1 = AccessPredictor::new(small_teacher_cfg(), 1).unwrap();
        let mut t2 = AccessPredictor::new(small_teacher_cfg(), 999).unwrap();
        let dcfg = DistillConfig {
            lambda: 0.0,
            train: TrainConfig { epochs: 2, batch_size: 16, ..Default::default() },
            ..Default::default()
        };
        let (mut s1, _) = distill(&mut t1, small_student_cfg(), &data, &dcfg);
        let (mut s2, _) = distill(&mut t2, small_student_cfg(), &data, &dcfg);
        let x = data.batch(0, 4).0;
        assert_eq!(s1.forward_logits(&x, false), s2.forward_logits(&x, false));
    }

    #[test]
    fn student_without_kd_trains() {
        let data = toy_dataset(128, 4, 4, 6, 17);
        let tcfg = TrainConfig { epochs: 10, batch_size: 32, ..Default::default() };
        let (mut student, history) = train_student_without_kd(small_student_cfg(), &data, &tcfg, 3);
        assert!(history.last().unwrap().loss < history.first().unwrap().loss);
        let f1 = evaluate_f1(&mut student, &data, 64);
        assert!(f1 > 0.6, "F1 {f1}");
    }
}
