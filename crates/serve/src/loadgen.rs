//! Synthetic multi-stream load generation, reusing the `dart-trace`
//! synthetic SPEC-like workload patterns: stream `i` replays workload
//! `i % 8` with its own seed, and streams are interleaved round-robin so
//! every shard sees concurrent traffic.

use dart_trace::spec_workloads;

use crate::request::PrefetchRequest;

/// Load-generator settings.
#[derive(Clone, Copy, Debug)]
pub struct LoadGenConfig {
    /// Number of concurrent client streams.
    pub streams: usize,
    /// Accesses generated per stream.
    pub accesses_per_stream: usize,
    /// Base seed; stream `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig { streams: 32, accesses_per_stream: 256, seed: 0x5EED }
    }
}

/// Generate the interleaved request sequence.
///
/// The result has `streams * accesses_per_stream` requests; position
/// `k * streams + i` is stream `i`'s `k`-th access, so per-stream order is
/// the workload's access order while the global sequence mixes all streams.
pub fn generate_requests(cfg: &LoadGenConfig) -> Vec<PrefetchRequest> {
    let workloads = spec_workloads();
    let per_stream: Vec<Vec<PrefetchRequest>> = (0..cfg.streams)
        .map(|i| {
            let w = &workloads[i % workloads.len()];
            w.generate(cfg.accesses_per_stream, cfg.seed.wrapping_add(i as u64))
                .into_iter()
                .map(|rec| PrefetchRequest { stream_id: i as u64, pc: rec.pc, addr: rec.addr })
                .collect()
        })
        .collect();

    let mut out = Vec::with_capacity(cfg.streams * cfg.accesses_per_stream);
    for k in 0..cfg.accesses_per_stream {
        for stream in &per_stream {
            out.push(stream[k]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_interleave() {
        let cfg = LoadGenConfig { streams: 4, accesses_per_stream: 10, seed: 1 };
        let reqs = generate_requests(&cfg);
        assert_eq!(reqs.len(), 40);
        // Round-robin: positions 0..4 are streams 0..4's first accesses.
        for i in 0..4 {
            assert_eq!(reqs[i].stream_id, i as u64);
            assert_eq!(reqs[4 + i].stream_id, i as u64);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = LoadGenConfig { streams: 3, accesses_per_stream: 20, seed: 7 };
        assert_eq!(generate_requests(&cfg), generate_requests(&cfg));
        let other = LoadGenConfig { seed: 8, ..cfg };
        assert_ne!(generate_requests(&cfg), generate_requests(&other));
    }

    #[test]
    fn streams_differ_even_on_same_workload() {
        // Streams 0 and 8 share workload kind but use different seeds.
        let cfg = LoadGenConfig { streams: 9, accesses_per_stream: 30, seed: 3 };
        let reqs = generate_requests(&cfg);
        let s0: Vec<u64> = reqs.iter().filter(|r| r.stream_id == 0).map(|r| r.addr).collect();
        let s8: Vec<u64> = reqs.iter().filter(|r| r.stream_id == 8).map(|r| r.addr).collect();
        assert_ne!(s0, s8);
    }
}
