//! Cross-crate integration: prefetchers inside the simulator.

use dart::prefetch::{BestOffset, Isb, NnBatchPrefetcher};
use dart::sim::{NullPrefetcher, SimConfig, Simulator};
use dart::trace::workload_by_name;

/// BO must beat no-prefetching on a streaming workload (the regime it was
/// designed for).
#[test]
fn best_offset_speeds_up_streams() {
    let trace = workload_by_name("libquantum").unwrap().generate(20_000, 3);
    let sim = Simulator::new(SimConfig::table_iii());
    let base = sim.run(&trace, &mut NullPrefetcher, false);
    let mut bo = BestOffset::new();
    let with_bo = sim.run(&trace, &mut bo, false);
    // Degree-1 BO leaves some latency exposed; require a solid, not
    // heroic, speedup.
    assert!(
        with_bo.ipc() > base.ipc() * 1.05,
        "BO should speed up a stream: {} vs {}",
        with_bo.ipc(),
        base.ipc()
    );
    assert!(with_bo.prefetch_accuracy() > 0.8, "acc {}", with_bo.prefetch_accuracy());
}

/// An oracle prefetcher built from the trace itself must approach perfect
/// accuracy — and its 25-kilocycle-latency twin must do strictly worse
/// (the paper's central latency argument, end to end).
#[test]
fn oracle_prefetcher_latency_ablation() {
    let trace = workload_by_name("milc").unwrap().generate(20_000, 7);
    let sim = Simulator::new(SimConfig::table_iii());
    let base = sim.run(&trace, &mut NullPrefetcher, true);
    let llc = base.llc_trace.clone().unwrap();

    // Oracle: at LLC access i, "predict" the blocks of accesses i+1..i+4.
    let preds: Vec<Vec<u64>> = (0..llc.len())
        .map(|i| llc[i + 1..llc.len().min(i + 5)].iter().map(|r| r.block()).collect())
        .collect();

    let mut ideal = NnBatchPrefetcher::new("oracle-0", 0, 0, preds.clone());
    let mut slow = NnBatchPrefetcher::new("oracle-25k", 25_000, 0, preds);
    let ideal_r = sim.run(&trace, &mut ideal, false);
    let slow_r = sim.run(&trace, &mut slow, false);

    assert!(ideal_r.prefetch_coverage() > 0.5, "ideal cov {}", ideal_r.prefetch_coverage());
    assert!(
        slow_r.prefetch_coverage() < ideal_r.prefetch_coverage() * 0.5,
        "latency should destroy coverage: {} vs {}",
        slow_r.prefetch_coverage(),
        ideal_r.prefetch_coverage()
    );
    assert!(ideal_r.ipc() > slow_r.ipc(), "latency should cost IPC");
}

/// ISB only helps once streams recur; on cold streams it must at least do no
/// harm and issue (almost) nothing.
#[test]
fn isb_is_quiet_on_cold_streams() {
    let trace = workload_by_name("libquantum").unwrap().generate(10_000, 1);
    let sim = Simulator::new(SimConfig::table_iii());
    let base = sim.run(&trace, &mut NullPrefetcher, false);
    let mut isb = Isb::new();
    let r = sim.run(&trace, &mut isb, false);
    // Cold blocks are never revisited, so the pair table never fires.
    assert_eq!(r.prefetches_issued, 0);
    assert!((r.ipc() - base.ipc()).abs() / base.ipc() < 0.01);
}

/// The simulator's demand behaviour must be identical across prefetchers
/// (what makes batch precomputation of NN predictions legitimate).
#[test]
fn llc_demand_stream_invariant_under_prefetching() {
    let trace = workload_by_name("wrf").unwrap().generate(15_000, 13);
    let sim = Simulator::new(SimConfig::table_iii());
    let a = sim.run(&trace, &mut NullPrefetcher, true);
    let mut bo = BestOffset::new();
    let b = sim.run(&trace, &mut bo, true);
    assert_eq!(a.llc_trace.unwrap(), b.llc_trace.unwrap());
}
