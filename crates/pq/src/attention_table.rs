//! The **attention kernel** (paper §V-B, Eq. 12–15): tabularized scaled
//! dot-product attention for a single head.
//!
//! Because attention has no fixed weight matrix, both operands of each
//! product are quantized and the tables hold *pairwise* prototype dot
//! products:
//!
//! 1. **QK table** (Eq. 12): prototypes are learned for Q rows and K rows
//!    over the `D_k` dimension (`C_k` subspaces); entry `(c, i, j)` stores
//!    `p_c(Q̃)_i · p_c(K̃)_j`. Querying (Eq. 13) reconstructs `Q̂K^T`.
//! 2. **Second quantization** (the paper's fix for the `K^3` blow-up): the
//!    *approximated* `Q̃K^T` rows produced on the training set are themselves
//!    quantized over the `T` dimension (`C_t` subspaces).
//! 3. **QKV table** (Eq. 14): scaling by `1/sqrt(D_k)` and the activation are
//!    applied **to the prototypes at training time**, then dotted against
//!    V-column prototypes, so the query needs no arithmetic beyond
//!    aggregation (Eq. 15).
//!
//! Faithful quirk: Eq. 14 uses an element-wise `Sigmoid`, not `Softmax` — a
//! true softmax cannot be evaluated per-subspace. We default to the paper's
//! sigmoid and offer [`AttentionActivation::SoftmaxPerSubspace`] as an
//! ablation (normalizing within each subspace slice).

use dart_nn::matrix::{dot, softmax_in_place, Matrix};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::arena::TableArena;
use crate::quantizer::{EncoderKind, ProductQuantizer};
use crate::simd::{self, SimdOps};

/// Samples per tile of the batched attention query: each tile reuses one
/// set of encode/scratch buffers across its samples and tiles run
/// rayon-parallel over disjoint output rows.
pub const ATTN_TILE_SAMPLES: usize = 8;

/// Activation folded into the QKV-table prototypes (paper Eq. 14).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttentionActivation {
    /// Element-wise `sigmoid(x / sqrt(D_k))` — the paper's Eq. 14.
    SigmoidScaled,
    /// Softmax normalized within each `T`-dimension subspace slice — an
    /// ablation approximating the exact softmax when `C_t` is small.
    SoftmaxPerSubspace,
}

/// Configuration of an attention kernel.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AttentionTableConfig {
    /// Prototypes per subspace `K`.
    pub k: usize,
    /// Subspaces over the head dimension `D_k` (for Q/K inputs), `C_k`.
    pub ck: usize,
    /// Subspaces over the sequence dimension `T` (for `QK^T` rows and V
    /// columns), `C_t`.
    pub ct: usize,
    /// Encoder used by every quantizer.
    pub encoder: EncoderKind,
    /// Activation folded into the QKV prototypes.
    pub activation: AttentionActivation,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for AttentionTableConfig {
    fn default() -> Self {
        AttentionTableConfig {
            k: 16,
            ck: 2,
            ct: 2,
            encoder: EncoderKind::Argmin,
            activation: AttentionActivation::SigmoidScaled,
            seed: 0xA77,
        }
    }
}

/// A tabularized single-head attention operation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AttentionTable {
    q_pq: ProductQuantizer,
    k_pq: ProductQuantizer,
    /// Flat arena of `C_k` sub-tables (`K x K` each) of pairwise Q·K
    /// prototype products.
    qk: TableArena,
    qkt_pq: ProductQuantizer,
    v_pq: ProductQuantizer,
    /// Flat arena of `C_t` sub-tables (`K x K` each) of products of
    /// activated `QK^T` prototypes with V-column prototypes.
    qkv: TableArena,
    seq_len: usize,
    dk: usize,
}

impl AttentionTable {
    /// Tabularize attention from training activations.
    ///
    /// `q_train`, `k_train`, `v_train` are stacked `(N*T) x D_k` matrices of
    /// the Q/K/V projections observed on the training set.
    pub fn fit(
        q_train: &Matrix,
        k_train: &Matrix,
        v_train: &Matrix,
        seq_len: usize,
        cfg: &AttentionTableConfig,
    ) -> AttentionTable {
        assert!(seq_len > 0);
        assert_eq!(q_train.shape(), k_train.shape());
        assert_eq!(q_train.shape(), v_train.shape());
        assert_eq!(q_train.rows() % seq_len, 0, "training rows not divisible by seq_len");
        let dk = q_train.cols();
        let n_samples = q_train.rows() / seq_len;

        // Step 1: prototypes for Q and K rows over D_k (Eq. 12).
        let q_pq = ProductQuantizer::fit(q_train, cfg.ck, cfg.k, cfg.encoder, cfg.seed);
        let k_pq =
            ProductQuantizer::fit(k_train, cfg.ck, cfg.k, cfg.encoder, cfg.seed.wrapping_add(1));
        let qk_tables = pairwise_tables(&q_pq, &k_pq);

        // Step 2: generate the table-approximated Q̃K^T on the training set
        // and quantize its rows over the T dimension.
        let qkt_rows: Vec<Matrix> = (0..n_samples)
            .into_par_iter()
            .map(|n| {
                let qs = q_train.slice_rows(n * seq_len, (n + 1) * seq_len);
                let ks = k_train.slice_rows(n * seq_len, (n + 1) * seq_len);
                lookup_qk(&q_pq, &k_pq, &qk_tables, &qs, &ks)
            })
            .collect();
        let qkt_train = Matrix::vstack(&qkt_rows);
        let qkt_pq =
            ProductQuantizer::fit(&qkt_train, cfg.ct, cfg.k, cfg.encoder, cfg.seed.wrapping_add(2));

        // V columns: reshape (N*T) x D_k into (N*D_k) x T (each row is one
        // sample's V column, the paper's Ṽ^T).
        let mut v_cols = Matrix::zeros(n_samples * dk, seq_len);
        for n in 0..n_samples {
            for o in 0..dk {
                let dst = v_cols.row_mut(n * dk + o);
                for (t, slot) in dst.iter_mut().enumerate() {
                    *slot = v_train.get(n * seq_len + t, o);
                }
            }
        }
        let v_pq =
            ProductQuantizer::fit(&v_cols, cfg.ct, cfg.k, cfg.encoder, cfg.seed.wrapping_add(3));

        // Step 3: QKV table with scaling + activation folded into the
        // QK^T-row prototypes (Eq. 14).
        let scale = 1.0 / (dk as f32).sqrt();
        let activation = cfg.activation;
        let qkv_tables = pairwise_tables_transform(&qkt_pq, &v_pq, |proto| {
            let mut p: Vec<f32> = proto.iter().map(|&x| x * scale).collect();
            match activation {
                AttentionActivation::SigmoidScaled => {
                    for x in &mut p {
                        *x = 1.0 / (1.0 + (-*x).exp());
                    }
                }
                AttentionActivation::SoftmaxPerSubspace => softmax_in_place(&mut p),
            }
            p
        });

        AttentionTable { q_pq, k_pq, qk: qk_tables, qkt_pq, v_pq, qkv: qkv_tables, seq_len, dk }
    }

    /// Sequence length `T`.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Head dimension `D_k`.
    pub fn head_dim(&self) -> usize {
        self.dk
    }

    /// Approximate `activation(QK^T / sqrt(D_k)) V` for one sample
    /// (`q`,`k`,`v` are `T x D_k`) using only table lookups (Eq. 13 + 15).
    pub fn query(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
        assert_eq!(q.shape(), (self.seq_len, self.dk), "Q shape mismatch");
        self.query_batch(q, k, v)
    }

    /// Batched attention over `B` stacked samples (`q`/`k`/`v` are
    /// `(B*T) x D_k`), tiled by [`ATTN_TILE_SAMPLES`]: each tile reuses one
    /// set of encode/scratch buffers across its samples and tiles run
    /// rayon-parallel over disjoint output rows — the multi-sample
    /// counterpart of [`Self::query`], bit-for-bit equal to querying each
    /// sample individually. The per-tile QK/QKV accumulations run through
    /// the process-wide SIMD dispatch ([`simd::ops`]).
    pub fn query_batch(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
        self.query_batch_with(q, k, v, simd::ops())
    }

    /// [`Self::query_batch`] pinned to the scalar kernel tiles — the
    /// reference path of the simd differential suites and benches.
    pub fn query_batch_scalar(&self, q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
        self.query_batch_with(q, k, v, simd::scalar_ops())
    }

    /// Tile kernel shared by the dispatched and scalar entry points.
    ///
    /// K-row and V-column codes are staged **subspace-major** as `i32`
    /// (`codes_t[ci * lanes + lane]`), so each `(t1, ci)` / `(t1, c)` pass
    /// is one gather-accumulate over contiguous indices: lane `t2` (QK) or
    /// lane `o` (QKV) reads `table_row[idx[lane]]` and accumulates in
    /// subspace order — exactly the scalar `acc += table.get(..)` loop,
    /// one output lane per vector lane, so results are bit-identical at
    /// every dispatch level.
    fn query_batch_with(&self, q: &Matrix, k: &Matrix, v: &Matrix, ops: &SimdOps) -> Matrix {
        let t = self.seq_len;
        assert_eq!(q.cols(), self.dk, "Q shape mismatch");
        assert_eq!(q.rows() % t, 0, "rows not divisible by seq_len");
        assert_eq!(k.shape(), q.shape());
        assert_eq!(v.shape(), q.shape());
        crate::profile::profile_kernel("attention_query", q.rows() as u64);
        let ck = self.q_pq.num_subspaces();
        let ct = self.qkt_pq.num_subspaces();
        let dk = self.dk;
        let qk_width = self.qk.width();
        let qkv_width = self.qkv.width();

        let mut out = Matrix::zeros(q.rows(), dk);
        let sample_span = t * dk;
        out.as_mut_slice().par_chunks_mut(ATTN_TILE_SAMPLES * sample_span).enumerate().for_each(
            |(tile, ochunk)| {
                let n0 = tile * ATTN_TILE_SAMPLES;
                let samples = ochunk.len() / sample_span;
                let mut q_codes = vec![0usize; t * ck];
                // K-row codes, subspace-major i32: code of row t2 under
                // subspace ci at `k_codes_t[ci * t + t2]`.
                let mut k_codes_t = vec![0i32; ck * t];
                let mut qkt = Matrix::zeros(t, t);
                let mut row_codes = vec![0usize; ct];
                // V-column codes, subspace-major i32: code of column o
                // under subspace c at `col_codes_t[c * dk + o]`.
                let mut col_codes_t = vec![0i32; ct * dk];
                let mut code_tmp = vec![0usize; ck.max(ct)];
                let mut vcol = vec![0.0f32; t];

                for s in 0..samples {
                    let base = (n0 + s) * t;

                    // Stage 1: Q̂K^T via the QK table (Eq. 13).
                    for r in 0..t {
                        self.q_pq.encode_row_into_with(
                            q.row(base + r),
                            &mut q_codes[r * ck..(r + 1) * ck],
                            ops,
                        );
                        self.k_pq.encode_row_into_with(k.row(base + r), &mut code_tmp[..ck], ops);
                        for ci in 0..ck {
                            k_codes_t[ci * t + r] = code_tmp[ci] as i32;
                        }
                    }
                    for t1 in 0..t {
                        let orow = qkt.row_mut(t1);
                        for ci in 0..ck {
                            let qcode = q_codes[t1 * ck + ci];
                            let trow =
                                &self.qk.subtable(ci)[qcode * qk_width..(qcode + 1) * qk_width];
                            let idx = &k_codes_t[ci * t..(ci + 1) * t];
                            if ci == 0 {
                                ops.gather_init(orow, trow, idx);
                            } else {
                                ops.gather_add(orow, trow, idx);
                            }
                        }
                    }

                    // Stage 2: encode Q̂K^T rows and V columns; aggregate
                    // the QKV table (Eq. 15).
                    for o in 0..dk {
                        for (tt, slot) in vcol.iter_mut().enumerate() {
                            *slot = v.get(base + tt, o);
                        }
                        self.v_pq.encode_row_into_with(&vcol, &mut code_tmp[..ct], ops);
                        for c in 0..ct {
                            col_codes_t[c * dk + o] = code_tmp[c] as i32;
                        }
                    }
                    for t1 in 0..t {
                        self.qkt_pq.encode_row_into_with(qkt.row(t1), &mut row_codes, ops);
                        let orow = &mut ochunk[s * sample_span + t1 * dk..][..dk];
                        for c in 0..ct {
                            let rcode = row_codes[c];
                            let trow =
                                &self.qkv.subtable(c)[rcode * qkv_width..(rcode + 1) * qkv_width];
                            let idx = &col_codes_t[c * dk..(c + 1) * dk];
                            if c == 0 {
                                ops.gather_init(orow, trow, idx);
                            } else {
                                ops.gather_add(orow, trow, idx);
                            }
                        }
                    }
                }
            },
        );
        out
    }

    /// Intermediate `Q̂K^T` (exposed for diagnostics and tests).
    pub fn query_qk(&self, q: &Matrix, k: &Matrix) -> Matrix {
        lookup_qk(&self.q_pq, &self.k_pq, &self.qk, q, k)
    }

    /// The QK table arena (`C_k` sub-tables of `K x K`).
    pub fn qk_tables(&self) -> &TableArena {
        &self.qk
    }

    /// The QKV table arena (`C_t` sub-tables of `K x K`).
    pub fn qkv_tables(&self) -> &TableArena {
        &self.qkv
    }

    /// Replace the table contents (used by the int8 re-encoder round trip).
    /// Shapes must match the fitted tables.
    pub fn with_tables(mut self, qk: TableArena, qkv: TableArena) -> AttentionTable {
        let shape = |a: &TableArena| (a.num_subspaces(), a.num_protos(), a.width());
        assert_eq!(shape(&qk), shape(&self.qk), "QK table shape mismatch");
        assert_eq!(shape(&qkv), shape(&self.qkv), "QKV table shape mismatch");
        self.qk = qk;
        self.qkv = qkv;
        self
    }

    /// Table storage in bytes (QK + QKV tables, f32 entries).
    pub fn storage_bytes(&self) -> u64 {
        ((self.qk.len() + self.qkv.len()) * 4) as u64
    }
}

/// Build the arena of per-subspace `K x K` tables of pairwise prototype
/// dot products.
fn pairwise_tables(a: &ProductQuantizer, b: &ProductQuantizer) -> TableArena {
    pairwise_tables_transform(a, b, |p| p.to_vec())
}

/// Like [`pairwise_tables`] but applies `transform` to each `a`-prototype
/// before the dot product (used to fold scaling + activation, Eq. 14).
fn pairwise_tables_transform(
    a: &ProductQuantizer,
    b: &ProductQuantizer,
    transform: impl Fn(&[f32]) -> Vec<f32> + Sync,
) -> TableArena {
    assert_eq!(a.num_subspaces(), b.num_subspaces(), "subspace mismatch");
    let (ka, kb) = (a.num_protos(), b.num_protos());
    let mut arena = TableArena::zeros(a.num_subspaces(), ka, kb);
    arena.fill_subtables_parallel(|c, sub| {
        for i in 0..ka {
            let ta = transform(a.proto(c, i));
            let row = &mut sub[i * kb..(i + 1) * kb];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = dot(&ta, b.proto(c, j));
            }
        }
    });
    arena
}

/// Reconstruct `Q̂K^T` for one sample via QK-table lookups (Eq. 13).
fn lookup_qk(
    q_pq: &ProductQuantizer,
    k_pq: &ProductQuantizer,
    qk: &TableArena,
    q: &Matrix,
    k: &Matrix,
) -> Matrix {
    let t = q.rows();
    let c = q_pq.num_subspaces();
    let mut q_codes = vec![0usize; t * c];
    let mut k_codes = vec![0usize; t * c];
    for r in 0..t {
        q_pq.encode_row_into(q.row(r), &mut q_codes[r * c..(r + 1) * c]);
        k_pq.encode_row_into(k.row(r), &mut k_codes[r * c..(r + 1) * c]);
    }
    let mut qkt = Matrix::zeros(t, t);
    for t1 in 0..t {
        let row = qkt.row_mut(t1);
        for (t2, slot) in row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for ci in 0..c {
                acc += qk.get(ci, q_codes[t1 * c + ci], k_codes[t2 * c + ci]);
            }
            *slot = acc;
        }
    }
    qkt
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_nn::init::InitRng;

    fn rand_stack(samples: usize, t: usize, dk: usize, seed: u64) -> Matrix {
        let mut rng = InitRng::new(seed);
        Matrix::from_fn(samples * t, dk, |_, _| rng.normal() * 0.5)
    }

    /// Reference "sigmoid attention": `sigmoid(QK^T / sqrt(dk)) V`.
    fn sigmoid_attention(q: &Matrix, k: &Matrix, v: &Matrix) -> Matrix {
        let dk = q.cols() as f32;
        let mut s = q.matmul_transb(k);
        s.scale_assign(1.0 / dk.sqrt());
        let a = s.map(|x| 1.0 / (1.0 + (-x).exp()));
        a.matmul(v)
    }

    fn fit_default(
        samples: usize,
        t: usize,
        dk: usize,
        k: usize,
    ) -> (AttentionTable, Matrix, Matrix, Matrix) {
        let q = rand_stack(samples, t, dk, 100);
        let kk = rand_stack(samples, t, dk, 200);
        let v = rand_stack(samples, t, dk, 300);
        let cfg = AttentionTableConfig { k, ck: 2, ct: 2, ..Default::default() };
        let table = AttentionTable::fit(&q, &kk, &v, t, &cfg);
        (table, q, kk, v)
    }

    #[test]
    fn query_shape() {
        let (table, q, k, v) = fit_default(20, 4, 8, 8);
        let out = table.query(&q.slice_rows(0, 4), &k.slice_rows(0, 4), &v.slice_rows(0, 4));
        assert_eq!(out.shape(), (4, 8));
    }

    #[test]
    fn qk_table_approximates_dot_products() {
        let (table, q, k, _) = fit_default(50, 4, 8, 64);
        let qs = q.slice_rows(0, 4);
        let ks = k.slice_rows(0, 4);
        let approx = table.query_qk(&qs, &ks);
        let exact = qs.matmul_transb(&ks);
        let err = approx.sub(&exact).frobenius_norm() / exact.frobenius_norm().max(1e-6);
        assert!(err < 0.6, "relative QK error {err}");
    }

    #[test]
    fn more_prototypes_improve_qk_fidelity() {
        let q = rand_stack(80, 4, 8, 1);
        let k = rand_stack(80, 4, 8, 2);
        let v = rand_stack(80, 4, 8, 3);
        let mut errs = Vec::new();
        for kk in [4, 16, 128] {
            let cfg = AttentionTableConfig { k: kk, ck: 2, ct: 2, ..Default::default() };
            let table = AttentionTable::fit(&q, &k, &v, 4, &cfg);
            let qs = q.slice_rows(0, 4);
            let ks = k.slice_rows(0, 4);
            let err = table.query_qk(&qs, &ks).sub(&qs.matmul_transb(&ks)).frobenius_norm();
            errs.push(err);
        }
        assert!(errs[2] < errs[0], "K=128 err {} !< K=4 err {}", errs[2], errs[0]);
    }

    #[test]
    fn approximates_sigmoid_attention_with_many_prototypes() {
        let (table, q, k, v) = fit_default(100, 4, 8, 128);
        // On training samples, the double quantization should land near the
        // sigmoid-attention reference.
        let mut total_rel = 0.0;
        let trials = 10;
        for n in 0..trials {
            let qs = q.slice_rows(n * 4, (n + 1) * 4);
            let ks = k.slice_rows(n * 4, (n + 1) * 4);
            let vs = v.slice_rows(n * 4, (n + 1) * 4);
            let approx = table.query(&qs, &ks, &vs);
            let exact = sigmoid_attention(&qs, &ks, &vs);
            total_rel += approx.sub(&exact).frobenius_norm() / exact.frobenius_norm().max(1e-6);
        }
        let mean_rel = total_rel / trials as f32;
        assert!(mean_rel < 0.5, "mean relative error {mean_rel}");
    }

    #[test]
    fn softmax_per_subspace_variant_runs() {
        let q = rand_stack(30, 4, 8, 7);
        let k = rand_stack(30, 4, 8, 8);
        let v = rand_stack(30, 4, 8, 9);
        let cfg = AttentionTableConfig {
            k: 8,
            ck: 2,
            ct: 1,
            activation: AttentionActivation::SoftmaxPerSubspace,
            ..Default::default()
        };
        let table = AttentionTable::fit(&q, &k, &v, 4, &cfg);
        let out = table.query(&q.slice_rows(0, 4), &k.slice_rows(0, 4), &v.slice_rows(0, 4));
        assert_eq!(out.shape(), (4, 8));
        assert!(out.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn storage_matches_expected_table_sizes() {
        let (table, ..) = fit_default(20, 4, 8, 8);
        // qk: ck(2) tables of K^2(64) + qkv: ct(2) tables of K^2(64), f32.
        assert_eq!(table.storage_bytes(), ((2 * 64 + 2 * 64) * 4) as u64);
    }

    #[test]
    fn hash_tree_encoder_variant_runs() {
        let q = rand_stack(40, 4, 8, 17);
        let k = rand_stack(40, 4, 8, 18);
        let v = rand_stack(40, 4, 8, 19);
        let cfg = AttentionTableConfig {
            k: 16,
            ck: 2,
            ct: 2,
            encoder: EncoderKind::HashTree,
            ..Default::default()
        };
        let table = AttentionTable::fit(&q, &k, &v, 4, &cfg);
        let out = table.query(&q.slice_rows(0, 4), &k.slice_rows(0, 4), &v.slice_rows(0, 4));
        assert!(out.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "Q shape mismatch")]
    fn rejects_wrong_shapes() {
        let (table, q, k, v) = fit_default(10, 4, 8, 4);
        let _ = table.query(&q.slice_rows(0, 3), &k.slice_rows(0, 4), &v.slice_rows(0, 4));
    }
}
