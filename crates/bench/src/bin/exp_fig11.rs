//! Fig. 11 — layer-wise cosine similarity between the student network and
//! its tabularized models, with vs. without fine-tuning.

use dart_bench::zoo::{tabular_config, train_dart};
use dart_bench::{print_table, record_json, ExperimentContext, Table};
use dart_core::config::PredictorConfig;
use dart_core::eval::compare_reports;
use dart_core::tabularize::tabularize;
use dart_trace::workload_by_name;

fn main() {
    let ctx = ExperimentContext::from_env();
    let variant = PredictorConfig::dart();
    // One representative regular and one irregular workload.
    let apps = ["410.bwaves", "605.mcf"];
    let mut records = Vec::new();

    for (wi, app) in apps.iter().enumerate() {
        eprintln!("[fig11] {app}");
        let workload = workload_by_name(app).expect("known workload");
        let prepared = ctx.prepare(&workload, 0xF111 + wi as u64 * 13);
        let artifacts = train_dart(&prepared, &ctx.pre, ctx.scale, &variant, false);
        let no_ft = tabular_config(ctx.scale, &variant).without_fine_tuning();
        let (_, report_no_ft) = tabularize(&artifacts.student, &prepared.train.inputs, &no_ft);

        let rows = compare_reports(&artifacts.report, &report_no_ft);
        let mut t = Table::new(&["Layer", "DART (with FT)", "DART w/o FT", "FT gain"]);
        for (layer, ft, noft) in &rows {
            t.row(vec![
                layer.clone(),
                format!("{ft:.4}"),
                format!("{noft:.4}"),
                format!("{:+.4}", ft - noft),
            ]);
            records.push(serde_json::json!({
                "app": app, "layer": layer, "with_ft": ft, "without_ft": noft,
            }));
        }
        print_table(&format!("Fig. 11: layer-wise cosine similarity — {app}"), &t);
    }
    println!(
        "\nShape check (paper): fine-tuning raises similarity, most visibly for \
         layers close to the output where errors have accumulated."
    );
    record_json("fig11", &serde_json::Value::Array(records));
}
