//! The hierarchy-of-tables predictor: a table-based mirror of the attention
//! model whose inference performs **no matrix multiplications** — only
//! encodings, table lookups, aggregations, LayerNorm arithmetic, residual
//! adds, and one LUT sigmoid (paper §IV, Algorithm 1).

use dart_nn::matrix::Matrix;
use dart_nn::model::ModelConfig;
use dart_pq::{AttentionTable, FusedFfnTable, LinearTable, SigmoidLut};
use serde::{Deserialize, Serialize};

/// Exact LayerNorm parameters copied from the neural model (Algorithm 1
/// line 18 keeps LayerNorm as plain arithmetic).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExactLayerNorm {
    /// Scale vector.
    pub gamma: Vec<f32>,
    /// Shift vector.
    pub beta: Vec<f32>,
    /// Variance epsilon.
    pub eps: f32,
}

impl ExactLayerNorm {
    /// Copy parameters out of a trained `dart-nn` LayerNorm.
    pub fn from_nn(ln: &dart_nn::layers::LayerNorm) -> Self {
        ExactLayerNorm {
            gamma: ln.gamma.value.as_slice().to_vec(),
            beta: ln.beta.value.as_slice().to_vec(),
            eps: ln.eps(),
        }
    }

    /// Apply row-wise.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        let dim = self.gamma.len();
        assert_eq!(x.cols(), dim, "LayerNorm dim mismatch");
        let mut out = Matrix::zeros(x.rows(), dim);
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / dim as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / dim as f32;
            let inv = 1.0 / (var + self.eps).sqrt();
            let orow = out.row_mut(r);
            for c in 0..dim {
                orow[c] = self.gamma[c] * (row[c] - mean) * inv + self.beta[c];
            }
        }
        out
    }

    /// Parameter storage in bytes.
    pub fn storage_bytes(&self) -> u64 {
        ((self.gamma.len() + self.beta.len()) * 4) as u64
    }
}

/// The FFN portion of a tabularized encoder block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum FfnTables {
    /// The paper's default: two linear kernels, with the ReLU folded into
    /// the output kernel's prototypes.
    TwoKernel {
        /// FFN hidden linear kernel (`D -> D_F`).
        hidden: LinearTable,
        /// FFN output linear kernel with the ReLU folded into its
        /// prototypes (`D_F -> D`).
        out: LinearTable,
    },
    /// The paper's §VIII future-work extension: the whole FFN collapsed
    /// into a single lookup (half the latency, coarser approximation).
    Fused(FusedFfnTable),
}

impl FfnTables {
    /// Apply the tabularized FFN to stacked rows.
    pub fn query(&self, x: &Matrix) -> Matrix {
        match self {
            FfnTables::TwoKernel { hidden, out } => out.query(&hidden.query(x)),
            FfnTables::Fused(fused) => fused.query(x),
        }
    }

    /// Table storage in bytes.
    pub fn storage_bytes(&self) -> u64 {
        match self {
            FfnTables::TwoKernel { hidden, out } => hidden.storage_bytes() + out.storage_bytes(),
            FfnTables::Fused(fused) => fused.storage_bytes(),
        }
    }
}

/// One tabularized transformer encoder block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TabularEncoderBlock {
    /// LayerNorm before attention (exact).
    pub ln1: ExactLayerNorm,
    /// Fused QKV projection (linear kernel, `D -> 3D`).
    pub qkv: LinearTable,
    /// Per-head attention kernels.
    pub heads: Vec<AttentionTable>,
    /// Output projection (linear kernel, `D -> D`).
    pub out: LinearTable,
    /// LayerNorm before the FFN (exact).
    pub ln2: ExactLayerNorm,
    /// Tabularized FFN (two kernels or one fused table).
    pub ffn: FfnTables,
}

impl TabularEncoderBlock {
    /// Forward one stacked batch (`(batch*T) x D`).
    ///
    /// Every kernel runs its batched path: the QKV/out/FFN linear kernels
    /// aggregate subspace-major over the whole batch, and each attention
    /// head processes all samples in one `query_batch` call with shared
    /// scratch buffers.
    pub fn forward(&self, x: &Matrix, seq_len: usize) -> Matrix {
        let dim = x.cols();
        let heads = self.heads.len();
        let dh = dim / heads;
        debug_assert_eq!(x.rows() % seq_len, 0, "rows not divisible by seq_len");

        let a = self.ln1.apply(x);
        let qkv = self.qkv.query(&a);
        let q = qkv.slice_cols(0, dim);
        let k = qkv.slice_cols(dim, 2 * dim);
        let v = qkv.slice_cols(2 * dim, 3 * dim);

        let mut concat = Matrix::zeros(x.rows(), dim);
        for (h, head) in self.heads.iter().enumerate() {
            let (lo, hi) = (h * dh, (h + 1) * dh);
            let qs = q.slice_cols(lo, hi);
            let ks = k.slice_cols(lo, hi);
            let vs = v.slice_cols(lo, hi);
            let y = head.query_batch(&qs, &ks, &vs);
            for r in 0..x.rows() {
                concat.row_mut(r)[lo..hi].copy_from_slice(y.row(r));
            }
        }
        let x1 = x.add(&self.out.query(&concat));

        let f = self.ln2.apply(&x1);
        x1.add(&self.ffn.query(&f))
    }

    /// Table + LayerNorm storage in bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.ln1.storage_bytes()
            + self.qkv.storage_bytes()
            + self.heads.iter().map(AttentionTable::storage_bytes).sum::<u64>()
            + self.out.storage_bytes()
            + self.ln2.storage_bytes()
            + self.ffn.storage_bytes()
    }
}

/// The complete table-based predictor (the "DART predictor").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TabularModel {
    /// Mirror of the source model's structure.
    pub config: ModelConfig,
    /// Tabularized input projection.
    pub input_linear: LinearTable,
    /// Exact LayerNorm after the input projection.
    pub input_ln: ExactLayerNorm,
    /// Tabularized encoder stack.
    pub blocks: Vec<TabularEncoderBlock>,
    /// Tabularized per-token output projection.
    pub output_linear: LinearTable,
    /// LUT sigmoid on the pooled logits.
    pub sigmoid: SigmoidLut,
}

impl TabularModel {
    /// Per-token hidden representation, pre-head (for layer diagnostics).
    pub fn encode(&self, x: &Matrix) -> Matrix {
        let mut h = self.input_linear.query(x);
        h = self.input_ln.apply(&h);
        for blk in &self.blocks {
            h = blk.forward(&h, self.config.seq_len);
        }
        h
    }

    /// Pooled pre-sigmoid logits (`batch x D_O`).
    pub fn forward_logits(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.config.input_dim, "input dim mismatch");
        let h = self.encode(x);
        let per_token = self.output_linear.query(&h);
        let t = self.config.seq_len;
        let batch = per_token.rows() / t;
        let mut out = Matrix::zeros(batch, self.config.output_dim);
        for n in 0..batch {
            let orow = out.row_mut(n);
            for step in 0..t {
                for (o, &v) in orow.iter_mut().zip(per_token.row(n * t + step)) {
                    *o += v;
                }
            }
            let inv = 1.0 / t as f32;
            for o in orow.iter_mut() {
                *o *= inv;
            }
        }
        out
    }

    /// Bitmap probabilities via the sigmoid LUT (`batch x D_O`).
    pub fn forward_probs(&self, x: &Matrix) -> Matrix {
        let mut logits = self.forward_logits(x);
        self.sigmoid.apply(logits.as_mut_slice());
        logits
    }

    /// Batched prediction over `B` stacked samples — the serving entry
    /// point used by `dart-serve`.
    ///
    /// `x` is `(B * seq_len) x D_I`: sample `n`'s token rows occupy rows
    /// `[n*seq_len, (n+1)*seq_len)`. Returns `B x D_O` bitmap
    /// probabilities. Results are bit-for-bit identical to calling
    /// [`Self::forward_probs`] on each sample individually; the batched
    /// path runs every kernel's tiled flat-arena query (`dart-pq`'s
    /// `TableArena` layout: rows are aggregated a tile at a time per
    /// sub-table pass, so each contiguous sub-table block stays
    /// cache-resident across its tile).
    pub fn predict_batch(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.rows() % self.config.seq_len,
            0,
            "predict_batch rows {} not divisible by seq_len {}",
            x.rows(),
            self.config.seq_len
        );
        self.forward_probs(x)
    }

    /// A deep copy of the whole table hierarchy with **freshly allocated**
    /// storage: every flat `TableArena` / `CodebookArena` / LayerNorm
    /// vector is a new heap allocation written by the *calling* thread.
    ///
    /// That write-on-copy is the point: under Linux's default first-touch
    /// NUMA policy, pages are placed on the node of the thread that first
    /// writes them, so a thread pinned to node N calling `deep_clone`
    /// produces a replica whose hot lookup arenas are node-N-local.
    /// `dart-serve`'s `ShardPlacement` uses exactly this to give each NUMA
    /// node its own model replica instead of hammering one socket's copy.
    ///
    /// The replica is bit-for-bit identical to `self` (plain `Clone` of
    /// `Vec`-backed storage — nothing is shared, re-quantized, or
    /// re-ordered), so predictions through a replica equal predictions
    /// through the original exactly.
    pub fn deep_clone(&self) -> TabularModel {
        let copy = self.clone();
        debug_assert_eq!(copy.storage_bytes(), self.storage_bytes());
        copy
    }

    /// Serialize the whole table hierarchy — flat `TableArena` /
    /// `CodebookArena` storage included — to JSON (the golden-fixture
    /// format under `tests/fixtures/`).
    pub fn to_json(&self) -> String {
        let json = serde_json::to_string(self).expect("TabularModel serialization cannot fail");
        // serde_json writes non-finite floats as `null` without erroring,
        // and `from_json` then rejects the file far from the cause. A
        // NaN/Inf table entry means the *fit* was degenerate — enforce the
        // actual contract (the written JSON loads back) here at the write,
        // where the message can say so. Serialization is a rare fixture /
        // snapshot path, so the extra parse is immaterial.
        assert!(
            Self::from_json(&json).is_ok(),
            "serialized TabularModel does not load back via from_json; refusing to write an \
             unloadable model. Most likely cause: non-finite table entries (serde_json writes \
             NaN/Inf as `null`), i.e. a degenerate fit — but any serializer/deserializer \
             asymmetry trips this too"
        );
        json
    }

    /// Content fingerprint: FNV-1a over the canonical [`Self::to_json`]
    /// serialization. Bit-identical models — e.g. a [`Self::deep_clone`]
    /// replica — share a fingerprint; any table-entry or config change
    /// alters it. Used by `dart-serve`'s model registry to distinguish a
    /// no-op hot-swap from a real model change. This serializes the whole
    /// model, so treat it as a registry/admin-path operation, not a
    /// serving-path one.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.to_json().into_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Load a model serialized by [`Self::to_json`]. f32 entries survive
    /// the round trip bit-for-bit (JSON numbers are f64, and f32 -> f64 is
    /// exact).
    pub fn from_json(s: &str) -> serde_json::Result<TabularModel> {
        serde_json::from_str(s)
    }

    /// Measured table storage in bytes (actual, not the Eq. 23 estimate).
    pub fn storage_bytes(&self) -> u64 {
        self.input_linear.storage_bytes()
            + self.input_ln.storage_bytes()
            + self.blocks.iter().map(TabularEncoderBlock::storage_bytes).sum::<u64>()
            + self.output_linear.storage_bytes()
            + self.sigmoid.storage_bytes()
    }
}
