// R5 fixture: which #[allow] placements count as justified.

// Non-doc comment directly above: justified.
#[allow(dead_code)]
pub fn justified_above() {}

#[allow(dead_code)] // trailing justification on the same line
pub fn justified_trailing() {}

#[allow(dead_code)]
pub fn unjustified() {} // MARK:unjustified

/// Doc comments document the item, not the suppression.
#[allow(dead_code)]
pub fn doc_only_is_not_justification() {} // MARK:doc-only
