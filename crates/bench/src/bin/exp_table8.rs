//! Table VIII — configurations chosen by the table configurator under the
//! paper's three design-constraint pairs.

use dart_bench::report::{human_bytes, human_count};
use dart_bench::{print_table, record_json, Table};
use dart_core::config::DesignConstraints;
use dart_core::TableConfigurator;

fn main() {
    let conf = TableConfigurator::default();
    let cases = [
        ("DART-S", DesignConstraints::dart_s(), "(1,16,2,16,1)", "57", "29.9K", "1.6K"),
        ("DART", DesignConstraints::dart(), "(1,32,2,128,2)", "97", "864.4K", "11.0K"),
        ("DART-L", DesignConstraints::dart_l(), "(2,32,2,256,2)", "191", "3.75M", "17.5K"),
    ];

    let mut t = Table::new(&[
        "Prefetcher",
        "Constraints (t/cyc, s/B)",
        "Config paper",
        "Config ours",
        "Latency paper",
        "Latency ours",
        "Storage paper",
        "Storage ours",
        "Ops paper",
        "Ops ours",
    ]);
    let mut records = Vec::new();
    for (name, constraints, p_cfg, p_lat, p_sto, p_ops) in cases {
        let (cfg, cost) = conf.configure(&constraints).expect("feasible constraints");
        t.row(vec![
            name.into(),
            format!("{}, {}", constraints.latency_cycles, human_bytes(constraints.storage_bytes)),
            p_cfg.into(),
            format!("({},{},{},{},{})", cfg.layers, cfg.dim, cfg.heads, cfg.k, cfg.c),
            p_lat.into(),
            cost.latency_cycles.to_string(),
            p_sto.into(),
            human_bytes(cost.storage_bytes),
            p_ops.into(),
            human_count(cost.ops),
        ]);
        records.push(serde_json::json!({
            "name": name,
            "constraints": constraints,
            "config": cfg,
            "cost": cost,
        }));
    }
    print_table("Table VIII: DART configurations under design constraints", &t);
    println!(
        "\nThe greedy is latency-major (paper \u{a7}VI-C2): it may pick a different \
         structural point than the paper within the same latency tier, but must \
         respect both bounds."
    );
    record_json("table8", &serde_json::Value::Array(records));
}
