//! Fig. 8 — DART F1 vs. number of prototypes `K` (subspaces fixed at the
//! DART config), without fine-tuning, as in the paper's §VII-D setup.

use dart_bench::zoo::{tabular_config, train_dart};
use dart_bench::{print_table, record_json, ExperimentContext, Table};
use dart_core::config::PredictorConfig;
use dart_core::eval::evaluate_tabular_f1;
use dart_core::tabularize::tabularize;
use dart_trace::spec_workloads;

fn sweep_ks(quick: bool) -> Vec<usize> {
    if quick {
        vec![16, 64, 128, 512]
    } else {
        vec![16, 32, 64, 128, 256, 512, 1024]
    }
}

fn main() {
    let ctx = ExperimentContext::from_env();
    let variant = PredictorConfig::dart();
    let quick = matches!(ctx.scale, dart_bench::Scale::Quick);
    let ks = sweep_ks(quick);
    // The sweep trains one student per workload and re-tabularizes per K.
    let workloads: Vec<_> = spec_workloads()
        .into_iter()
        .take(dart_bench::prefetch_eval::workload_limit().min(if quick { 4 } else { 8 }))
        .collect();

    let mut headers: Vec<String> = vec!["Application".into()];
    headers.extend(ks.iter().map(|k| format!("K={k}")));
    let mut t = Table::new(&headers.iter().map(String::as_str).collect::<Vec<_>>());
    let mut records = Vec::new();
    let mut means = vec![0.0f64; ks.len()];

    for (wi, workload) in workloads.iter().enumerate() {
        eprintln!("[fig8] {} ({}/{})", workload.name, wi + 1, workloads.len());
        let prepared = ctx.prepare(workload, 0xF18 + wi as u64 * 13);
        let artifacts = train_dart(&prepared, &ctx.pre, ctx.scale, &variant, false);
        let mut row = vec![workload.name.clone()];
        let mut series = Vec::new();
        for (ki, &k) in ks.iter().enumerate() {
            // Paper §VII-D: sweep without fine-tuning, structure fixed.
            let mut cfg = tabular_config(ctx.scale, &variant).without_fine_tuning();
            cfg.k = k;
            let (tab, _) = tabularize(&artifacts.student, &prepared.train.inputs, &cfg);
            let f1 = evaluate_tabular_f1(&tab, &prepared.test, 256);
            row.push(format!("{f1:.3}"));
            means[ki] += f1;
            series.push(serde_json::json!({"k": k, "f1": f1}));
        }
        t.row(row);
        records.push(serde_json::json!({"app": workload.name, "series": series}));
    }
    let mut mean_row = vec!["Mean".to_string()];
    for m in &means {
        mean_row.push(format!("{:.3}", m / workloads.len() as f64));
    }
    t.row(mean_row);
    print_table("Fig. 8: F1 vs prototypes K (no fine-tuning)", &t);
    println!(
        "\nShape check (paper): F1 rises with K, with most of the gain appearing \
         beyond K = 128 (paper: K=1024 beats K=16 by ~10.9%)."
    );
    record_json("fig8", &serde_json::Value::Array(records));
}
