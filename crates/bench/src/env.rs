//! Strict environment-knob parsing for the benchmark binaries.
//!
//! Benchmarks must not silently fall back when a knob is present but
//! malformed (`DART_NUM_THREADS=fourty` quietly meaning "default" skews
//! every number printed afterwards); they exit with a diagnostic instead.

/// Read a `usize` knob. Unset → `default`; set but unparseable or zero →
/// print a diagnostic and exit with status 2.
pub fn env_usize_strict(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: {name}={raw:?} is not a valid value (expected an integer >= 1)");
                std::process::exit(2);
            }
        },
    }
}

/// Validate `DART_NUM_THREADS` if set: exit 2 with a diagnostic on an
/// invalid value, *before* the global pool's panic path can fire inside a
/// worker. Does not touch (or create) any pool — benches that measure
/// explicit pools only can call this without spinning up global workers.
pub fn validate_threads_env() {
    if let Ok(raw) = std::env::var(rayon::THREADS_ENV) {
        if let Err(err) = rayon::parse_thread_count(&raw) {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    }
}

/// [`validate_threads_env`], then report and return the effective kernel
/// thread count (instantiates the global pool).
pub fn announce_threads() -> usize {
    validate_threads_env();
    let threads = rayon::current_num_threads();
    println!(
        "kernel pool: {threads} thread(s) ({} {})",
        rayon::THREADS_ENV,
        std::env::var(rayon::THREADS_ENV).map_or_else(
            |_| "unset, using available parallelism".to_string(),
            |v| format!("= {v}")
        ),
    );
    threads
}
