//! The simulation loop: issue clock, ROB-window stall model, cache
//! hierarchy walk, and prefetch lifecycle (queue → MSHR → in-flight → fill).

use std::collections::{BinaryHeap, HashMap, VecDeque};

use dart_trace::TraceRecord;

use crate::cache::{Cache, LookupResult};
use crate::config::SimConfig;
use crate::dram::Dram;
use crate::metrics::SimResult;
use crate::prefetcher::{LlcAccess, PrefetchQueue, Prefetcher};

/// Capacity of the hardware prefetch queue between predictor and MSHRs.
const PREFETCH_QUEUE_CAPACITY: usize = 64;

/// Trace-driven simulator.
#[derive(Clone, Debug)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// New simulator with the given configuration.
    pub fn new(cfg: SimConfig) -> Simulator {
        Simulator { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Run `trace` with `prefetcher` at the LLC.
    ///
    /// When `record_llc_trace` is set, the result carries the LLC demand
    /// access stream (the paper's "LLC trace" used to train predictors).
    pub fn run(
        &self,
        trace: &[TraceRecord],
        prefetcher: &mut dyn Prefetcher,
        record_llc_trace: bool,
    ) -> SimResult {
        let cfg = &self.cfg;
        let mut l1 = Cache::new(&cfg.l1d);
        let mut l2 = Cache::new(&cfg.l2);
        let mut llc = Cache::new(&cfg.llc);
        let mut dram = Dram::new(cfg.dram, cfg.llc.mshr_entries);
        let mut queue = PrefetchQueue::new(PREFETCH_QUEUE_CAPACITY);

        // Prefetches issued to DRAM but not yet filled: block -> arrival.
        let mut inflight: HashMap<u64, u64> = HashMap::new();
        // Arrival order for draining fills (min-heap of (arrival, block)).
        let mut arrivals: BinaryHeap<std::cmp::Reverse<(u64, u64)>> = BinaryHeap::new();
        // Outstanding loads in the ROB window: (instr_id, completion).
        let mut rob: VecDeque<(u64, u64)> = VecDeque::new();

        let mut result = SimResult::default();
        let mut llc_trace = if record_llc_trace { Some(Vec::new()) } else { None };
        let mut now: u64 = 0;
        let mut llc_seq: usize = 0;
        let mut max_done: u64 = 0;

        for rec in trace {
            // 1. The issue clock cannot run ahead of the front end.
            now = now.max(rec.instr_id / cfg.core.width);

            // 2. ROB window: loads older than `rob_size` instructions must
            //    complete before this instruction can issue.
            while let Some(&(id, done)) = rob.front() {
                if id + cfg.core.rob_size <= rec.instr_id {
                    now = now.max(done);
                    rob.pop_front();
                } else {
                    break;
                }
            }

            // 3. Move prefetch state up to `now`: fill arrived lines, then
            //    issue newly-ready requests.
            drain_arrivals(&mut arrivals, &mut inflight, &mut llc, now);
            for pending in queue.pop_ready(now) {
                if llc.contains(pending.block) || inflight.contains_key(&pending.block) {
                    result.prefetches_redundant += 1;
                } else if dram.can_accept(now) {
                    let done = dram.issue(now);
                    inflight.insert(pending.block, done);
                    arrivals.push(std::cmp::Reverse((done, pending.block)));
                    result.prefetches_issued += 1;
                } else {
                    result.prefetches_no_mshr += 1;
                }
            }

            // 4. Walk the hierarchy.
            let block = rec.addr >> 6;
            let lat = match l1.lookup(block) {
                LookupResult::Hit { .. } => l1.latency,
                LookupResult::Miss => match l2.lookup(block) {
                    LookupResult::Hit { .. } => {
                        l1.fill(block, false);
                        l1.latency + l2.latency
                    }
                    LookupResult::Miss => {
                        // LLC demand access: the prefetcher observes it.
                        let hit = matches!(llc.lookup(block), LookupResult::Hit { .. });
                        let access = LlcAccess {
                            seq: llc_seq,
                            instr_id: rec.instr_id,
                            pc: rec.pc,
                            addr: rec.addr,
                            block,
                            hit,
                        };
                        llc_seq += 1;
                        if let Some(t) = llc_trace.as_mut() {
                            t.push(*rec);
                        }
                        for pf_block in prefetcher.on_access(&access) {
                            queue.push(pf_block, now, prefetcher.latency());
                        }

                        let mem_lat = if hit {
                            0
                        } else if let Some(&arrive) = inflight.get(&block) {
                            // Late prefetch: the line is already on its way,
                            // so the demand pays only the remaining latency.
                            result.late_prefetches += 1;
                            inflight.remove(&block);
                            llc.fill(block, false);
                            arrive.saturating_sub(now)
                        } else {
                            let done = dram.issue(now);
                            llc.fill(block, false);
                            done - now
                        };
                        l2.fill(block, false);
                        l1.fill(block, false);
                        l1.latency + l2.latency + llc.latency + mem_lat
                    }
                },
            };

            let done = now + lat;
            max_done = max_done.max(done);
            rob.push_back((rec.instr_id, done));
        }

        // Retire everything left in flight.
        for (_, done) in rob {
            max_done = max_done.max(done);
        }
        let last_instr = trace.last().map_or(0, |r| r.instr_id + 1);
        result.cycles = max_done.max(now).max(last_instr / cfg.core.width).max(1);
        result.instructions = last_instr;
        result.l1d = l1.stats;
        result.l2 = l2.stats;
        result.llc = llc.stats;
        result.prefetches_queue_dropped = queue.dropped_overflow;
        result.llc_trace = llc_trace;
        result
    }
}

/// Fill every prefetched line that has arrived by `now`.
fn drain_arrivals(
    arrivals: &mut BinaryHeap<std::cmp::Reverse<(u64, u64)>>,
    inflight: &mut HashMap<u64, u64>,
    llc: &mut Cache,
    now: u64,
) {
    while let Some(&std::cmp::Reverse((t, block))) = arrivals.peek() {
        if t > now {
            break;
        }
        arrivals.pop();
        // A late demand may have consumed the entry already.
        if inflight.remove(&block).is_some() {
            llc.fill(block, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetcher::NullPrefetcher;

    fn seq_trace(n: u64, gap: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                instr_id: i * (gap + 1),
                pc: 0x400000,
                addr: 0x1000_0000 + i * 64,
            })
            .collect()
    }

    /// A next-N-blocks prefetcher with configurable latency, for tests.
    struct NextLine {
        degree: u64,
        latency: u64,
    }

    impl Prefetcher for NextLine {
        fn name(&self) -> &str {
            "test-next-line"
        }
        fn latency(&self) -> u64 {
            self.latency
        }
        fn on_access(&mut self, access: &LlcAccess) -> Vec<u64> {
            (1..=self.degree).map(|d| access.block + d).collect()
        }
    }

    #[test]
    fn cold_sequential_trace_misses_everywhere() {
        let sim = Simulator::new(SimConfig::small());
        let trace = seq_trace(1000, 5);
        let r = sim.run(&trace, &mut NullPrefetcher, false);
        assert_eq!(r.llc.accesses, 1000);
        assert_eq!(r.llc.misses, 1000);
        // Last instruction id is 999 * 6, retired count is that plus one.
        assert_eq!(r.instructions, 999 * 6 + 1);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn repeated_block_hits_l1() {
        let sim = Simulator::new(SimConfig::small());
        let trace: Vec<TraceRecord> = (0..100)
            .map(|i| TraceRecord { instr_id: i * 4, pc: 0x400000, addr: 0x2000_0000 })
            .collect();
        let r = sim.run(&trace, &mut NullPrefetcher, false);
        assert_eq!(r.l1d.misses, 1);
        assert_eq!(r.l1d.hits, 99);
        assert_eq!(r.llc.accesses, 1);
    }

    #[test]
    fn next_line_prefetcher_improves_ipc_on_stream() {
        // Wide instruction gaps keep the run off the DRAM-bandwidth wall
        // (a 100%-miss stream at the bus limit cannot benefit from any
        // prefetcher), and degree 16 gives enough lookahead to beat the
        // 150-cycle DRAM latency.
        let sim = Simulator::new(SimConfig::small());
        let trace = seq_trace(4000, 40);
        let base = sim.run(&trace, &mut NullPrefetcher, false);
        let mut nl = NextLine { degree: 16, latency: 10 };
        let with_pf = sim.run(&trace, &mut nl, false);
        assert!(with_pf.prefetches_issued > 0, "prefetches were issued");
        assert!(
            with_pf.ipc() > base.ipc() * 1.05,
            "prefetching should speed up a stream: {} vs {}",
            with_pf.ipc(),
            base.ipc()
        );
        assert!(with_pf.useful_prefetches() > 0, "some prefetches arrive in time");
        assert!(with_pf.prefetch_accuracy() > 0.5, "acc {}", with_pf.prefetch_accuracy());
        assert!(with_pf.prefetch_coverage() > 0.3, "cov {}", with_pf.prefetch_coverage());
    }

    #[test]
    fn huge_latency_makes_prefetches_late_or_useless() {
        let sim = Simulator::new(SimConfig::small());
        let trace = seq_trace(3000, 40);
        let mut fast = NextLine { degree: 16, latency: 10 };
        let mut slow = NextLine { degree: 16, latency: 50_000 };
        let fast_r = sim.run(&trace, &mut fast, false);
        let slow_r = sim.run(&trace, &mut slow, false);
        assert!(
            slow_r.prefetch_coverage() < fast_r.prefetch_coverage(),
            "slow {} vs fast {}",
            slow_r.prefetch_coverage(),
            fast_r.prefetch_coverage()
        );
        // And the slow predictor must not speed the program up as much.
        assert!(slow_r.cycles >= fast_r.cycles);
    }

    #[test]
    fn llc_trace_recording_matches_demand_stream() {
        let sim = Simulator::new(SimConfig::small());
        let trace = seq_trace(500, 4);
        let r = sim.run(&trace, &mut NullPrefetcher, true);
        let llc_trace = r.llc_trace.unwrap();
        // Cold sequential blocks: every access reaches the LLC.
        assert_eq!(llc_trace.len(), r.llc.accesses as usize);
        assert_eq!(llc_trace.len(), 500);
    }

    #[test]
    fn llc_demand_stream_is_prefetcher_independent() {
        // The key property the NN prefetchers' batch precomputation relies
        // on: LLC demand accesses are L2 misses, and the LLC prefetcher
        // cannot change L1/L2 behaviour.
        let sim = Simulator::new(SimConfig::small());
        let trace = seq_trace(2000, 5);
        let base = sim.run(&trace, &mut NullPrefetcher, true);
        let mut nl = NextLine { degree: 4, latency: 0 };
        let with_pf = sim.run(&trace, &mut nl, true);
        assert_eq!(base.llc_trace.unwrap(), with_pf.llc_trace.unwrap());
    }

    #[test]
    fn ipc_bounded_by_width() {
        let sim = Simulator::new(SimConfig::small());
        // All L1 hits after the first: IPC should approach, never exceed, width.
        let trace: Vec<TraceRecord> = (0..10_000)
            .map(|i| TraceRecord { instr_id: i, pc: 0x400000, addr: 0x3000_0000 })
            .collect();
        let r = sim.run(&trace, &mut NullPrefetcher, false);
        assert!(r.ipc() <= 4.0 + 1e-9, "ipc {}", r.ipc());
        assert!(r.ipc() > 2.0, "ipc {}", r.ipc());
    }

    #[test]
    fn empty_trace_is_safe() {
        let sim = Simulator::new(SimConfig::small());
        let r = sim.run(&[], &mut NullPrefetcher, true);
        assert_eq!(r.instructions, 0);
        assert_eq!(r.llc.accesses, 0);
    }

    #[test]
    fn rob_limits_memory_level_parallelism() {
        // With a tiny ROB, independent misses serialize and cycles inflate.
        let mut small_rob = SimConfig::small();
        small_rob.core.rob_size = 8;
        let mut big_rob = SimConfig::small();
        big_rob.core.rob_size = 512;
        let trace = seq_trace(2000, 4);
        let slow = Simulator::new(small_rob).run(&trace, &mut NullPrefetcher, false);
        let fast = Simulator::new(big_rob).run(&trace, &mut NullPrefetcher, false);
        assert!(
            slow.cycles > fast.cycles,
            "small ROB {} cycles should exceed big ROB {}",
            slow.cycles,
            fast.cycles
        );
    }
}
