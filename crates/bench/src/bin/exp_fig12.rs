//! Fig. 12 — prefetch accuracy of DART variants and all baselines.
//!
//! Set `DART_REUSE=1` to reuse the matrix computed by an earlier
//! `exp_fig12/13/14` or `exp_prefetching` run.

use dart_bench::prefetch_eval::{load_or_run, print_metric_table};
use dart_bench::{record_json, ExperimentContext};

/// Paper Fig. 12 mean accuracies.
const PAPER: [(&str, f64); 9] = [
    ("BO", 0.894),
    ("ISB", 0.774), // read from the figure; the text highlights the others
    ("DART-S", 0.806),
    ("DART", 0.807),
    ("DART-L", 0.825),
    ("TransFetch", 0.786),
    ("TransFetch-I", 0.896),
    ("Voyager", 0.499),
    ("Voyager-I", 0.951),
];

fn main() {
    let ctx = ExperimentContext::from_env();
    let matrix = load_or_run(&ctx);
    print_metric_table("Fig. 12: prefetch accuracy", &matrix, &PAPER, |c| c.accuracy, false);
    println!(
        "\nShape check (paper): the ideal NN prefetchers top the chart; adding \
         real latency collapses Voyager hardest (0.951 -> 0.499) and dents \
         TransFetch; DART stays close to its ideal because its latency is tiny."
    );
    record_json("fig12", &serde_json::to_value(&matrix).unwrap());
}
