//! # dart-core — the DART approach
//!
//! The paper's contribution, end to end (§IV–§VI):
//!
//! * [`configurator`] — the **table configurator**: whole-model latency and
//!   storage formulas (Eq. 22–23) over the kernel costs of `dart-pq`, and
//!   the latency-major greedy search that picks a valid
//!   `(L, D, H, K, C)` under prefetcher design constraints `(τ, s)`,
//! * [`mod@distill`] — **multi-label knowledge distillation** with the
//!   T-Sigmoid softening (Eq. 24–25): teacher logits are cached once, then
//!   the student trains on `λ·KD + (1-λ)·BCE`,
//! * [`tabular_model`] — the **hierarchy of tables**: a table-based mirror
//!   of the attention predictor (linear kernels, per-head attention kernels,
//!   exact LayerNorm/residuals, LUT sigmoid) whose inference performs no
//!   matrix multiplications,
//! * [`mod@tabularize`] — **layer-wise tabularization with fine-tuning**
//!   (Algorithm 1): each linear layer is re-fit by MSE against the original
//!   layer outputs with the *approximated* inputs produced by the tables
//!   built so far, mitigating error accumulation,
//! * [`eval`] — F1 and per-layer cosine-similarity diagnostics (Fig. 11),
//! * [`pipeline`] — the three-step workflow (attention → distillation →
//!   tabularization) packaged for examples and the experiment harness.

/// Cache-block shift: 64-byte blocks (`addr >> 6`), matching the paper's
/// ChampSim setup.
///
/// This is THE block-granularity constant for the whole workspace —
/// `dart-trace` (trace preprocessing, delta labels) and `dart-serve` /
/// `dart-net` (request decoding on the serving path) both re-export it
/// from here. It used to be duplicated in `dart_trace::record` and
/// `dart_serve::request` with only a comment tying them together; two
/// copies of the constant that defines what a "block" is cannot be
/// allowed to drift, because a mismatch silently shears the serving
/// path's deltas away from the labels the model was trained on.
pub const BLOCK_BITS: u32 = 6;

pub mod config;
pub mod configurator;
pub mod distill;
pub mod eval;
pub mod pipeline;
pub mod tabular_model;
pub mod tabularize;

pub use config::{DesignConstraints, PredictorConfig, TabularConfig};
pub use configurator::TableConfigurator;
pub use distill::{distill, DistillConfig};
pub use pipeline::{run_pipeline, PipelineArtifacts, PipelineConfig};
pub use tabular_model::TabularModel;
pub use tabularize::{tabularize, TabularizationReport};
