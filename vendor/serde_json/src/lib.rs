//! Vendored JSON text layer over the workspace's serde lookalike: parsing,
//! (pretty-)printing, `to_value`/`from_str`, and a `json!` macro.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Result alias matching `serde_json`'s signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize>(value: T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Build a [`Value`] literal.
///
/// Supports `null`, booleans, (nested) array and object literals with
/// string-literal keys, and arbitrary serializable expressions as values.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Recursive token muncher behind [`json!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    //////// array munching: accumulate elements in [] ////////
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    //////// object munching: (key tokens) (remaining tokens) (copy) ////////
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.entry(($($key)+).to_string(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.entry(($($key)+).to_string(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };

    //////// entry points ////////
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::ObjectBuilder::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object.finish()
        })
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

/// Accumulates object entries for the `json!` muncher; not public API.
#[doc(hidden)]
#[derive(Default)]
pub struct ObjectBuilder(Vec<(String, Value)>);

impl ObjectBuilder {
    /// Empty builder.
    pub fn new() -> ObjectBuilder {
        ObjectBuilder(Vec::new())
    }

    /// Append one `key: value` entry.
    pub fn entry(&mut self, key: String, value: Value) {
        self.0.push((key, value));
    }

    /// The accumulated fields in insertion order.
    pub fn finish(self) -> Vec<(String, Value)> {
        self.0
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        out.push_str("null"); // JSON has no NaN/Inf; match serde_json's null
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(width) => ("\n", " ".repeat(width * depth), " ".repeat(width * (depth + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, fv, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error("truncated \\u escape".to_string()));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(Error::msg)?;
                            let code = u32::from_str_radix(hex, 16).map_err(Error::msg)?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or(char::REPLACEMENT_CHARACTER));
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte position.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..]).map_err(Error::msg)?;
                    let ch = s.chars().next().unwrap();
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::msg)?;
        text.parse::<f64>().map(Value::Number).map_err(Error::msg)
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error(format!("expected `,`/`]`, got {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(Error(format!("expected `,`/`}}`, got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let v = json!({"name": "dart", "n": 3u32, "ok": true, "xs": vec![1u32, 2, 3]});
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_nested() {
        let v: Value = from_str(r#"{"a": [1, {"b": null}], "c": -2.5e1}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_f64), Some(-25.0));
        assert_eq!(v.get("a").and_then(|a| a.get(1)).and_then(|o| o.get("b")), Some(&Value::Null));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(Value::Number(42.0)).unwrap(), "42");
        assert_eq!(to_string(Value::Number(0.5)).unwrap(), "0.5");
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "line\n\"quoted\"\tπ".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(s, back);
    }
}
