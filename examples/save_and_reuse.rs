//! Persisting work: save a trained teacher's parameters, reload them into a
//! fresh model, and tabularize with the fused-FFN extension (paper §VIII
//! future work) — the workflow for iterating on table configurations
//! without retraining.
//!
//! ```sh
//! cargo run --release --example save_and_reuse
//! ```

use dart::core::config::TabularConfig;
use dart::core::eval::evaluate_tabular_f1;
use dart::core::tabularize::tabularize;
use dart::nn::model::{AccessPredictor, ModelConfig};
use dart::nn::serialize::{load_model, save_model};
use dart::nn::train::{evaluate_f1, train_bce, TrainConfig};
use dart::sim::{NullPrefetcher, SimConfig, Simulator};
use dart::trace::{build_dataset, workload_by_name, PreprocessConfig};

fn main() {
    let pre = PreprocessConfig {
        seq_len: 8,
        addr_segments: 5,
        seg_bits: 6,
        pc_segments: 1,
        delta_range: 32,
        lookforward: 20,
    };
    let workload = workload_by_name("lbm").unwrap();
    let trace = workload.generate(20_000, 17);
    let sim = Simulator::new(SimConfig::table_iii());
    let llc = sim.run(&trace, &mut NullPrefetcher, true).llc_trace.unwrap();
    let data = build_dataset(&llc, &pre, 4);
    let (train, test) = data.split(0.7);

    // Train once...
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 32,
        heads: 2,
        layers: 1,
        ffn_dim: 128,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let mut model = AccessPredictor::new(cfg.clone(), 5).unwrap();
    train_bce(&mut model, &train, &TrainConfig { epochs: 4, ..Default::default() });
    let f1 = evaluate_f1(&mut model, &test, 256);
    println!("trained student F1: {f1:.3}");

    // ...save, reload into a fresh instance, verify identity.
    let path = std::env::temp_dir().join("dart_student.params");
    save_model(&mut model, &path).expect("save");
    println!("saved {} bytes to {}", std::fs::metadata(&path).unwrap().len(), path.display());
    let mut reloaded = AccessPredictor::new(cfg, 999).unwrap();
    load_model(&mut reloaded, &path).expect("load");
    let f1_reloaded = evaluate_f1(&mut reloaded, &test, 256);
    assert!((f1 - f1_reloaded).abs() < 1e-9, "reload must be exact");
    println!("reloaded student F1: {f1_reloaded:.3} (identical)");

    // Tabularize the same trained model two ways without retraining.
    for (label, tab_cfg) in [
        (
            "two-kernel FFN",
            TabularConfig { k: 64, c: 2, fine_tune_epochs: 3, ..Default::default() },
        ),
        (
            "fused FFN (§VIII)",
            TabularConfig {
                k: 64,
                c: 2,
                fine_tune_epochs: 3,
                fuse_ffn: true,
                ..Default::default()
            },
        ),
    ] {
        let (table, _) = tabularize(&reloaded, &train.inputs, &tab_cfg);
        let tab_f1 = evaluate_tabular_f1(&table, &test, 256);
        println!("{label:<18} F1 {tab_f1:.3}  table storage {:>8} bytes", table.storage_bytes());
    }
    let _ = std::fs::remove_file(&path);
}
