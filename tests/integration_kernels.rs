//! Cross-crate integration: tabularization kernels against the live neural
//! layers they replace, plus property-based tests on the quantizer stack.

use dart::nn::init::InitRng;
use dart::nn::layers::{Layer, Linear, Msa};
use dart::nn::matrix::{cosine_similarity, Matrix};
use dart::pq::{AttentionTable, AttentionTableConfig, EncoderKind, LinearTable};
use proptest::prelude::*;

fn rand_matrix(r: usize, c: usize, seed: u64) -> Matrix {
    let mut rng = InitRng::new(seed);
    Matrix::from_fn(r, c, |_, _| rng.normal())
}

/// A trained linear layer and its table must agree strongly on data drawn
/// from the fitting distribution.
#[test]
fn linear_table_tracks_live_layer() {
    let mut rng = InitRng::new(17);
    let mut layer = Linear::new(16, 8, &mut rng);
    // Gaussian inputs are the hardest case for PQ (no cluster structure),
    // so use 4-dim subspaces where 256 prototypes quantize well.
    let train = rand_matrix(1500, 16, 23);
    let table = LinearTable::fit(
        &train,
        &layer.w.value,
        layer.b.value.as_slice(),
        4,
        256,
        EncoderKind::Argmin,
        5,
    );
    let test = rand_matrix(64, 16, 29);
    let exact = layer.forward(&test, false);
    let approx = table.query(&test);
    let sim = cosine_similarity(exact.as_slice(), approx.as_slice());
    assert!(sim > 0.9, "cosine {sim}");
}

/// The attention kernel must track the sigmoid-attention surrogate of a live
/// MSA head on in-distribution data.
#[test]
fn attention_table_tracks_sigmoid_attention() {
    let (t, dh) = (8usize, 8usize);
    let q = rand_matrix(200 * t, dh, 31);
    let k = rand_matrix(200 * t, dh, 37);
    let v = rand_matrix(200 * t, dh, 41);
    let cfg = AttentionTableConfig { k: 256, ck: 2, ct: 2, ..Default::default() };
    let table = AttentionTable::fit(&q, &k, &v, t, &cfg);

    let mut sims = Vec::new();
    for n in 0..20 {
        let qs = q.slice_rows(n * t, (n + 1) * t);
        let ks = k.slice_rows(n * t, (n + 1) * t);
        let vs = v.slice_rows(n * t, (n + 1) * t);
        let approx = table.query(&qs, &ks, &vs);
        // Reference: sigmoid(QK^T / sqrt(dh)) V.
        let mut scores = qs.matmul_transb(&ks);
        scores.scale_assign(1.0 / (dh as f32).sqrt());
        let exact = scores.map(|x| 1.0 / (1.0 + (-x).exp())).matmul(&vs);
        sims.push(cosine_similarity(exact.as_slice(), approx.as_slice()));
    }
    let mean = sims.iter().sum::<f32>() / sims.len() as f32;
    assert!(mean > 0.85, "mean cosine {mean}");
}

/// MSA wired through `dart-nn` must be shape-stable for any head split.
#[test]
fn msa_head_splits() {
    for heads in [1usize, 2, 4, 8] {
        let mut rng = InitRng::new(heads as u64);
        let mut msa = Msa::new(16, heads, 4, &mut rng);
        let x = rand_matrix(8, 16, heads as u64 + 100);
        assert_eq!(msa.forward(&x, false).shape(), (8, 16));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Encoding then reconstructing never increases distance vs. any other
    /// prototype choice (arg-min optimality of the k-means encoder).
    #[test]
    fn argmin_encoding_is_nearest(seed in 0u64..1000, k in 2usize..8, c in 1usize..4) {
        let data = rand_matrix(120, 8, seed);
        let pq = dart::pq::ProductQuantizer::fit(&data, c, k, EncoderKind::Argmin, seed);
        for i in 0..8 {
            let row = data.row(i);
            let codes = pq.encode_row(row);
            for (ci, &(lo, hi)) in pq.bounds().iter().enumerate() {
                let sub = &row[lo..hi];
                let chosen: f32 = sub
                    .iter()
                    .zip(pq.proto(ci, codes[ci]))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                for p in 0..pq.num_protos() {
                    let alt: f32 = sub
                        .iter()
                        .zip(pq.proto(ci, p))
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    prop_assert!(chosen <= alt + 1e-4);
                }
            }
        }
    }

    /// The linear kernel is exact in the limit: when every input row is a
    /// prototype, the table reproduces the dense result.
    #[test]
    fn linear_table_exact_on_prototypes(seed in 0u64..500) {
        let base = rand_matrix(4, 6, seed);
        let train = Matrix::vstack(&[base.clone(), base.clone(), base.clone()]);
        let w = rand_matrix(3, 6, seed + 1);
        let b = vec![0.5, -0.5, 0.0];
        let table = LinearTable::fit(&train, &w, &b, 2, 4, EncoderKind::Argmin, seed);
        let exact = base.matmul_transb(&w).add_row_broadcast(&b);
        let approx = table.query(&base);
        for i in 0..exact.len() {
            prop_assert!((exact.as_slice()[i] - approx.as_slice()[i]).abs() < 1e-3);
        }
    }

    /// Bitmap round trip: every delta in range maps to a bit and back.
    #[test]
    fn delta_bitmap_roundtrip(range in 1usize..128) {
        let cfg = dart::trace::PreprocessConfig { delta_range: range, ..Default::default() };
        for d in (-(range as i64)..=range as i64).filter(|&d| d != 0) {
            let bit = cfg.delta_to_bit(d).expect("in range");
            prop_assert!(bit < cfg.output_dim());
            prop_assert_eq!(cfg.bit_to_delta(bit), d);
        }
        prop_assert_eq!(cfg.delta_to_bit(0), None);
        prop_assert_eq!(cfg.delta_to_bit(range as i64 + 1), None);
    }
}
