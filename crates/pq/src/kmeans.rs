//! k-means prototype learning (paper Eq. 5): k-means++ seeding followed by
//! Lloyd iterations, with rayon-parallel assignment steps.

use dart_nn::init::InitRng;
use dart_nn::matrix::{sq_dist, Matrix};
use rayon::prelude::*;

/// Result of clustering: `k x dim` centroids plus the final assignment.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Learned centroids (`k x dim`). Rows of empty clusters are re-seeded
    /// from the farthest points, so all `k` rows are meaningful.
    pub centroids: Matrix,
    /// Cluster index of each training row.
    pub assignments: Vec<usize>,
    /// Final sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations actually executed.
    pub iterations: usize,
}

/// k-means configuration.
#[derive(Clone, Copy, Debug)]
pub struct KMeansConfig {
    /// Number of clusters `K`.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Relative inertia improvement below which iteration stops.
    pub tol: f64,
    /// PRNG seed for k-means++ seeding.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 16, max_iters: 25, tol: 1e-4, seed: 0x5EED }
    }
}

/// Run k-means on the rows of `data` (`n x dim`).
///
/// When `n < k`, the surplus centroids replicate existing rows with tiny
/// jitter so the centroid count is always exactly `k` (table shapes in the
/// kernels depend on it).
pub fn kmeans(data: &Matrix, config: &KMeansConfig) -> KMeansResult {
    assert!(config.k > 0, "k must be positive");
    assert!(data.rows() > 0, "cannot cluster an empty dataset");
    let n = data.rows();
    let dim = data.cols();
    let k = config.k;
    let mut rng = InitRng::new(config.seed);

    // --- k-means++ seeding -------------------------------------------------
    let mut centroids = Matrix::zeros(k, dim);
    let first = rng.below(n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut min_d2: Vec<f32> = (0..n).map(|i| sq_dist(data.row(i), centroids.row(0))).collect();
    for c in 1..k {
        let total: f64 = min_d2.iter().map(|&d| d as f64).sum();
        let chosen = if total <= f64::EPSILON {
            rng.below(n)
        } else {
            let mut target = rng.next_f32() as f64 * total;
            let mut pick = n - 1;
            for (i, &d) in min_d2.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centroids.row_mut(c).copy_from_slice(data.row(chosen));
        for (i, slot) in min_d2.iter_mut().enumerate() {
            let d = sq_dist(data.row(i), centroids.row(c));
            if d < *slot {
                *slot = d;
            }
        }
    }

    // --- Lloyd iterations ---------------------------------------------------
    let mut assignments = vec![0usize; n];
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step (parallel over rows).
        let new: Vec<(usize, f32)> =
            (0..n).into_par_iter().map(|i| nearest_centroid(data.row(i), &centroids)).collect();
        let new_inertia: f64 = new.iter().map(|&(_, d)| d as f64).sum();
        for (i, &(a, _)) in new.iter().enumerate() {
            assignments[i] = a;
        }

        // Update step.
        let mut sums = Matrix::zeros(k, dim);
        let mut counts = vec![0usize; k];
        for (i, &a) in assignments.iter().enumerate() {
            counts[a] += 1;
            let s = sums.row_mut(a);
            for (sv, &dv) in s.iter_mut().zip(data.row(i)) {
                *sv += dv;
            }
        }
        #[allow(clippy::needless_range_loop)] // c indexes counts, sums, and centroids in lockstep
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f32;
                let row = sums.row(c).to_vec();
                for (cv, sv) in centroids.row_mut(c).iter_mut().zip(row) {
                    *cv = sv * inv;
                }
            } else {
                // Re-seed empty cluster from the point farthest from its centroid.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_dist(data.row(a), centroids.row(assignments[a]));
                        let db = sq_dist(data.row(b), centroids.row(assignments[b]));
                        da.partial_cmp(&db).unwrap()
                    })
                    .unwrap_or(0);
                let jitter = 1e-4 * (c as f32 + 1.0);
                let src = data.row(far).to_vec();
                for (cv, sv) in centroids.row_mut(c).iter_mut().zip(src) {
                    *cv = sv + jitter;
                }
            }
        }

        let improved = inertia.is_infinite()
            || (inertia - new_inertia).abs() > config.tol * inertia.abs().max(1e-12);
        inertia = new_inertia;
        if !improved {
            break;
        }
    }

    // Final assignment against the last centroid update.
    let finals: Vec<(usize, f32)> =
        (0..n).into_par_iter().map(|i| nearest_centroid(data.row(i), &centroids)).collect();
    inertia = finals.iter().map(|&(_, d)| d as f64).sum();
    for (i, (a, _)) in finals.into_iter().enumerate() {
        assignments[i] = a;
    }

    KMeansResult { centroids, assignments, inertia, iterations }
}

/// Index and squared distance of the nearest centroid to `point`.
#[inline]
pub fn nearest_centroid(point: &[f32], centroids: &Matrix) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for c in 0..centroids.rows() {
        let d = sq_dist(point, centroids.row(c));
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// [`nearest_centroid`] over a flat row-major centroid block (`k * dim`
/// entries) — the argmin encoder's scan over one codebook-arena subspace.
/// Tie-breaking (strict `<`, first wins) matches [`nearest_centroid`]
/// exactly, so codes are identical to the matrix-backed scan.
#[inline]
pub fn nearest_centroid_flat(point: &[f32], centroids: &[f32], dim: usize) -> (usize, f32) {
    debug_assert_eq!(point.len(), dim);
    debug_assert_eq!(centroids.len() % dim.max(1), 0);
    let mut best = 0usize;
    let mut best_d = f32::INFINITY;
    for (c, row) in centroids.chunks_exact(dim).enumerate() {
        let d = sq_dist(point, row);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, centers: &[(f32, f32)], spread: f32, seed: u64) -> Matrix {
        let mut rng = InitRng::new(seed);
        let mut data = Matrix::zeros(n_per * centers.len(), 2);
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..n_per {
                let r = ci * n_per + i;
                data.set(r, 0, cx + rng.normal() * spread);
                data.set(r, 1, cy + rng.normal() * spread);
            }
        }
        data
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let data = blobs(50, &[(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)], 0.5, 7);
        let res = kmeans(&data, &KMeansConfig { k: 3, seed: 3, ..Default::default() });
        // Every blob should map to a single cluster.
        for blob in 0..3 {
            let first = res.assignments[blob * 50];
            for i in 0..50 {
                assert_eq!(res.assignments[blob * 50 + i], first, "blob {blob} split");
            }
        }
        // Inertia must be small relative to the blob separation.
        assert!(res.inertia < 150.0 * 1.0, "inertia {}", res.inertia);
    }

    #[test]
    fn inertia_nonincreasing_with_more_clusters() {
        let data = blobs(40, &[(0.0, 0.0), (5.0, 5.0)], 1.0, 11);
        let i2 = kmeans(&data, &KMeansConfig { k: 2, seed: 1, ..Default::default() }).inertia;
        let i8 = kmeans(&data, &KMeansConfig { k: 8, seed: 1, ..Default::default() }).inertia;
        assert!(i8 <= i2 + 1e-6, "k=8 inertia {i8} > k=2 inertia {i2}");
    }

    #[test]
    fn handles_fewer_points_than_clusters() {
        let data = Matrix::from_vec(2, 2, vec![0.0, 0.0, 1.0, 1.0]);
        let res = kmeans(&data, &KMeansConfig { k: 4, seed: 5, ..Default::default() });
        assert_eq!(res.centroids.rows(), 4);
        assert!(res.assignments.iter().all(|&a| a < 4));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = blobs(30, &[(0.0, 0.0), (3.0, 3.0)], 0.8, 13);
        let a = kmeans(&data, &KMeansConfig { k: 4, seed: 9, ..Default::default() });
        let b = kmeans(&data, &KMeansConfig { k: 4, seed: 9, ..Default::default() });
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn single_cluster_is_mean() {
        let data = Matrix::from_vec(4, 1, vec![1.0, 2.0, 3.0, 4.0]);
        let res = kmeans(&data, &KMeansConfig { k: 1, seed: 2, ..Default::default() });
        assert!((res.centroids.get(0, 0) - 2.5).abs() < 1e-5);
    }

    #[test]
    fn assignments_point_to_nearest() {
        let data = blobs(25, &[(0.0, 0.0), (8.0, 0.0)], 0.7, 17);
        let res = kmeans(&data, &KMeansConfig { k: 2, seed: 4, ..Default::default() });
        for i in 0..data.rows() {
            let (nearest, _) = nearest_centroid(data.row(i), &res.centroids);
            assert_eq!(res.assignments[i], nearest);
        }
    }
}
