//! Synthetic multi-stream load generation, reusing the `dart-trace`
//! synthetic SPEC-like workload patterns: stream `i` replays workload
//! `i % 8` with its own seed, and streams are interleaved round-robin so
//! every shard sees concurrent traffic.
//!
//! [`run_load`] drives a started [`ServeRuntime`] with a request sequence
//! under bounded back-pressure and reports throughput, latency
//! percentiles from the runtime's shared latency histogram, and failure
//! accounting — the one verdict function behind the `loadgen` binary's
//! exit code.

use std::time::Instant;

use dart_trace::spec_workloads;

use crate::request::PrefetchRequest;
use crate::runtime::ServeRuntime;

/// Load-generator settings.
#[derive(Clone, Copy, Debug)]
pub struct LoadGenConfig {
    /// Number of concurrent client streams.
    pub streams: usize,
    /// Accesses generated per stream.
    pub accesses_per_stream: usize,
    /// Base seed; stream `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig { streams: 32, accesses_per_stream: 256, seed: 0x5EED }
    }
}

/// Generate the interleaved request sequence.
///
/// The result has `streams * accesses_per_stream` requests; position
/// `k * streams + i` is stream `i`'s `k`-th access, so per-stream order is
/// the workload's access order while the global sequence mixes all streams.
pub fn generate_requests(cfg: &LoadGenConfig) -> Vec<PrefetchRequest> {
    let workloads = spec_workloads();
    let per_stream: Vec<Vec<PrefetchRequest>> = (0..cfg.streams)
        .map(|i| {
            let w = &workloads[i % workloads.len()];
            w.generate(cfg.accesses_per_stream, cfg.seed.wrapping_add(i as u64))
                .into_iter()
                .map(|rec| PrefetchRequest { stream_id: i as u64, pc: rec.pc, addr: rec.addr })
                .collect()
        })
        .collect();

    let mut out = Vec::with_capacity(cfg.streams * cfg.accesses_per_stream);
    for k in 0..cfg.accesses_per_stream {
        for stream in &per_stream {
            out.push(stream[k]);
        }
    }
    out
}

/// Outcome of one [`run_load`] drive: delivery accounting plus the
/// latency/batching numbers of the runtime's live stats snapshot.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests submitted to the runtime.
    pub submitted: usize,
    /// Responses drained back (delivery accounting says this equals
    /// `submitted` unless a worker died).
    pub responses: usize,
    /// Responses that carried `error: Some(_)`.
    pub failures: usize,
    /// Up to 8 distinct failure reasons, in first-seen order.
    pub failure_reasons: Vec<String>,
    /// Warm-stream predictions made (from the stats snapshot).
    pub predictions: u64,
    /// Wall-clock seconds from first submit to idle.
    pub elapsed_s: f64,
    /// p50 request latency in nanoseconds, from the shared histogram.
    pub p50_latency_ns: u64,
    /// p99 request latency in nanoseconds, from the shared histogram.
    pub p99_latency_ns: u64,
    /// Mean coalesced batch size.
    pub mean_batch: f64,
}

impl LoadReport {
    /// Responses delivered per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.responses as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// True when every submitted request came back and none failed — the
    /// `loadgen` binary exits non-zero when this is false.
    pub fn is_ok(&self) -> bool {
        self.failures == 0 && self.responses == self.submitted
    }

    /// One-paragraph human summary (used by the `loadgen` binary).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} requests in {:.3}s ({:.0} resp/s), {} predictions, \
             p50 {:.1}us p99 {:.1}us, mean batch {:.1}, {} failure(s)",
            self.submitted,
            self.elapsed_s,
            self.throughput_rps(),
            self.predictions,
            self.p50_latency_ns as f64 / 1_000.0,
            self.p99_latency_ns as f64 / 1_000.0,
            self.mean_batch,
            self.failures,
        );
        if self.responses != self.submitted {
            s.push_str(&format!(" [LOST {} response(s)]", self.submitted - self.responses));
        }
        for reason in &self.failure_reasons {
            s.push_str(&format!("\n  failure: {reason}"));
        }
        s
    }
}

/// Drive `runtime` with `reqs` in per-round waves (one access per stream
/// per round — the generator's natural interleave) under bounded
/// back-pressure, wait for it to go idle, then drain every response and
/// report.
///
/// Latency percentiles, prediction counts and batch sizes come from
/// [`ServeRuntime::stats_snapshot`] — the same shared histogram the
/// metrics exposition renders, not a loadgen-private measurement.
pub fn run_load(runtime: &ServeRuntime, reqs: &[PrefetchRequest], streams: usize) -> LoadReport {
    let streams = streams.max(1);
    let high_watermark = (streams * 4).max(1024) as u64;
    let started = Instant::now();
    for round in reqs.chunks(streams) {
        runtime.submit_all(round.iter().copied());
        if runtime.outstanding() > high_watermark {
            runtime.wait_below(high_watermark / 2);
        }
    }
    runtime.wait_idle();
    let elapsed_s = started.elapsed().as_secs_f64();

    let responses = runtime.drain_completed();
    let mut failures = 0usize;
    let mut failure_reasons: Vec<String> = Vec::new();
    for resp in &responses {
        if let Some(err) = &resp.error {
            failures += 1;
            if failure_reasons.len() < 8 && !failure_reasons.iter().any(|r| r == err) {
                failure_reasons.push(err.clone());
            }
        }
    }

    let stats = runtime.stats_snapshot();
    LoadReport {
        submitted: reqs.len(),
        responses: responses.len(),
        failures,
        failure_reasons,
        predictions: stats.predictions,
        elapsed_s,
        p50_latency_ns: stats.p50_latency_ns,
        p99_latency_ns: stats.p99_latency_ns,
        mean_batch: stats.mean_batch(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_interleave() {
        let cfg = LoadGenConfig { streams: 4, accesses_per_stream: 10, seed: 1 };
        let reqs = generate_requests(&cfg);
        assert_eq!(reqs.len(), 40);
        // Round-robin: positions 0..4 are streams 0..4's first accesses.
        for i in 0..4 {
            assert_eq!(reqs[i].stream_id, i as u64);
            assert_eq!(reqs[4 + i].stream_id, i as u64);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = LoadGenConfig { streams: 3, accesses_per_stream: 20, seed: 7 };
        assert_eq!(generate_requests(&cfg), generate_requests(&cfg));
        let other = LoadGenConfig { seed: 8, ..cfg };
        assert_ne!(generate_requests(&cfg), generate_requests(&other));
    }

    #[test]
    fn streams_differ_even_on_same_workload() {
        // Streams 0 and 8 share workload kind but use different seeds.
        let cfg = LoadGenConfig { streams: 9, accesses_per_stream: 30, seed: 3 };
        let reqs = generate_requests(&cfg);
        let s0: Vec<u64> = reqs.iter().filter(|r| r.stream_id == 0).map(|r| r.addr).collect();
        let s8: Vec<u64> = reqs.iter().filter(|r| r.stream_id == 8).map(|r| r.addr).collect();
        assert_ne!(s0, s8);
    }
}
