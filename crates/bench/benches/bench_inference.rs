//! Criterion: end-to-end predictor inference — Teacher vs Student vs DART
//! tables (the software analogue of Table V's 170x / 9.4x latency story;
//! software ratios differ from the paper's hardware model but the ordering
//! must hold).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dart_core::config::TabularConfig;
use dart_core::tabularize::tabularize;
use dart_nn::init::InitRng;
use dart_nn::matrix::Matrix;
use dart_nn::model::{AccessPredictor, ModelConfig, SequenceModel};

fn rand_inputs(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = InitRng::new(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.next_f32())
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor_inference");
    group.sample_size(30);
    let (t, di, dout) = (16usize, 8usize, 128usize);

    let mut teacher = AccessPredictor::new(ModelConfig::teacher(di, dout, t), 1).unwrap();
    let mut student = AccessPredictor::new(ModelConfig::student(di, dout, t), 2).unwrap();
    let train = rand_inputs(400 * t, di, 3);
    let tab_cfg = TabularConfig { k: 128, c: 2, fine_tune_epochs: 0, ..Default::default() };
    let (dart, _) = tabularize(&student, &train, &tab_cfg);

    let x = rand_inputs(t, di, 4);
    group.bench_function("teacher_L4_D256", |b| {
        b.iter(|| black_box(teacher.forward_logits(&x, false)))
    });
    group.bench_function("student_L1_D32", |b| {
        b.iter(|| black_box(student.forward_logits(&x, false)))
    });
    group.bench_function("dart_tables_K128_C2", |b| b.iter(|| black_box(dart.forward_probs(&x))));
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
