//! Lock-order checking for the serving stack's hot-path mutexes.
//!
//! With the `lockcheck` cargo feature **off** (the default) this module is
//! pure re-exports: [`Mutex`], [`MutexGuard`] and [`Condvar`] are the
//! `std::sync` types and [`named_mutex`] forwards to `Mutex::new`, so the
//! serving crates pay nothing for importing from here.
//!
//! With the feature **on**, every mutex constructed through [`named_mutex`]
//! participates in a process-wide *lock-order graph*: when a thread
//! acquires lock `B` while holding lock `A`, the edge `A → B` is recorded;
//! if the reverse path `B → … → A` was ever observed (on any thread), the
//! acquisition panics with both lock names — turning a latent AB/BA
//! deadlock into a deterministic test failure on the *first* inverted
//! acquisition, whether or not the schedules ever actually collide.
//!
//! Nodes are lock *names*, not instances: every `net.conn_outbox` mutex is
//! one node. That is deliberate — a per-connection lock class must have a
//! single consistent rank against `net.conns`, whichever connection is
//! involved. The tracked [`Condvar`] releases the holder's bookkeeping for
//! the duration of the wait (the mutex really is unlocked) and re-records
//! the re-acquisition, so edges established across a wakeup are seen too.
//!
//! The checker's own synchronization uses `std::sync` directly and is
//! invisible to the graph.

#[cfg(not(feature = "lockcheck"))]
mod imp {
    pub type Mutex<T> = std::sync::Mutex<T>;
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
    pub type Condvar = std::sync::Condvar;

    /// Feature off: the name is documentation, the mutex is `std`'s.
    pub fn named_mutex<T>(_name: &'static str, value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

#[cfg(feature = "lockcheck")]
mod imp {
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::ops::{Deref, DerefMut};
    use std::sync::{LockResult, OnceLock, PoisonError, WaitTimeoutResult};
    use std::time::Duration;

    /// `Mutex::new` without a name still participates, as one shared node;
    /// name hot-path locks via [`named_mutex`] so reports are readable.
    const UNNAMED: &str = "<unnamed>";

    type Graph = HashMap<&'static str, HashSet<&'static str>>;

    fn graph() -> &'static std::sync::Mutex<Graph> {
        static GRAPH: OnceLock<std::sync::Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| std::sync::Mutex::new(HashMap::new()))
    }

    thread_local! {
        /// Names of the locks this thread currently holds, in acquisition
        /// order.
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// Is there a path `from → … → to` in the recorded order graph?
    fn reaches(g: &Graph, from: &'static str, to: &'static str) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = g.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    }

    /// Record an acquisition attempt of `name`: check it against every lock
    /// this thread holds, add the order edges, then push it as held.
    /// Panics (before blocking) if the acquisition inverts a recorded order.
    fn record_acquire(name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if !held.is_empty() {
                // The checker's own lock: std, poison-recovered, untracked.
                let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
                for &prev in held.iter() {
                    if prev == name {
                        panic!(
                            "lock-order cycle: acquiring `{name}` while already holding \
                             `{prev}` (same lock class twice on one thread)"
                        );
                    }
                    if reaches(&g, name, prev) {
                        panic!(
                            "lock-order cycle: acquiring `{name}` while holding `{prev}`, \
                             but the order `{name}` -> `{prev}` is already established \
                             elsewhere — these two locks deadlock under contention"
                        );
                    }
                    g.entry(prev).or_default().insert(name);
                }
            }
            held.push(name);
        });
    }

    /// Pop the most recent `name` from the held stack (guard drop, or the
    /// unlock half of a condvar wait).
    fn record_release(name: &'static str) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&n| n == name) {
                held.remove(pos);
            }
        });
    }

    /// An order-tracked mutex. Same surface as `std::sync::Mutex` for the
    /// methods the serving crates use (`new`/`lock`).
    pub struct Mutex<T> {
        name: &'static str,
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Mutex<T> {
            Mutex { name: UNNAMED, inner: std::sync::Mutex::new(value) }
        }

        pub(super) fn named(name: &'static str, value: T) -> Mutex<T> {
            Mutex { name, inner: std::sync::Mutex::new(value) }
        }

        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            record_acquire(self.name);
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard { name: self.name, inner: Some(g) }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    name: self.name,
                    inner: Some(p.into_inner()),
                })),
            }
        }
    }

    impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").field("name", &self.name).field("inner", &self.inner).finish()
        }
    }

    pub struct MutexGuard<'a, T> {
        name: &'static str,
        /// `None` only transiently, while a condvar wait owns the inner
        /// guard; `Drop` then skips the release bookkeeping.
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<'a, T> MutexGuard<'a, T> {
        /// Hand the raw guard to a condvar wait, releasing this thread's
        /// bookkeeping (the mutex is about to be unlocked for real).
        fn into_parts(mut self) -> (&'static str, std::sync::MutexGuard<'a, T>) {
            let inner = self.inner.take().expect("guard already dismantled");
            record_release(self.name);
            (self.name, inner)
        }

        fn from_parts(name: &'static str, inner: std::sync::MutexGuard<'a, T>) -> Self {
            MutexGuard { name, inner: Some(inner) }
        }
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard already dismantled")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard already dismantled")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.take().is_some() {
                record_release(self.name);
            }
        }
    }

    /// Condvar over tracked guards: unlock/relock bookkeeping mirrors what
    /// the underlying wait does to the mutex.
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        #[allow(clippy::new_without_default)] // mirrors std::sync::Condvar::new
        pub fn new() -> Condvar {
            Condvar { inner: std::sync::Condvar::new() }
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let (name, inner) = guard.into_parts();
            let res = self.inner.wait(inner);
            // Re-acquired: re-check order against whatever else the thread
            // still holds (edges across a wakeup count too).
            record_acquire(name);
            match res {
                Ok(g) => Ok(MutexGuard::from_parts(name, g)),
                Err(p) => Err(PoisonError::new(MutexGuard::from_parts(name, p.into_inner()))),
            }
        }

        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            let (name, inner) = guard.into_parts();
            let res = self.inner.wait_timeout(inner, dur);
            record_acquire(name);
            match res {
                Ok((g, t)) => Ok((MutexGuard::from_parts(name, g), t)),
                Err(p) => {
                    let (g, t) = p.into_inner();
                    Err(PoisonError::new((MutexGuard::from_parts(name, g), t)))
                }
            }
        }

        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    /// A tracked mutex whose acquisitions are checked under `name`.
    pub fn named_mutex<T>(name: &'static str, value: T) -> Mutex<T> {
        Mutex::named(name, value)
    }
}

pub use imp::{named_mutex, Condvar, Mutex, MutexGuard};

#[cfg(all(test, feature = "lockcheck"))]
mod tests {
    use super::*;
    use std::sync::PoisonError;

    fn catch(f: impl FnOnce() + std::panic::UnwindSafe) -> Option<String> {
        std::panic::catch_unwind(f).err().map(|e| {
            e.downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default()
        })
    }

    #[test]
    fn consistent_order_is_silent() {
        let a = named_mutex("lctest.ok_a", 0u32);
        let b = named_mutex("lctest.ok_b", 0u32);
        for _ in 0..3 {
            let ga = a.lock().unwrap_or_else(PoisonError::into_inner);
            let gb = b.lock().unwrap_or_else(PoisonError::into_inner);
            drop(gb);
            drop(ga);
        }
        // Disjoint re-acquisition after release is not nesting.
        drop(a.lock().unwrap_or_else(PoisonError::into_inner));
        drop(b.lock().unwrap_or_else(PoisonError::into_inner));
    }

    #[test]
    fn inverted_order_panics_with_both_names() {
        let a = named_mutex("lctest.cycle_a", 0u32);
        let b = named_mutex("lctest.cycle_b", 0u32);
        {
            let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
            let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
        }
        let msg = catch(|| {
            let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
            let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
        })
        .expect("inverted acquisition must panic");
        assert!(msg.contains("lctest.cycle_a"), "missing first lock name: {msg}");
        assert!(msg.contains("lctest.cycle_b"), "missing second lock name: {msg}");
        assert!(msg.contains("lock-order cycle"), "{msg}");
    }

    #[test]
    fn transitive_cycle_is_caught() {
        let a = named_mutex("lctest.tri_a", ());
        let b = named_mutex("lctest.tri_b", ());
        let c = named_mutex("lctest.tri_c", ());
        {
            let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
            let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
        }
        {
            let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
            let _gc = c.lock().unwrap_or_else(PoisonError::into_inner);
        }
        let msg = catch(|| {
            let _gc = c.lock().unwrap_or_else(PoisonError::into_inner);
            let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
        })
        .expect("c-then-a closes the a->b->c cycle");
        assert!(msg.contains("lctest.tri_a") && msg.contains("lctest.tri_c"), "{msg}");
    }

    #[test]
    fn same_class_twice_panics() {
        let a1 = named_mutex("lctest.dup", ());
        let a2 = named_mutex("lctest.dup", ());
        let msg = catch(|| {
            let _g1 = a1.lock().unwrap_or_else(PoisonError::into_inner);
            let _g2 = a2.lock().unwrap_or_else(PoisonError::into_inner);
        })
        .expect("same lock class nested must panic");
        assert!(msg.contains("lctest.dup"), "{msg}");
    }

    #[test]
    fn condvar_wait_releases_bookkeeping() {
        use std::sync::Arc;
        let m = Arc::new(named_mutex("lctest.cv_m", false));
        let other = Arc::new(named_mutex("lctest.cv_other", ()));
        let cv = Arc::new(Condvar::new());

        let waiter = {
            let (m, cv) = (m.clone(), cv.clone());
            std::thread::spawn(move || {
                let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
                while !*g {
                    g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
            })
        };
        // While the waiter sleeps inside `wait`, cv_m is unlocked and must
        // not be recorded as held by anyone: locking other-then-m here
        // establishes the only edges, then waking the waiter exercises the
        // re-acquire path.
        {
            let _go = other.lock().unwrap_or_else(PoisonError::into_inner);
            let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
            *g = true;
        }
        cv.notify_all();
        waiter.join().unwrap();
    }
}
