//! Irregular Stream Buffer (Jain & Lin, MICRO 2013), simplified.
//!
//! ISB linearizes irregular accesses by giving each PC-localized stream a
//! *structural* address space in which temporally-adjacent physical blocks
//! become spatially adjacent; prefetching then walks structural neighbours.
//!
//! This implementation keeps the essential mechanism — PC-localized
//! training of temporal successor pairs and chained successor prefetching —
//! with bounded tables evicted in FIFO order (Table IX budgets ISB at 8 KB;
//! entry counts below match that scale).

use std::collections::{HashMap, VecDeque};

use dart_sim::{LlcAccess, Prefetcher};

/// Maximum learned successor pairs (~8 KB at 16 B/pair).
const PAIR_CAPACITY: usize = 512;
/// Tracked PC streams.
const STREAM_CAPACITY: usize = 64;

/// Simplified ISB prefetcher.
#[derive(Clone, Debug)]
pub struct Isb {
    /// Per-PC last accessed block.
    last_by_pc: HashMap<u64, u64>,
    pc_order: VecDeque<u64>,
    /// Temporal successor map: block -> next block (same PC stream).
    pairs: HashMap<u64, u64>,
    pair_order: VecDeque<u64>,
    degree: usize,
    latency: u64,
}

impl Isb {
    /// New ISB with the paper's Table IX latency (≈30 cycles) and degree 2.
    pub fn new() -> Isb {
        Isb::with_params(30, 2)
    }

    /// Parameterized constructor for ablations.
    pub fn with_params(latency: u64, degree: usize) -> Isb {
        Isb {
            last_by_pc: HashMap::new(),
            pc_order: VecDeque::new(),
            pairs: HashMap::new(),
            pair_order: VecDeque::new(),
            degree: degree.max(1),
            latency,
        }
    }

    fn remember_pc(&mut self, pc: u64, block: u64) {
        if self.last_by_pc.insert(pc, block).is_none() {
            self.pc_order.push_back(pc);
            if self.pc_order.len() > STREAM_CAPACITY {
                if let Some(old) = self.pc_order.pop_front() {
                    self.last_by_pc.remove(&old);
                }
            }
        }
    }

    fn learn_pair(&mut self, prev: u64, next: u64) {
        if prev == next {
            return;
        }
        if self.pairs.insert(prev, next).is_none() {
            self.pair_order.push_back(prev);
            if self.pair_order.len() > PAIR_CAPACITY {
                if let Some(old) = self.pair_order.pop_front() {
                    self.pairs.remove(&old);
                }
            }
        }
    }
}

impl Default for Isb {
    fn default() -> Self {
        Isb::new()
    }
}

impl Prefetcher for Isb {
    fn name(&self) -> &str {
        "ISB"
    }

    fn latency(&self) -> u64 {
        self.latency
    }

    fn on_access(&mut self, access: &LlcAccess) -> Vec<u64> {
        // Train: link the previous block of this PC stream to this one.
        if let Some(&prev) = self.last_by_pc.get(&access.pc) {
            self.learn_pair(prev, access.block);
        }
        self.remember_pc(access.pc, access.block);

        // Predict: walk the successor chain.
        let mut out = Vec::with_capacity(self.degree);
        let mut cursor = access.block;
        for _ in 0..self.degree {
            match self.pairs.get(&cursor) {
                Some(&next) => {
                    out.push(next);
                    cursor = next;
                }
                None => break,
            }
        }
        out
    }

    fn storage_bytes(&self) -> u64 {
        // Pairs at 16 B (two block addresses) + PC streams at 16 B.
        (PAIR_CAPACITY * 16 + STREAM_CAPACITY * 16) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(seq: usize, pc: u64, block: u64) -> LlcAccess {
        LlcAccess { seq, instr_id: seq as u64 * 4, pc, addr: block << 6, block, hit: false }
    }

    #[test]
    fn learns_irregular_repeating_sequence() {
        // A pointer-chase loop with an irregular but *repeating* block
        // sequence — exactly what ISB exists for and BO cannot catch.
        let seq = [100u64, 907, 23, 5_000, 412, 88];
        let mut isb = Isb::new();
        // First pass: training.
        for (i, &b) in seq.iter().enumerate() {
            let _ = isb.on_access(&access(i, 0x400, b));
        }
        // Second pass: successors should be predicted.
        let pf = isb.on_access(&access(100, 0x400, 100));
        assert_eq!(pf[0], 907, "expected successor of 100");
        assert_eq!(pf[1], 23, "degree-2 chain");
    }

    #[test]
    fn streams_are_pc_localized() {
        let mut isb = Isb::new();
        // PC A: 1 -> 2 ; PC B: 10 -> 20, interleaved.
        let _ = isb.on_access(&access(0, 0xA, 1));
        let _ = isb.on_access(&access(1, 0xB, 10));
        let _ = isb.on_access(&access(2, 0xA, 2));
        let _ = isb.on_access(&access(3, 0xB, 20));
        // Successor of 1 must be 2 (PC A), not 10/20 (PC B interleaving).
        let pf = isb.on_access(&access(4, 0xC, 1));
        assert_eq!(pf[0], 2);
        let pf = isb.on_access(&access(5, 0xC, 10));
        assert_eq!(pf[0], 20);
    }

    #[test]
    fn capacity_is_bounded() {
        let mut isb = Isb::new();
        for i in 0..10_000u64 {
            let _ = isb.on_access(&access(i as usize, 0x400 + i % 200, i * 7));
        }
        assert!(isb.pairs.len() <= PAIR_CAPACITY);
        assert!(isb.last_by_pc.len() <= STREAM_CAPACITY);
    }

    #[test]
    fn no_prediction_for_unseen_blocks() {
        let mut isb = Isb::new();
        let pf = isb.on_access(&access(0, 0x1, 42));
        assert!(pf.is_empty());
    }

    #[test]
    fn storage_is_table_ix_scale() {
        assert!(Isb::new().storage_bytes() <= 16 << 10);
    }
}
