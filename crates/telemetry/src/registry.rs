//! A named registry of live metric cells with a plaintext render.
//!
//! Registration (startup / first-use path) takes a mutex; the returned
//! `Arc` cells are recorded into lock-free afterwards — the registry is
//! never touched again on the hot path. [`global`] is the process-wide
//! instance the kernel profiling hooks register into; components that
//! need isolation (tests, multiple runtimes) build their own
//! [`MetricsRegistry`].

use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::cell::{Counter, Gauge};
use crate::expo::{Exposition, MetricKind};
use crate::hist::AtomicHistogram;

enum Cell {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicHistogram>),
}

impl Cell {
    fn kind(&self) -> MetricKind {
        match self {
            Cell::Counter(_) => MetricKind::Counter,
            Cell::Gauge(_) => MetricKind::Gauge,
            Cell::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    cell: Cell,
}

/// Registry of named metric cells; renders all of them in one stable
/// (name-sorted, then label-sorted, else registration-ordered) document.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register (or look up) a counter under `name` + `labels`.
    /// Re-registering an identical name/label set returns the existing
    /// cell, so idempotent init paths don't duplicate samples.
    ///
    /// Panics if the name/label set is already registered as a different
    /// metric kind — that would render a self-contradictory document.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, || Cell::Counter(Arc::new(Counter::new()))) {
            Cell::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Register (or look up) a gauge. Same contract as [`Self::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, help, labels, || Cell::Gauge(Arc::new(Gauge::new()))) {
            Cell::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Register (or look up) a histogram. Same contract as
    /// [`Self::counter`].
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<AtomicHistogram> {
        match self
            .get_or_insert(name, help, labels, || Cell::Histogram(Arc::new(AtomicHistogram::new())))
        {
            Cell::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Cell,
    ) -> Cell {
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(e) = entries.iter().find(|e| {
            e.name == name && e.labels.len() == labels.len() && label_eq(&e.labels, labels)
        }) {
            return clone_cell(&e.cell);
        }
        let cell = make();
        let out = clone_cell(&cell);
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            cell,
        });
        out
    }

    /// Render every registered metric as one plaintext exposition
    /// document. Families are sorted by name and samples by label set, so
    /// the output is stable regardless of registration order; the first
    /// registration's `help` wins for a family.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            entries[a]
                .name
                .cmp(&entries[b].name)
                .then_with(|| entries[a].labels.cmp(&entries[b].labels))
        });
        let mut expo = Exposition::new();
        let mut last_name: Option<&str> = None;
        for &i in &order {
            let e = &entries[i];
            if last_name != Some(e.name.as_str()) {
                expo.header(&e.name, e.cell.kind(), &e.help);
                last_name = Some(e.name.as_str());
            }
            let labels: Vec<(&str, &str)> =
                e.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            match &e.cell {
                Cell::Counter(c) => expo.sample(&e.name, &labels, c.get()),
                Cell::Gauge(g) => expo.sample(&e.name, &labels, g.get()),
                Cell::Histogram(h) => expo.histogram(&e.name, &labels, &h.snapshot()),
            }
        }
        expo.finish()
    }

    /// Number of registered metric cells (diagnostic).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn label_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    have.iter().zip(want).all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

fn clone_cell(cell: &Cell) -> Cell {
    match cell {
        Cell::Counter(c) => Cell::Counter(Arc::clone(c)),
        Cell::Gauge(g) => Cell::Gauge(Arc::clone(g)),
        Cell::Histogram(h) => Cell::Histogram(Arc::clone(h)),
    }
}

/// The process-wide registry (e.g. kernel profiling counters, which are
/// static by nature). Component-scoped metrics should prefer their own
/// registry so tests and multiple instances don't collide.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_name_and_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", "x", &[("shard", "0")]);
        let b = reg.counter("x_total", "x", &[("shard", "0")]);
        let c = reg.counter("x_total", "x", &[("shard", "1")]);
        a.add(2);
        assert_eq!(b.get(), 2, "same name+labels must share one cell");
        assert_eq!(c.get(), 0, "different labels must be a distinct cell");
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("m", "m", &[]);
        let _ = reg.gauge("m", "m", &[]);
    }

    #[test]
    fn render_is_sorted_and_groups_families() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total", "bees", &[("shard", "1")]).add(5);
        reg.gauge("a_depth", "depth", &[]).set(-2);
        reg.counter("b_total", "bees", &[("shard", "0")]).add(3);
        assert_eq!(
            reg.render(),
            "# HELP a_depth depth\n\
             # TYPE a_depth gauge\n\
             a_depth -2\n\
             # HELP b_total bees\n\
             # TYPE b_total counter\n\
             b_total{shard=\"0\"} 3\n\
             b_total{shard=\"1\"} 5\n"
        );
    }

    #[test]
    fn histogram_cells_render_live_values() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns", "latency", &[]);
        h.record(3);
        let out = reg.render();
        assert!(out.contains("# TYPE lat_ns histogram"), "{out}");
        assert!(out.contains("lat_ns_bucket{le=\"+Inf\"} 1"), "{out}");
        assert!(out.contains("lat_ns_count 1"), "{out}");
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global().counter("dart_telemetry_selftest_total", "self test", &[]);
        a.inc();
        let before = a.get();
        global().counter("dart_telemetry_selftest_total", "self test", &[]).inc();
        assert_eq!(a.get(), before + 1);
    }
}
