//! Runtime state machines behind each [`WorkloadKind`](super::WorkloadKind).

use dart_nn::init::InitRng;

use super::WorkloadKind;
use crate::record::{BLOCK_BITS, PAGE_BITS};

/// Base virtual address for generated data regions (arbitrary, page-aligned).
const DATA_BASE: u64 = 0x1000_0000;

/// Base PC for generated code.
const CODE_BASE: u64 = 0x40_0000;

/// Blocks per 4 KiB page.
const BLOCKS_PER_PAGE: u64 = 1 << (PAGE_BITS - BLOCK_BITS);

/// Anything that can produce the next `(pc, addr)` access.
pub trait AccessPattern {
    /// Produce the next access.
    fn next_access(&mut self, rng: &mut InitRng) -> (u64, u64);
}

/// One swept array of a stencil workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArraySpec {
    /// Array footprint in pages.
    pub pages: u64,
    /// Sweep stride in blocks.
    pub stride: i64,
}

/// Dispatchable runtime state for any workload kind.
#[derive(Clone, Debug)]
pub enum PatternState {
    /// See [`WorkloadKind::Streaming`].
    Streaming(StreamingState),
    /// See [`WorkloadKind::Stencil`].
    Stencil(StencilState),
    /// See [`WorkloadKind::RegionHop`].
    RegionHop(RegionHopState),
    /// See [`WorkloadKind::PointerChase`].
    PointerChase(PointerChaseState),
    /// See [`WorkloadKind::Mixed`].
    Mixed(MixedState),
}

impl PatternState {
    /// Instantiate the runtime for `kind`.
    pub fn new(kind: &WorkloadKind, rng: &mut InitRng) -> PatternState {
        match kind {
            WorkloadKind::Streaming { streams, strides, region_pages, restart_prob } => {
                PatternState::Streaming(StreamingState::new(
                    *streams,
                    strides,
                    *region_pages,
                    *restart_prob,
                    rng,
                ))
            }
            WorkloadKind::Stencil { arrays } => PatternState::Stencil(StencilState::new(arrays)),
            WorkloadKind::RegionHop { region_pages, burst_len } => {
                PatternState::RegionHop(RegionHopState::new(*region_pages, *burst_len, rng))
            }
            WorkloadKind::PointerChase { nodes, region_pages } => {
                PatternState::PointerChase(PointerChaseState::new(*nodes, *region_pages, rng))
            }
            WorkloadKind::Mixed { .. } => PatternState::Mixed(MixedState::new(kind, rng)),
        }
    }
}

impl AccessPattern for PatternState {
    fn next_access(&mut self, rng: &mut InitRng) -> (u64, u64) {
        match self {
            PatternState::Streaming(s) => s.next_access(rng),
            PatternState::Stencil(s) => s.next_access(rng),
            PatternState::RegionHop(s) => s.next_access(rng),
            PatternState::PointerChase(s) => s.next_access(rng),
            PatternState::Mixed(s) => s.next_access(rng),
        }
    }
}

/// Interleaved sequential streams.
#[derive(Clone, Debug)]
pub struct StreamingState {
    cursors: Vec<u64>, // block offsets within the region
    strides: Vec<i64>,
    region_blocks: u64,
    restart_prob: f32,
    next_stream: usize,
}

impl StreamingState {
    fn new(
        streams: usize,
        strides: &[i64],
        region_pages: u64,
        restart_prob: f32,
        rng: &mut InitRng,
    ) -> Self {
        let streams = streams.max(1);
        let region_blocks = region_pages.max(1) * BLOCKS_PER_PAGE;
        let cursors = (0..streams).map(|_| rng.next_u64() % region_blocks).collect();
        let strides = (0..streams)
            .map(|_| if strides.is_empty() { 1 } else { strides[rng.below(strides.len())] })
            .collect();
        StreamingState { cursors, strides, region_blocks, restart_prob, next_stream: 0 }
    }
}

impl AccessPattern for StreamingState {
    fn next_access(&mut self, rng: &mut InitRng) -> (u64, u64) {
        let s = self.next_stream;
        self.next_stream = (self.next_stream + 1) % self.cursors.len();
        if rng.next_f32() < self.restart_prob {
            self.cursors[s] = rng.next_u64() % self.region_blocks;
        }
        let block = self.cursors[s];
        let next = (block as i64 + self.strides[s]).rem_euclid(self.region_blocks as i64) as u64;
        self.cursors[s] = next;
        let pc = CODE_BASE + (s as u64) * 0x40;
        (pc, DATA_BASE + block * (1 << BLOCK_BITS))
    }
}

/// Burst-wise stencil sweeps over several arrays: each array is swept with
/// its own stride for `BURST` consecutive accesses before switching, so the
/// delta set stays small ({strides} plus one switch jump per burst) — the
/// low-delta regime of leslie3d/lbm in Table IV.
#[derive(Clone, Debug)]
pub struct StencilState {
    arrays: Vec<ArraySpec>,
    cursors: Vec<u64>,
    bases: Vec<u64>,
    active: usize,
    burst_left: usize,
}

/// Accesses per array before switching to the next.
const STENCIL_BURST: usize = 32;

impl StencilState {
    fn new(arrays: &[ArraySpec]) -> Self {
        assert!(!arrays.is_empty(), "stencil needs at least one array");
        let mut bases = Vec::with_capacity(arrays.len());
        let mut base = DATA_BASE;
        for a in arrays {
            bases.push(base);
            // Arrays are laid out back-to-back with a guard page.
            base += (a.pages + 1) << PAGE_BITS;
        }
        StencilState {
            arrays: arrays.to_vec(),
            cursors: vec![0; arrays.len()],
            bases,
            active: 0,
            burst_left: STENCIL_BURST,
        }
    }
}

impl AccessPattern for StencilState {
    fn next_access(&mut self, _rng: &mut InitRng) -> (u64, u64) {
        if self.burst_left == 0 {
            self.active = (self.active + 1) % self.arrays.len();
            self.burst_left = STENCIL_BURST;
        }
        self.burst_left -= 1;
        let i = self.active;
        let spec = self.arrays[i];
        let region_blocks = spec.pages.max(1) * BLOCKS_PER_PAGE;
        let block = self.cursors[i];
        self.cursors[i] = (block as i64 + spec.stride).rem_euclid(region_blocks as i64) as u64;
        let pc = CODE_BASE + 0x1000 + (i as u64) * 0x40;
        (pc, self.bases[i] + block * (1 << BLOCK_BITS))
    }
}

/// Random page hops with short sequential bursts.
#[derive(Clone, Debug)]
pub struct RegionHopState {
    region_blocks: u64,
    burst_len: usize,
    cursor: u64,
    burst_left: usize,
}

impl RegionHopState {
    fn new(region_pages: u64, burst_len: usize, rng: &mut InitRng) -> Self {
        let region_blocks = region_pages.max(1) * BLOCKS_PER_PAGE;
        RegionHopState {
            region_blocks,
            burst_len: burst_len.max(1),
            cursor: rng.next_u64() % region_blocks,
            burst_left: 0,
        }
    }
}

impl AccessPattern for RegionHopState {
    fn next_access(&mut self, rng: &mut InitRng) -> (u64, u64) {
        if self.burst_left == 0 {
            self.cursor = rng.next_u64() % self.region_blocks;
            self.burst_left = self.burst_len;
        }
        let block = self.cursor;
        self.cursor = (self.cursor + 1) % self.region_blocks;
        self.burst_left -= 1;
        let pc = CODE_BASE + 0x2000 + u64::from(self.burst_left == self.burst_len - 1) * 0x40;
        (pc, DATA_BASE + block * (1 << BLOCK_BITS))
    }
}

/// Pointer chasing over a random **permutation** graph (every node has
/// exactly one predecessor, so the walk covers whole cycles instead of
/// collapsing into the ~sqrt(n) rho-cycle of a random functional graph).
///
/// Node placement mimics pool allocation: with probability ~1/2 a node's
/// successor sits within a few blocks (an in-range, learnable delta); the
/// rest land anywhere in the region (the unique-delta mass that makes mcf
/// Table IV's hardest row).
#[derive(Clone, Debug)]
pub struct PointerChaseState {
    /// node -> next node (a permutation).
    next: Vec<u32>,
    /// node -> block offset within the region.
    placement: Vec<u64>,
    current: usize,
}

impl PointerChaseState {
    fn new(nodes: usize, region_pages: u64, rng: &mut InitRng) -> Self {
        let nodes = nodes.max(2);
        let region_blocks = region_pages.max(1) * BLOCKS_PER_PAGE;
        // Random permutation via Fisher–Yates.
        let mut next: Vec<u32> = (0..nodes as u32).collect();
        for i in (1..nodes).rev() {
            next.swap(i, rng.below(i + 1));
        }
        // Place nodes along the permutation cycles with pool locality.
        let mut placement = vec![u64::MAX; nodes];
        for start in 0..nodes {
            if placement[start] != u64::MAX {
                continue;
            }
            let mut here = rng.next_u64() % region_blocks;
            placement[start] = here;
            let mut node = next[start] as usize;
            while node != start {
                here = if rng.next_f32() < 0.5 {
                    // Successor allocated from the same pool: short delta.
                    (here + 1 + rng.next_u64() % 8) % region_blocks
                } else {
                    rng.next_u64() % region_blocks
                };
                placement[node] = here;
                node = next[node] as usize;
            }
        }
        PointerChaseState { next, placement, current: 0 }
    }
}

impl AccessPattern for PointerChaseState {
    fn next_access(&mut self, rng: &mut InitRng) -> (u64, u64) {
        // Occasional re-entry models traversal restarts from a worklist.
        if rng.next_f32() < 0.001 {
            self.current = rng.below(self.next.len());
        }
        let node = self.current;
        self.current = self.next[node] as usize;
        let pc = CODE_BASE + 0x3000;
        (pc, DATA_BASE + self.placement[node] * (1 << BLOCK_BITS))
    }
}

/// Weighted mixture of sub-patterns. Components run in *bursts* (the active
/// component keeps the floor for `burst` accesses) — per-access random
/// interleaving would make nearly every consecutive delta unique, which is
/// the mcf regime, not the gcc/wrf one.
#[derive(Clone, Debug)]
pub struct MixedState {
    parts: Vec<(f32, Box<PatternState>)>,
    total_weight: f32,
    burst: usize,
    active: usize,
    burst_left: usize,
}

impl MixedState {
    /// Build from a `WorkloadKind::Mixed`; panics on other kinds.
    pub fn new(kind: &WorkloadKind, rng: &mut InitRng) -> Self {
        let WorkloadKind::Mixed { parts, burst } = kind else {
            panic!("MixedState requires WorkloadKind::Mixed");
        };
        assert!(!parts.is_empty(), "mixed workload needs at least one part");
        let built: Vec<(f32, Box<PatternState>)> = parts
            .iter()
            .map(|(w, k)| {
                assert!(*w > 0.0, "mixture weights must be positive");
                (*w, Box::new(PatternState::new(k, rng)))
            })
            .collect();
        let total_weight = built.iter().map(|(w, _)| *w).sum();
        MixedState { parts: built, total_weight, burst: (*burst).max(1), active: 0, burst_left: 0 }
    }
}

impl AccessPattern for MixedState {
    fn next_access(&mut self, rng: &mut InitRng) -> (u64, u64) {
        if self.burst_left == 0 {
            // Pick the next component by weight.
            let mut pick = rng.next_f32() * self.total_weight;
            self.active = self.parts.len() - 1;
            for (i, (w, _)) in self.parts.iter().enumerate() {
                pick -= *w;
                if pick <= 0.0 {
                    self.active = i;
                    break;
                }
            }
            self.burst_left = self.burst;
        }
        self.burst_left -= 1;
        self.parts[self.active].1.next_access(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_advances_by_stride() {
        let mut rng = InitRng::new(1);
        let mut s = StreamingState::new(1, &[2], 10, 0.0, &mut rng);
        let (_, a1) = s.next_access(&mut rng);
        let (_, a2) = s.next_access(&mut rng);
        assert_eq!((a2 >> BLOCK_BITS) as i64 - (a1 >> BLOCK_BITS) as i64, 2);
    }

    #[test]
    fn stencil_sweeps_arrays_in_bursts() {
        let mut rng = InitRng::new(2);
        let arrays = [ArraySpec { pages: 4, stride: 1 }, ArraySpec { pages: 4, stride: 5 }];
        let mut s = StencilState::new(&arrays);
        // The first burst stays on array 0 with a constant stride.
        let (pc1, a1) = s.next_access(&mut rng);
        let (pc2, a2) = s.next_access(&mut rng);
        assert_eq!(pc1, pc2);
        assert_eq!((a2 >> BLOCK_BITS) - (a1 >> BLOCK_BITS), 1);
        // After the burst, the PC switches to array 1.
        for _ in 0..STENCIL_BURST - 2 {
            let _ = s.next_access(&mut rng);
        }
        let (pc3, _) = s.next_access(&mut rng);
        assert_ne!(pc1, pc3);
    }

    #[test]
    fn region_hop_bursts_are_sequential() {
        let mut rng = InitRng::new(3);
        let mut s = RegionHopState::new(100, 4, &mut rng);
        let (_, a1) = s.next_access(&mut rng);
        let (_, a2) = s.next_access(&mut rng);
        let (_, a3) = s.next_access(&mut rng);
        assert_eq!((a2 >> BLOCK_BITS) - (a1 >> BLOCK_BITS), 1);
        assert_eq!((a3 >> BLOCK_BITS) - (a2 >> BLOCK_BITS), 1);
    }

    #[test]
    fn pointer_chase_deterministic_walk() {
        let mut rng1 = InitRng::new(4);
        let mut s1 = PointerChaseState::new(100, 10, &mut rng1);
        let mut rng2 = InitRng::new(4);
        let mut s2 = PointerChaseState::new(100, 10, &mut rng2);
        for _ in 0..50 {
            assert_eq!(s1.next_access(&mut rng1), s2.next_access(&mut rng2));
        }
    }

    #[test]
    #[should_panic(expected = "MixedState requires")]
    fn mixed_rejects_non_mixed_kind() {
        let mut rng = InitRng::new(5);
        let _ =
            MixedState::new(&WorkloadKind::RegionHop { region_pages: 1, burst_len: 1 }, &mut rng);
    }

    #[test]
    fn addresses_stay_in_region() {
        let mut rng = InitRng::new(6);
        let mut s = StreamingState::new(4, &[1, 3], 8, 0.01, &mut rng);
        let region_bytes = 8 * BLOCKS_PER_PAGE * (1 << BLOCK_BITS);
        for _ in 0..1000 {
            let (_, addr) = s.next_access(&mut rng);
            assert!(addr >= DATA_BASE && addr < DATA_BASE + region_bytes);
        }
    }
}
