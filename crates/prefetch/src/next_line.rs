//! Next-N-line prefetcher — the simplest hardware prefetcher, used as a
//! sanity floor in the shootout (any sequential workload it cannot speed up
//! indicates a simulator problem, not a predictor problem).

use dart_sim::{LlcAccess, Prefetcher};

/// Prefetch the next `degree` sequential blocks on every LLC access.
#[derive(Clone, Copy, Debug)]
pub struct NextLine {
    degree: usize,
    latency: u64,
}

impl NextLine {
    /// Degree-1 next-line at effectively zero latency.
    pub fn new() -> NextLine {
        NextLine::with_params(1, 1)
    }

    /// Parameterized constructor.
    pub fn with_params(degree: usize, latency: u64) -> NextLine {
        NextLine { degree: degree.max(1), latency }
    }
}

impl Default for NextLine {
    fn default() -> Self {
        NextLine::new()
    }
}

impl Prefetcher for NextLine {
    fn name(&self) -> &str {
        "NextLine"
    }

    fn latency(&self) -> u64 {
        self.latency
    }

    fn on_access(&mut self, access: &LlcAccess) -> Vec<u64> {
        (1..=self.degree as u64).map(|d| access.block + d).collect()
    }

    fn storage_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_sequential_blocks() {
        let mut nl = NextLine::with_params(3, 0);
        let acc = LlcAccess { seq: 0, instr_id: 0, pc: 0, addr: 100 << 6, block: 100, hit: false };
        assert_eq!(nl.on_access(&acc), vec![101, 102, 103]);
    }

    #[test]
    fn zero_storage() {
        assert_eq!(NextLine::new().storage_bytes(), 0);
    }
}
