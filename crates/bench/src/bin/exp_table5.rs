//! Table V — model configurations and complexity: Teacher / Student / DART
//! latency, storage, and arithmetic operations under the analytic cost
//! models, next to the paper's values.

use dart_bench::report::{human_bytes, human_count};
use dart_bench::{print_table, record_json, Table};
use dart_core::config::PredictorConfig;
use dart_core::configurator::{model_cost, ShapeParams};
use dart_nn::cost::attention_model_cost;
use dart_nn::model::ModelConfig;

fn main() {
    let shape = ShapeParams::default(); // T = 16, D_O = 128
    let teacher = ModelConfig::teacher(8, shape.output_dim, shape.seq_len);
    let student = ModelConfig::student(8, shape.output_dim, shape.seq_len);
    let dart = PredictorConfig::dart();

    let tc = attention_model_cost(&teacher);
    let sc = attention_model_cost(&student);
    let dc = model_cost(&dart, &shape);

    let mut t = Table::new(&[
        "Model",
        "L",
        "D",
        "H",
        "K",
        "C",
        "Latency (paper)",
        "Latency (ours)",
        "Storage (paper)",
        "Storage (ours)",
        "Ops (paper)",
        "Ops (ours)",
    ]);
    t.row(vec![
        "Teacher".into(),
        "4".into(),
        "256".into(),
        "8".into(),
        "-".into(),
        "-".into(),
        "16.5K".into(),
        human_count(tc.latency_cycles),
        "86.2MB".into(),
        human_bytes(tc.storage_bytes),
        "98.3M".into(),
        human_count(tc.ops),
    ]);
    t.row(vec![
        "Student".into(),
        "1".into(),
        "32".into(),
        "2".into(),
        "-".into(),
        "-".into(),
        "908".into(),
        human_count(sc.latency_cycles),
        "827.4KB".into(),
        human_bytes(sc.storage_bytes),
        "134.7K".into(),
        human_count(sc.ops),
    ]);
    t.row(vec![
        "DART".into(),
        "1".into(),
        "32".into(),
        "2".into(),
        "128".into(),
        "2".into(),
        "97".into(),
        dc.latency_cycles.to_string(),
        "864.4KB".into(),
        human_bytes(dc.storage_bytes),
        "11.0K".into(),
        human_count(dc.ops),
    ]);
    print_table("Table V: model configurations and complexity", &t);

    println!("\nDerived headline ratios (paper: 170x / 9.4x acceleration, 99.99% / 91.83% op reduction):");
    println!(
        "  teacher/DART latency: {:.0}x   student/DART latency: {:.1}x",
        tc.latency_cycles as f64 / dc.latency_cycles as f64,
        sc.latency_cycles as f64 / dc.latency_cycles as f64
    );
    println!(
        "  op reduction vs teacher: {:.2}%   vs student: {:.2}%",
        (1.0 - dc.ops as f64 / tc.ops as f64) * 100.0,
        (1.0 - dc.ops as f64 / sc.ops as f64) * 100.0
    );
    println!(
        "\nNote: NN storage uses 4 B/parameter; the paper's storage assumptions are \
         unstated (see EXPERIMENTS.md). Latency/ops reproduce Table V closely."
    );
    record_json(
        "table5",
        &serde_json::json!({
            "teacher": tc, "student": sc, "dart": dc,
            "paper": {
                "teacher": {"latency": 16_500, "storage": 86_200_000u64, "ops": 98_300_000u64},
                "student": {"latency": 908, "storage": 827_400, "ops": 134_700},
                "dart": {"latency": 97, "storage": 864_400, "ops": 11_000},
            }
        }),
    );
}
