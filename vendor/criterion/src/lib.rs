//! Vendored micro-benchmark harness.
//!
//! The build environment has no registry access, so the real criterion
//! cannot be fetched. This crate implements the small API surface the
//! workspace's benches use — `benchmark_group`, `bench_function`,
//! `sample_size`, `throughput`, `iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! median-of-samples timer and plain-text reporting.

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared workload size for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 20, throughput: None }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        run_benchmark("", name, 20, None, f);
    }
}

/// A named group of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, name: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&self.name, &name.to_string(), self.sample_size, self.throughput, f);
    }

    /// End the group (no-op; printing happens per benchmark).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `f`, called repeatedly.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up and per-sample iteration estimate: aim for ~2ms per sample,
        // clamped to keep total time bounded.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }
}

fn run_benchmark(
    group: &str,
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let label = if group.is_empty() { name.to_string() } else { format!("{group}/{name}") };
    let rate = throughput
        .map(|t| {
            let per_sec = match t {
                Throughput::Elements(n) => {
                    format!("{:.0} elem/s", n as f64 / median.as_secs_f64())
                }
                Throughput::Bytes(n) => {
                    format!("{:.0} B/s", n as f64 / median.as_secs_f64())
                }
            };
            format!("  ({per_sec})")
        })
        .unwrap_or_default();
    println!("{label:<50} median {median:>12.3?}{rate}");
}

/// Bundle benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` for one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
