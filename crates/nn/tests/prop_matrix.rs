//! Property-based tests on the matrix substrate: algebraic identities that
//! must hold for every input the generators produce.

use dart_nn::matrix::Matrix;
use proptest::prelude::*;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.shape() == b.shape()
        && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Right distributivity: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes_over_add(
        a in matrix_strategy(4, 5),
        b in matrix_strategy(5, 3),
        c in matrix_strategy(5, 3),
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(approx_eq(&lhs, &rhs, 1e-2));
    }

    /// (AB)^T = B^T A^T.
    #[test]
    fn transpose_reverses_products(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 6),
    ) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(approx_eq(&lhs, &rhs, 1e-2));
    }

    /// matmul_transb(A, B) = A @ B^T exactly.
    #[test]
    fn matmul_transb_consistent(
        a in matrix_strategy(5, 7),
        b in matrix_strategy(4, 7),
    ) {
        prop_assert!(approx_eq(&a.matmul_transb(&b), &a.matmul(&b.transpose()), 1e-2));
    }

    /// matmul_transa(A, B) = A^T @ B exactly.
    #[test]
    fn matmul_transa_consistent(
        a in matrix_strategy(6, 3),
        b in matrix_strategy(6, 4),
    ) {
        prop_assert!(approx_eq(&a.matmul_transa(&b), &a.transpose().matmul(&b), 1e-2));
    }

    /// Softmax rows are probability distributions.
    #[test]
    fn softmax_rows_are_distributions(a in matrix_strategy(4, 9)) {
        let s = a.softmax_rows();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// Scaling commutes with addition: k(A + B) = kA + kB.
    #[test]
    fn scale_distributes(
        a in matrix_strategy(3, 3),
        b in matrix_strategy(3, 3),
        k in -5.0f32..5.0,
    ) {
        let lhs = a.add(&b).scale(k);
        let rhs = a.scale(k).add(&b.scale(k));
        prop_assert!(approx_eq(&lhs, &rhs, 1e-3));
    }

    /// vstack then slice_rows recovers the parts.
    #[test]
    fn vstack_slice_roundtrip(
        a in matrix_strategy(2, 4),
        b in matrix_strategy(3, 4),
    ) {
        let v = Matrix::vstack(&[a.clone(), b.clone()]);
        prop_assert_eq!(v.slice_rows(0, 2), a);
        prop_assert_eq!(v.slice_rows(2, 5), b);
    }

    /// Frobenius norm satisfies the triangle inequality.
    #[test]
    fn frobenius_triangle(
        a in matrix_strategy(4, 4),
        b in matrix_strategy(4, 4),
    ) {
        let sum_norm = a.add(&b).frobenius_norm();
        prop_assert!(sum_norm <= a.frobenius_norm() + b.frobenius_norm() + 1e-3);
    }
}
