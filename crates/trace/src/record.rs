//! Trace records and address arithmetic.

use serde::{Deserialize, Serialize};

/// Cache-block size: 64 bytes (matching the paper's ChampSim setup).
///
/// Re-exported from `dart-core` — the one workspace-wide definition —
/// so trace preprocessing and the serving path (`dart_serve::request`)
/// can never drift apart on what a "block" is.
pub use dart_core::BLOCK_BITS;

/// Page size: 4 KiB.
pub const PAGE_BITS: u32 = 12;

/// One LLC access observed by the prefetcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Retired-instruction index at which this access occurs (monotonically
    /// non-decreasing; gaps model non-memory instructions).
    pub instr_id: u64,
    /// Program counter of the triggering load/store.
    pub pc: u64,
    /// Virtual byte address accessed.
    pub addr: u64,
}

impl TraceRecord {
    /// Cache-block address (`addr >> 6`).
    #[inline]
    pub fn block(&self) -> u64 {
        self.addr >> BLOCK_BITS
    }

    /// Page address (`addr >> 12`).
    #[inline]
    pub fn page(&self) -> u64 {
        self.addr >> PAGE_BITS
    }
}

/// Signed block delta between two accesses (`to - from`, in blocks).
#[inline]
pub fn block_delta(from: u64, to: u64) -> i64 {
    (to >> BLOCK_BITS) as i64 - (from >> BLOCK_BITS) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_and_page_extraction() {
        let r = TraceRecord { instr_id: 0, pc: 0x400000, addr: 0x12345 };
        assert_eq!(r.block(), 0x12345 >> 6);
        assert_eq!(r.page(), 0x12345 >> 12);
    }

    #[test]
    fn delta_signs() {
        assert_eq!(block_delta(0x1000, 0x1040), 1);
        assert_eq!(block_delta(0x1040, 0x1000), -1);
        assert_eq!(block_delta(0x1000, 0x1000), 0);
        // Same block, different offset: delta 0.
        assert_eq!(block_delta(0x1000, 0x103F), 0);
    }
}
