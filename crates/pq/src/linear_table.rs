//! The **linear kernel** (paper §V-A, Eq. 10–11): tabularized
//! `y = W x + b` over a `T`-length token sequence.
//!
//! Training learns prototypes over the row vectors of the training
//! activations, then precomputes `h^c_o(W)_k = W^c_o · p_c(X̃_r)_k` for every
//! (subspace `c`, prototype `k`, output `o`). The bias is *folded into the
//! table*: subspace 0's entries carry `+ b_o`, so query aggregation adds the
//! bias exactly once with no extra work (the paper's `b_r` trick).
//!
//! Query (Eq. 11): encode each input row per subspace, gather the `D_O`-wide
//! table rows, and sum over subspaces. Rows are embarrassingly parallel.

use dart_nn::matrix::{dot, Matrix};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::arena::TableArena;
use crate::quantizer::{EncoderKind, ProductQuantizer};
use crate::simd::{self, SimdOps};

/// Rows per tile of the tiled batch aggregation: the loop runs
/// subspace-outer over a tile of output rows, so one sub-table block of the
/// arena stays cache-resident for the whole tile pass while the tile's
/// output rows (`AGG_TILE_ROWS x D_O` floats) stay L1/L2-resident. Tiles
/// are also the unit of rayon parallelism.
pub const AGG_TILE_ROWS: usize = 32;

/// Element-wise transform folded into the table at construction time
/// (the paper's "integration of activation functions between operations").
///
/// With `Relu`, prototypes are learned on *pre-activation* inputs but table
/// entries store `W · relu(prototype)`, so the preceding activation costs
/// nothing at query time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtoTransform {
    /// No transform: plain `W · p + b`.
    #[default]
    Identity,
    /// Fold a preceding ReLU into the table entries.
    Relu,
}

impl ProtoTransform {
    fn apply(&self, proto: &[f32]) -> Vec<f32> {
        match self {
            ProtoTransform::Identity => proto.to_vec(),
            ProtoTransform::Relu => proto.iter().map(|&x| x.max(0.0)).collect(),
        }
    }
}

/// A tabularized linear layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinearTable {
    pq: ProductQuantizer,
    /// Flat code-major arena of `C` sub-tables, each `K x D_O`;
    /// `table.row(c, k)` is the precomputed contribution of prototype `k`
    /// to every output dim.
    table: TableArena,
    out_dim: usize,
}

impl LinearTable {
    /// Tabularize a linear layer.
    ///
    /// * `train_inputs` — representative activations, `R x D_I` (rows pooled
    ///   across samples and sequence positions, the paper's `X̃_r`).
    /// * `weight` — `D_O x D_I`; `bias` — length `D_O`.
    /// * `c`, `k` — subspaces and prototypes per subspace.
    pub fn fit(
        train_inputs: &Matrix,
        weight: &Matrix,
        bias: &[f32],
        c: usize,
        k: usize,
        encoder: EncoderKind,
        seed: u64,
    ) -> LinearTable {
        Self::fit_transformed(
            train_inputs,
            weight,
            bias,
            c,
            k,
            encoder,
            ProtoTransform::Identity,
            seed,
        )
    }

    /// Tabularize `x -> W · f(x) + b` where `f` is an element-wise transform
    /// folded into the table entries (see [`ProtoTransform`]).
    /// `train_inputs` must be *pre-transform* activations.
    #[allow(clippy::too_many_arguments)] // mirrors the layer's full parameter list on purpose
    pub fn fit_transformed(
        train_inputs: &Matrix,
        weight: &Matrix,
        bias: &[f32],
        c: usize,
        k: usize,
        encoder: EncoderKind,
        transform: ProtoTransform,
        seed: u64,
    ) -> LinearTable {
        assert_eq!(train_inputs.cols(), weight.cols(), "input dim mismatch");
        assert_eq!(bias.len(), weight.rows(), "bias length mismatch");
        let out_dim = weight.rows();
        let pq = ProductQuantizer::fit(train_inputs, c, k, encoder, seed);

        let mut table = TableArena::zeros(pq.num_subspaces(), pq.num_protos(), out_dim);
        table.fill_subtables_parallel(|ci, sub| {
            let (lo, hi) = pq.bounds()[ci];
            for proto in 0..pq.num_protos() {
                let p = transform.apply(pq.proto(ci, proto));
                let row = &mut sub[proto * out_dim..(proto + 1) * out_dim];
                for (o, slot) in row.iter_mut().enumerate() {
                    *slot = dot(&p, &weight.row(o)[lo..hi]);
                    // Bias folding: subspace 0 carries the bias.
                    if ci == 0 {
                        *slot += bias[o];
                    }
                }
            }
        });

        LinearTable { pq, table, out_dim }
    }

    /// Output dimension `D_O`.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Input dimension `D_I`.
    pub fn in_dim(&self) -> usize {
        self.pq.dim()
    }

    /// Number of subspaces `C`.
    pub fn num_subspaces(&self) -> usize {
        self.pq.num_subspaces()
    }

    /// Prototypes per subspace `K`.
    pub fn num_protos(&self) -> usize {
        self.pq.num_protos()
    }

    /// The underlying product quantizer.
    pub fn quantizer(&self) -> &ProductQuantizer {
        &self.pq
    }

    /// The flat code-major table arena (used by the int8 re-encoder and the
    /// layout benchmark).
    pub fn table_arena(&self) -> &TableArena {
        &self.table
    }

    /// Approximate `x W^T + b` for stacked rows `x` (`R x D_I`) via lookups.
    pub fn query(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.out_dim);
        self.query_batch_into(x, &mut out);
        out
    }

    /// Batched multi-row query into a caller buffer (the serving hot path).
    ///
    /// Phase 1 encodes every row with the tiled subspace-major encoder;
    /// phase 2 aggregates tiles of rows per sub-table pass (see
    /// [`aggregate_codes_batch`]). Per-row accumulation order is identical
    /// to [`Self::query_row_into`] — subspace 0, 1, … — so results are
    /// bit-for-bit equal to row-at-a-time queries.
    pub fn query_batch_into(&self, x: &Matrix, out: &mut Matrix) {
        self.query_batch_into_with(x, out, simd::ops());
    }

    /// [`Self::query_batch_into`] pinned to the scalar kernel tiles — the
    /// reference path of the simd differential suites and benches.
    pub fn query_batch_scalar_into(&self, x: &Matrix, out: &mut Matrix) {
        self.query_batch_into_with(x, out, simd::scalar_ops());
    }

    fn query_batch_into_with(&self, x: &Matrix, out: &mut Matrix, ops: &SimdOps) {
        assert_eq!(x.cols(), self.pq.dim(), "query dim mismatch");
        assert_eq!(out.shape(), (x.rows(), self.out_dim), "output shape mismatch");
        aggregate_codes_batch(&self.pq, &self.table, x, out, ops);
    }

    /// Single-row query into a caller buffer (the prefetcher's hot path).
    #[inline]
    pub fn query_row_into(&self, row: &[f32], out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.out_dim);
        out.fill(0.0);
        for (ci, &(lo, hi)) in self.pq.bounds().iter().enumerate() {
            let code = self.pq.encode_sub(ci, &row[lo..hi]);
            let trow = self.table.row(ci, code);
            for (o, &t) in out.iter_mut().zip(trow) {
                *o += t;
            }
        }
    }

    /// Actual storage footprint in bytes: table entries (f32) plus the
    /// per-level encoder state is negligible and excluded, matching the
    /// paper's accounting (Eq. 18 counts table entries + encoded indices).
    pub fn storage_bytes(&self) -> u64 {
        (self.table.len() * 4) as u64
    }
}

/// Shared tiled batch aggregation used by [`LinearTable`] and
/// [`crate::FusedFfnTable`]: encode all rows of `x` (tiled subspace-major),
/// then sum each row's per-subspace table rows into `out`.
///
/// Aggregation is tiled over [`AGG_TILE_ROWS`]-row blocks of the output:
/// within a tile the subspace loop is **outer**, so one contiguous
/// sub-table block of the arena is swept across the whole tile before the
/// next sub-table is touched. Per-`(row, output)` accumulation still runs
/// in subspace order 0, 1, …, so results match the single-row query paths
/// bit for bit; tiles write disjoint output rows and run rayon-parallel.
///
/// The row-accumulate inner loops run through `ops` — the SIMD kernels
/// vectorize across the `D_O` output-column lanes only, so every output
/// keeps the scalar accumulation sequence (first pass `0.0 + t`, then
/// `+= t` in subspace order) and results are bit-identical at every
/// dispatch level.
pub(crate) fn aggregate_codes_batch(
    pq: &ProductQuantizer,
    table: &TableArena,
    x: &Matrix,
    out: &mut Matrix,
    ops: &SimdOps,
) {
    let c = pq.num_subspaces();
    let out_dim = out.cols();
    crate::profile::profile_kernel("aggregate_codes", x.rows() as u64);
    let mut codes = vec![0usize; x.rows() * c];
    pq.encode_batch_into_with(x, &mut codes, ops);
    let codes = &codes;
    out.as_mut_slice().par_chunks_mut(AGG_TILE_ROWS * out_dim).enumerate().for_each(
        |(tile, orows)| {
            let r0 = tile * AGG_TILE_ROWS;
            for ci in 0..c {
                let sub = table.subtable(ci);
                for (rr, orow) in orows.chunks_exact_mut(out_dim).enumerate() {
                    let code = codes[(r0 + rr) * c + ci];
                    let trow = &sub[code * out_dim..(code + 1) * out_dim];
                    if ci == 0 {
                        // First pass initializes the tile: `0.0 + t` (not a
                        // copy) keeps the accumulation bit-identical to the
                        // fill-then-add scalar path, including -0.0 entries.
                        ops.init_row(orow, trow);
                    } else {
                        ops.add_assign(orow, trow);
                    }
                }
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_nn::init::InitRng;

    fn rand_matrix(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = InitRng::new(seed);
        Matrix::from_fn(r, c, |_, _| rng.normal())
    }

    fn exact_linear(x: &Matrix, w: &Matrix, b: &[f32]) -> Matrix {
        x.matmul_transb(w).add_row_broadcast(b)
    }

    #[test]
    fn exact_when_inputs_live_on_prototypes() {
        // 4 distinct input rows, K=4 prototypes with argmin encoding:
        // the quantization is lossless so the table output is exact.
        let base = rand_matrix(4, 6, 3);
        let mut train_rows = Vec::new();
        for rep in 0..10 {
            for i in 0..4 {
                let _ = rep;
                train_rows.push(base.slice_rows(i, i + 1));
            }
        }
        let train = Matrix::vstack(&train_rows);
        let w = rand_matrix(5, 6, 7);
        let b = vec![0.1, -0.2, 0.3, 0.0, 1.0];
        let lt = LinearTable::fit(&train, &w, &b, 2, 4, EncoderKind::Argmin, 1);
        let approx = lt.query(&base);
        let exact = exact_linear(&base, &w, &b);
        for i in 0..exact.len() {
            assert!(
                (approx.as_slice()[i] - exact.as_slice()[i]).abs() < 1e-3,
                "entry {i}: {} vs {}",
                approx.as_slice()[i],
                exact.as_slice()[i]
            );
        }
    }

    #[test]
    fn bias_is_added_exactly_once() {
        // Zero weight: output must equal the bias for every row, regardless
        // of the number of subspaces.
        let train = rand_matrix(50, 8, 5);
        let w = Matrix::zeros(3, 8);
        let b = vec![1.5, -2.5, 0.25];
        for c in [1, 2, 4] {
            let lt = LinearTable::fit(&train, &w, &b, c, 8, EncoderKind::Argmin, 2);
            let out = lt.query(&train.slice_rows(0, 5));
            for r in 0..5 {
                for (o, &expect) in out.row(r).iter().zip(&b) {
                    assert!((o - expect).abs() < 1e-5, "c={c}: bias leaked {o} vs {expect}");
                }
            }
        }
    }

    #[test]
    fn error_decreases_with_more_prototypes() {
        let train = rand_matrix(400, 8, 11);
        let w = rand_matrix(4, 8, 13);
        let b = vec![0.0; 4];
        let test = rand_matrix(50, 8, 17);
        let exact = exact_linear(&test, &w, &b);
        let mut last_err = f64::INFINITY;
        for k in [2, 8, 64] {
            let lt = LinearTable::fit(&train, &w, &b, 2, k, EncoderKind::Argmin, 3);
            let approx = lt.query(&test);
            let err: f64 =
                approx.sub(&exact).as_slice().iter().map(|&e| (e as f64) * (e as f64)).sum::<f64>();
            assert!(err < last_err + 1e-9, "K={k}: error {err} did not shrink from {last_err}");
            last_err = err;
        }
    }

    #[test]
    fn query_shapes() {
        let train = rand_matrix(100, 6, 19);
        let w = rand_matrix(9, 6, 23);
        let b = vec![0.0; 9];
        let lt = LinearTable::fit(&train, &w, &b, 3, 8, EncoderKind::HashTree, 4);
        assert_eq!(lt.in_dim(), 6);
        assert_eq!(lt.out_dim(), 9);
        assert_eq!(lt.num_subspaces(), 3);
        assert_eq!(lt.num_protos(), 8);
        let out = lt.query(&rand_matrix(7, 6, 29));
        assert_eq!(out.shape(), (7, 9));
    }

    #[test]
    fn hash_tree_tracks_argmin_quality() {
        let train = rand_matrix(500, 8, 31);
        let w = rand_matrix(4, 8, 37);
        let b = vec![0.5; 4];
        let test = rand_matrix(60, 8, 41);
        let exact = exact_linear(&test, &w, &b);
        let frob = |m: &Matrix| m.frobenius_norm() as f64;

        let lt_exact = LinearTable::fit(&train, &w, &b, 2, 16, EncoderKind::Argmin, 5);
        let lt_tree = LinearTable::fit(&train, &w, &b, 2, 16, EncoderKind::HashTree, 5);
        let e_exact = frob(&lt_exact.query(&test).sub(&exact));
        let e_tree = frob(&lt_tree.query(&test).sub(&exact));
        // The tree encoder is approximate but should stay in the same regime.
        assert!(e_tree < e_exact * 3.0 + 1e-6, "tree {e_tree} vs argmin {e_exact}");
    }

    #[test]
    fn storage_scales_with_k_and_c() {
        let train = rand_matrix(100, 8, 43);
        let w = rand_matrix(4, 8, 47);
        let b = vec![0.0; 4];
        let small = LinearTable::fit(&train, &w, &b, 1, 4, EncoderKind::Argmin, 6);
        let big = LinearTable::fit(&train, &w, &b, 4, 16, EncoderKind::Argmin, 6);
        assert!(big.storage_bytes() > small.storage_bytes());
        // K*C*DO*4 bytes exactly.
        assert_eq!(small.storage_bytes(), (4 * 4 * 4) as u64);
        assert_eq!(big.storage_bytes(), (16 * 4 * 4 * 4) as u64);
    }

    #[test]
    fn single_row_query_matches_batch() {
        let train = rand_matrix(200, 6, 53);
        let w = rand_matrix(5, 6, 59);
        let b = vec![0.1; 5];
        let lt = LinearTable::fit(&train, &w, &b, 2, 8, EncoderKind::Argmin, 7);
        let test = rand_matrix(4, 6, 61);
        let batch = lt.query(&test);
        let mut single = vec![0.0f32; 5];
        for r in 0..4 {
            lt.query_row_into(test.row(r), &mut single);
            assert_eq!(&single[..], batch.row(r));
        }
    }
    #[test]
    fn relu_folding_matches_relu_then_linear() {
        // Inputs that live exactly on prototypes: folding ReLU into the
        // table must equal applying ReLU then the dense linear.
        let base = rand_matrix(4, 6, 71);
        let train = Matrix::vstack(&[base.clone(), base.clone(), base.clone()]);
        let w = rand_matrix(3, 6, 73);
        let b = vec![0.2, -0.1, 0.0];
        let lt = LinearTable::fit_transformed(
            &train,
            &w,
            &b,
            2,
            4,
            EncoderKind::Argmin,
            ProtoTransform::Relu,
            1,
        );
        let approx = lt.query(&base);
        let exact = exact_linear(&base.map(|v| v.max(0.0)), &w, &b);
        for i in 0..exact.len() {
            assert!(
                (approx.as_slice()[i] - exact.as_slice()[i]).abs() < 1e-3,
                "entry {i}: {} vs {}",
                approx.as_slice()[i],
                exact.as_slice()[i]
            );
        }
    }
}
