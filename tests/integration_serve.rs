//! Cross-crate properties of the batched prediction path and the serving
//! runtime: `predict_batch` must equal row-by-row `forward_probs`
//! bit-for-bit, for any batch composition.

use dart::core::config::TabularConfig;
use dart::core::tabularize::tabularize;
use dart::core::TabularModel;
use dart::nn::init::InitRng;
use dart::nn::matrix::Matrix;
use dart::nn::model::{AccessPredictor, ModelConfig};
use dart::pq::EncoderKind;
use dart::trace::PreprocessConfig;
use proptest::prelude::*;

fn tiny_model(seed: u64, encoder: EncoderKind) -> (TabularModel, PreprocessConfig) {
    let pre = PreprocessConfig {
        seq_len: 4,
        addr_segments: 3,
        seg_bits: 4,
        pc_segments: 1,
        delta_range: 4,
        lookforward: 4,
    };
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 8,
        heads: 2,
        layers: 1,
        ffn_dim: 16,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let student = AccessPredictor::new(cfg, seed).unwrap();
    let mut rng = InitRng::new(seed.wrapping_add(1));
    let x = Matrix::from_fn(40 * 4, pre.input_dim(), |_, _| rng.next_f32());
    let tab_cfg = TabularConfig { k: 8, c: 2, encoder, fine_tune_epochs: 0, ..Default::default() };
    let (model, _) = tabularize(&student, &x, &tab_cfg);
    (model, pre)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `predict_batch` on a stacked matrix equals calling `forward_probs`
    /// sample-by-sample, bit for bit, regardless of batch size.
    #[test]
    fn predict_batch_equals_row_by_row(
        seed in 0u64..50,
        batch in 1usize..9,
        tree in proptest::bool::ANY,
    ) {
        let encoder = if tree { EncoderKind::HashTree } else { EncoderKind::Argmin };
        let (model, pre) = tiny_model(seed, encoder);
        let t = pre.seq_len;
        let di = pre.input_dim();

        let mut rng = InitRng::new(seed ^ 0xBA7C4);
        let stacked = Matrix::from_fn(batch * t, di, |_, _| rng.next_f32());
        let batched = model.predict_batch(&stacked);
        prop_assert_eq!(batched.shape(), (batch, pre.output_dim()));

        for n in 0..batch {
            let single = model.forward_probs(&stacked.slice_rows(n * t, (n + 1) * t));
            // Bit-for-bit: the batched kernels preserve per-row accumulation
            // order exactly.
            prop_assert_eq!(
                single.row(0), batched.row(n),
                "sample {} diverged (seed {}, batch {})", n, seed, batch
            );
        }
    }

    /// Batched attention/linear kernels keep the model deterministic: the
    /// same stacked input always produces the same output.
    #[test]
    fn predict_batch_is_deterministic(seed in 0u64..50, batch in 1usize..6) {
        let (model, pre) = tiny_model(seed, EncoderKind::Argmin);
        let mut rng = InitRng::new(seed ^ 0xD00D);
        let x = Matrix::from_fn(batch * pre.seq_len, pre.input_dim(), |_, _| rng.next_f32());
        prop_assert_eq!(model.predict_batch(&x), model.predict_batch(&x));
    }
}

#[test]
#[should_panic(expected = "not divisible")]
fn predict_batch_rejects_ragged_input() {
    let (model, pre) = tiny_model(1, EncoderKind::Argmin);
    let x = Matrix::zeros(pre.seq_len + 1, pre.input_dim());
    let _ = model.predict_batch(&x);
}

/// Regression (emission-rule drift between the sim and serve paths):
/// `DartPrefetcher` clamps `max_degree.max(1)` but serve's emit policy
/// used to take 0 literally — `max_degree: 0` silently disabled all
/// serving-path prefetching while the sim path emitted 1 per prediction.
/// Replay one access stream through both paths at `max_degree: 0` (and 3,
/// for the non-degenerate rule) and require identical per-access
/// emissions.
#[test]
fn serve_and_sim_paths_agree_on_max_degree_clamp() {
    use dart::prefetch::dart::DartPrefetcher;
    use dart::serve::{PrefetchRequest, ServeConfig, ServeRuntime};
    use dart::sim::{LlcAccess, Prefetcher};
    use std::sync::Arc;

    let (model, pre) = tiny_model(4, EncoderKind::Argmin);
    let accesses: Vec<(u64, u64)> =
        (0..20u64).map(|i| (0x400 + i * 4, (900 + i * 3) << 6)).collect();

    for max_degree in [0usize, 3] {
        // Sim path: DartPrefetcher replays the stream one access at a time.
        let mut dart = DartPrefetcher::with_latency(
            "diff",
            model.clone(),
            pre,
            0,
            0.0, // threshold 0: every warm window emits up to the degree cap
            max_degree,
        );
        let sim_emissions: Vec<Vec<u64>> = accesses
            .iter()
            .enumerate()
            .map(|(seq, &(pc, addr))| {
                dart.on_access(&LlcAccess {
                    seq,
                    instr_id: seq as u64,
                    pc,
                    addr,
                    block: addr >> 6,
                    hit: false,
                })
            })
            .collect();

        // Serve path: the same accesses as one stream through the runtime.
        let runtime = ServeRuntime::start(
            Arc::new(model.clone()),
            pre,
            ServeConfig {
                shards: 1,
                max_batch: 4,
                threshold: 0.0,
                max_degree,
                ..ServeConfig::default()
            },
        );
        runtime.submit_all(accesses.iter().map(|&(pc, addr)| PrefetchRequest {
            stream_id: 1,
            pc,
            addr,
        }));
        runtime.wait_idle();
        let mut responses = runtime.drain_completed();
        responses.sort_by_key(|r| r.seq);
        runtime.shutdown();

        assert_eq!(responses.len(), sim_emissions.len());
        for (resp, sim) in responses.iter().zip(&sim_emissions) {
            assert_eq!(
                &resp.prefetch_blocks, sim,
                "serve and sim paths diverged at seq {} with max_degree {}",
                resp.seq, max_degree
            );
        }
        if max_degree == 0 {
            // The clamp must make degree-0 behave as degree-1, not as off.
            assert!(
                responses.iter().any(|r| r.prefetch_blocks.len() == 1),
                "max_degree 0 must emit exactly one prefetch per warm access"
            );
        }
    }
}
