// R4 fixture: analyzed under a crates/serve/src/ path so the rule applies.
use std::io::Write;
use std::sync::{Mutex, PoisonError, RwLock};

pub fn bare_unwrap(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap() // MARK:bare-unwrap
}

pub fn split_chain(m: &Mutex<u32>) -> u32 {
    *m.lock() // MARK:split-chain
        .unwrap()
}

pub fn rwlock_expect(rw: &RwLock<u32>) -> u32 {
    *rw.read().expect("poisoned") // MARK:rwlock-expect
}

pub fn recovering_is_fine(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn io_write_is_not_a_lock(w: &mut dyn Write) {
    w.write(b"x").unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap() {
        let m = Mutex::new(1u32);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
