//! Socket readiness without libc: raw `epoll` syscalls on Linux
//! x86_64/aarch64 (inline-asm shims in the style of `dart-numa`'s
//! affinity module), and a portable sleep-then-probe fallback everywhere
//! else.
//!
//! The fallback reports **every** registered token as readable each tick
//! — spurious readiness, not missed readiness — which is correct (if
//! lazy) against non-blocking sockets: a spurious wakeup costs one
//! `WouldBlock` read. Setting `DART_NET_POLLER=fallback` forces it on
//! Linux too, so CI exercises both backends on one platform.

use std::io;

/// One readiness report.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// Readable (or spuriously assumed so by the fallback backend).
    pub readable: bool,
    /// Writable. Only ever reported for tokens with writable interest
    /// ([`Poller::set_writable`]); the fallback backend reports it
    /// spuriously for those, like it does readability.
    pub writable: bool,
    /// Peer hung up or the socket errored; the owner should read to EOF
    /// and tear the connection down.
    pub hangup: bool,
}

/// A level-triggered readiness poller over raw file descriptors.
pub struct Poller {
    backend: Backend,
    /// Tokens with writable interest, mirrored across backends. This is
    /// the introspection surface tests pin the EPOLLOUT discipline with
    /// (interest registered **only** while an outbox has pending bytes),
    /// and it keeps `set_writable` idempotent without a syscall.
    writable: std::collections::HashSet<u64>,
}

enum Backend {
    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    Epoll(epoll::Epoll),
    Fallback(fallback::Probe),
}

impl Poller {
    /// Build the best backend for this platform (see module docs), with
    /// the fallback backend's default 5 ms probe cap.
    pub fn new() -> io::Result<Poller> {
        Self::with_fallback_sleep(5)
    }

    /// [`Self::new`], but with the fallback backend's probe-sleep cap set
    /// to `sleep_cap_ms` milliseconds (clamped to at least 1 — a zero cap
    /// would turn the sleep-then-probe loop into a busy spin). Irrelevant
    /// when the epoll backend is selected; on fallback it bounds how long
    /// the poller can be blind to new readiness, trading wakeup latency
    /// against idle CPU (`NetConfig::fallback_poller_sleep_ms`).
    pub fn with_fallback_sleep(sleep_cap_ms: u64) -> io::Result<Poller> {
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            let forced = std::env::var("DART_NET_POLLER").is_ok_and(|v| v == "fallback");
            if !forced {
                return Ok(Poller {
                    backend: Backend::Epoll(epoll::Epoll::new()?),
                    writable: std::collections::HashSet::new(),
                });
            }
        }
        Ok(Poller {
            backend: Backend::Fallback(fallback::Probe::new(sleep_cap_ms)),
            writable: std::collections::HashSet::new(),
        })
    }

    /// Which backend is live (`"epoll"` or `"fallback"`).
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backend::Epoll(_) => "epoll",
            Backend::Fallback(_) => "fallback",
        }
    }

    /// Watch `fd` for readability under `token`. Level-triggered: the fd
    /// keeps reporting until drained to `WouldBlock`.
    pub fn register(&mut self, fd: i32, token: u64) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backend::Epoll(e) => e.register(fd, token),
            Backend::Fallback(p) => p.register(token),
        }
    }

    /// Stop watching `fd` / `token`.
    pub fn deregister(&mut self, fd: i32, token: u64) -> io::Result<()> {
        self.writable.remove(&token);
        match &mut self.backend {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backend::Epoll(e) => e.deregister(fd, token),
            Backend::Fallback(p) => p.deregister(token),
        }
    }

    /// Add or drop **writable** interest for an already-registered
    /// `fd`/`token` (readable interest is unaffected). Level-triggered:
    /// while interest is set, a socket with send-buffer space reports
    /// writable on every wait — so callers must register only while they
    /// actually have pending bytes and drop interest once drained, or the
    /// loop busy-spins. Idempotent; no syscall when the interest already
    /// matches.
    pub fn set_writable(&mut self, fd: i32, token: u64, on: bool) -> io::Result<()> {
        if on == self.writable.contains(&token) {
            return Ok(());
        }
        match &mut self.backend {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backend::Epoll(e) => e.set_writable(fd, token, on)?,
            Backend::Fallback(p) => p.set_writable(token, on)?,
        }
        if on {
            self.writable.insert(token);
        } else {
            self.writable.remove(&token);
        }
        Ok(())
    }

    /// Whether `token` currently has writable interest (introspection for
    /// the only-while-pending tests; both backends).
    pub fn writable_interest(&self, token: u64) -> bool {
        self.writable.contains(&token)
    }

    /// How many tokens currently have writable interest.
    pub fn writable_count(&self) -> usize {
        self.writable.len()
    }

    /// Wait up to `timeout_ms` for readiness; clears and refills `out`.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: u64) -> io::Result<()> {
        out.clear();
        match &mut self.backend {
            #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
            Backend::Epoll(e) => e.wait(out, timeout_ms),
            Backend::Fallback(p) => p.wait(out, timeout_ms),
        }
    }
}

/// Real epoll via raw syscalls (no libc).
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
mod epoll {
    use super::Event;
    use std::io;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 291;
        pub const EPOLL_CTL: usize = 233;
        /// Plain `epoll_wait` exists on x86_64; aarch64 only has the
        /// `_pwait` form, so both arches go through `epoll_pwait` with a
        /// null sigmask for one shared call site.
        pub const EPOLL_PWAIT: usize = 281;
        pub const CLOSE: usize = 3;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const CLOSE: usize = 57;
    }

    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;
    const EPOLL_CLOEXEC: usize = 0x80000;
    const MAX_EVENTS: usize = 256;

    /// The kernel's `struct epoll_event`: packed on x86_64 (a 32-bit ABI
    /// fossil), naturally aligned everywhere else.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    /// Six-argument Linux syscall, x86_64 convention: number in `rax`,
    /// args in `rdi`/`rsi`/`rdx`/`r10`/`r8`/`r9`; `syscall` clobbers
    /// `rcx`/`r11`; the (possibly `-errno`) result lands back in `rax`.
    ///
    /// # Safety
    /// Caller must uphold the specific syscall's contract (valid pointers
    /// with correct lengths for the kernel to read/write).
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(nr: usize, a: [usize; 6]) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a[0],
            in("rsi") a[1],
            in("rdx") a[2],
            in("r10") a[3],
            in("r8") a[4],
            in("r9") a[5],
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// Six-argument Linux syscall, aarch64 convention: number in `x8`,
    /// args in `x0`..`x5`, result in `x0`.
    ///
    /// # Safety
    /// Same contract as the x86_64 shim.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(nr: usize, a: [usize; 6]) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a[0] as isize => ret,
            in("x1") a[1],
            in("x2") a[2],
            in("x3") a[3],
            in("x4") a[4],
            in("x5") a[5],
            options(nostack),
        );
        ret
    }

    fn check(rc: isize) -> io::Result<usize> {
        if rc < 0 {
            Err(io::Error::from_raw_os_error(-rc as i32))
        } else {
            Ok(rc as usize)
        }
    }

    pub(super) struct Epoll {
        epfd: i32,
        events: Vec<EpollEvent>,
    }

    impl Epoll {
        pub(super) fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes a flags word, no pointers.
            let rc = unsafe { syscall6(nr::EPOLL_CREATE1, [EPOLL_CLOEXEC, 0, 0, 0, 0, 0]) };
            let epfd = check(rc)? as i32;
            Ok(Epoll { epfd, events: vec![EpollEvent { events: 0, data: 0 }; MAX_EVENTS] })
        }

        pub(super) fn register(&mut self, fd: i32, token: u64) -> io::Result<()> {
            let ev = EpollEvent { events: EPOLLIN | EPOLLRDHUP, data: token };
            // SAFETY: the event pointer is valid for one struct and the
            // kernel only reads it during the call.
            let rc = unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    [
                        self.epfd as usize,
                        EPOLL_CTL_ADD,
                        fd as usize,
                        &ev as *const EpollEvent as usize,
                        0,
                        0,
                    ],
                )
            };
            check(rc).map(|_| ())
        }

        pub(super) fn set_writable(&mut self, fd: i32, token: u64, on: bool) -> io::Result<()> {
            let events = if on { EPOLLIN | EPOLLRDHUP | EPOLLOUT } else { EPOLLIN | EPOLLRDHUP };
            let ev = EpollEvent { events, data: token };
            // SAFETY: as in `register` — one struct, read-only to the
            // kernel for the duration of the call.
            let rc = unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    [
                        self.epfd as usize,
                        EPOLL_CTL_MOD,
                        fd as usize,
                        &ev as *const EpollEvent as usize,
                        0,
                        0,
                    ],
                )
            };
            check(rc).map(|_| ())
        }

        pub(super) fn deregister(&mut self, fd: i32, _token: u64) -> io::Result<()> {
            // A non-null event pointer keeps pre-2.6.9-kernel semantics
            // happy; the kernel ignores its contents for DEL.
            let ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: as in `register`.
            let rc = unsafe {
                syscall6(
                    nr::EPOLL_CTL,
                    [
                        self.epfd as usize,
                        EPOLL_CTL_DEL,
                        fd as usize,
                        &ev as *const EpollEvent as usize,
                        0,
                        0,
                    ],
                )
            };
            check(rc).map(|_| ())
        }

        pub(super) fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: u64) -> io::Result<()> {
            let timeout = timeout_ms.min(i32::MAX as u64) as usize;
            // SAFETY: the events pointer is valid for MAX_EVENTS structs,
            // exclusively borrowed; the kernel writes at most that many.
            // Null sigmask (arg 5) means "don't touch the signal mask",
            // in which case the sigsetsize (arg 6) is ignored.
            let rc = unsafe {
                syscall6(
                    nr::EPOLL_PWAIT,
                    [
                        self.epfd as usize,
                        self.events.as_mut_ptr() as usize,
                        MAX_EVENTS,
                        timeout,
                        0,
                        0,
                    ],
                )
            };
            let n = match check(rc) {
                Ok(n) => n,
                // A stray signal is a spurious wakeup, not a failure.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &self.events[..n] {
                // Copy out of the (possibly packed) struct before use.
                let (bits, token) = (ev.events, ev.data);
                out.push(Event {
                    token,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: closing the fd we own; no pointers involved.
            unsafe { syscall6(nr::CLOSE, [self.epfd as usize, 0, 0, 0, 0, 0]) };
        }
    }
}

/// Portable fallback: sleep out the timeout, then report every
/// registered token as (possibly spuriously) readable.
mod fallback {
    use super::Event;
    use std::io;

    /// A registered token and whether it has writable interest.
    pub(super) struct Probe {
        tokens: Vec<(u64, bool)>,
        /// Upper bound on one probe sleep, milliseconds (>= 1). The
        /// hardcoded 5 ms this replaces was wrong for real non-Linux
        /// deployments: too coarse for latency-sensitive serving, too
        /// fine (pure wasted wakeups) for near-idle links.
        sleep_cap_ms: u64,
    }

    impl Default for Probe {
        /// The historical 5 ms cap (what [`super::Poller::new`] uses).
        fn default() -> Probe {
            Probe::new(5)
        }
    }

    impl Probe {
        pub(super) fn new(sleep_cap_ms: u64) -> Probe {
            Probe { tokens: Vec::new(), sleep_cap_ms: sleep_cap_ms.max(1) }
        }

        pub(super) fn register(&mut self, token: u64) -> io::Result<()> {
            if self.tokens.iter().any(|&(t, _)| t == token) {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "token registered"));
            }
            self.tokens.push((token, false));
            Ok(())
        }

        pub(super) fn deregister(&mut self, token: u64) -> io::Result<()> {
            match self.tokens.iter().position(|&(t, _)| t == token) {
                Some(i) => {
                    self.tokens.swap_remove(i);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "token not registered")),
            }
        }

        pub(super) fn set_writable(&mut self, token: u64, on: bool) -> io::Result<()> {
            match self.tokens.iter_mut().find(|(t, _)| *t == token) {
                Some((_, w)) => {
                    *w = on;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "token not registered")),
            }
        }

        pub(super) fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: u64) -> io::Result<()> {
            // Cap the probe interval so a caller's long timeout does not
            // turn into long stretches of readiness blindness.
            std::thread::sleep(std::time::Duration::from_millis(timeout_ms.min(self.sleep_cap_ms)));
            // Spurious readiness on both axes, but writability only for
            // tokens that asked (same only-while-pending discipline the
            // epoll backend enforces in the kernel).
            out.extend(self.tokens.iter().map(|&(token, writable)| Event {
                token,
                readable: true,
                writable,
                hangup: false,
            }));
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[cfg(unix)]
    fn raw_fd(s: &impl std::os::unix::io::AsRawFd) -> i32 {
        s.as_raw_fd()
    }

    /// Both backends must drive a real socket: register a connected pair,
    /// observe readability only the native backend can claim truthfully,
    /// and spurious readiness from the fallback must still let a
    /// non-blocking read find the bytes.
    #[cfg(unix)]
    fn exercise(mut poller: Poller) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();

        poller.register(raw_fd(&served), 7).unwrap();
        client.write_all(b"ping").unwrap();
        client.flush().unwrap();

        let mut events = Vec::new();
        let mut buf = [0u8; 16];
        let mut got = Vec::new();
        for _ in 0..400 {
            poller.wait(&mut events, 5).unwrap();
            for ev in &events {
                assert_eq!(ev.token, 7);
                if ev.readable {
                    match served.read(&mut buf) {
                        Ok(n) => got.extend_from_slice(&buf[..n]),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                        Err(e) => panic!("read failed: {e}"),
                    }
                }
            }
            if got == b"ping" {
                poller.deregister(raw_fd(&served), 7).unwrap();
                return;
            }
        }
        panic!("poller never surfaced the bytes (backend {})", poller.backend_name());
    }

    /// Writability discipline on a live socket: never reported without
    /// interest, reported while interest is set (an idle socket's send
    /// buffer has space, so epoll must claim it and the fallback may),
    /// and gone again once interest is dropped.
    #[cfg(unix)]
    fn exercise_writable(mut poller: Poller) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();

        poller.register(raw_fd(&served), 7).unwrap();
        assert!(!poller.writable_interest(7));
        assert_eq!(poller.writable_count(), 0);

        let mut events = Vec::new();
        for _ in 0..3 {
            poller.wait(&mut events, 5).unwrap();
            assert!(
                events.iter().all(|ev| !ev.writable),
                "writable reported without interest (backend {})",
                poller.backend_name()
            );
        }

        poller.set_writable(raw_fd(&served), 7, true).unwrap();
        poller.set_writable(raw_fd(&served), 7, true).unwrap(); // idempotent
        assert!(poller.writable_interest(7));
        assert_eq!(poller.writable_count(), 1);
        let mut saw_writable = false;
        for _ in 0..400 {
            poller.wait(&mut events, 5).unwrap();
            if events.iter().any(|ev| ev.token == 7 && ev.writable) {
                saw_writable = true;
                break;
            }
        }
        assert!(
            saw_writable,
            "idle socket never reported writable under interest (backend {})",
            poller.backend_name()
        );

        poller.set_writable(raw_fd(&served), 7, false).unwrap();
        assert!(!poller.writable_interest(7));
        for _ in 0..3 {
            poller.wait(&mut events, 5).unwrap();
            assert!(
                events.iter().all(|ev| !ev.writable),
                "writable reported after interest dropped (backend {})",
                poller.backend_name()
            );
        }

        poller.deregister(raw_fd(&served), 7).unwrap();
        assert_eq!(poller.writable_count(), 0);
    }

    #[cfg(unix)]
    #[test]
    fn native_backend_surfaces_readability() {
        exercise(Poller::new().unwrap());
    }

    #[cfg(unix)]
    #[test]
    fn native_backend_honors_writable_interest() {
        exercise_writable(Poller::new().unwrap());
    }

    #[cfg(unix)]
    #[test]
    fn fallback_backend_honors_writable_interest() {
        let poller = Poller {
            backend: Backend::Fallback(fallback::Probe::default()),
            writable: std::collections::HashSet::new(),
        };
        exercise_writable(poller);
    }

    #[test]
    fn fallback_rejects_writable_interest_on_unknown_token() {
        let mut p = fallback::Probe::default();
        assert!(p.set_writable(3, true).is_err());
        p.register(3).unwrap();
        p.set_writable(3, true).unwrap();
        p.deregister(3).unwrap();
        assert!(p.set_writable(3, false).is_err());
    }

    #[cfg(unix)]
    #[test]
    fn fallback_backend_surfaces_readability() {
        let poller = Poller {
            backend: Backend::Fallback(fallback::Probe::default()),
            writable: std::collections::HashSet::new(),
        };
        assert_eq!(poller.backend_name(), "fallback");
        exercise(poller);
    }

    #[test]
    fn fallback_rejects_double_register_and_unknown_deregister() {
        let mut p = fallback::Probe::default();
        p.register(1).unwrap();
        assert!(p.register(1).is_err());
        assert!(p.deregister(2).is_err());
        p.deregister(1).unwrap();
        let mut out = Vec::new();
        p.wait(&mut out, 0).unwrap();
        assert!(out.is_empty());
    }

    #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
    #[test]
    fn linux_default_backend_is_epoll() {
        // The suite does not set DART_NET_POLLER, so the default must be
        // the real epoll backend here.
        if std::env::var("DART_NET_POLLER").is_err() {
            assert_eq!(Poller::new().unwrap().backend_name(), "epoll");
        }
    }
}
