//! Table printing and machine-readable result recording.

use std::fs;
use std::path::PathBuf;

/// A simple fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given headers.
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }
}

/// Print a table with aligned columns.
pub fn print_table(title: &str, table: &Table) {
    let mut widths: Vec<usize> = table.headers.iter().map(String::len).collect();
    for row in &table.rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    println!("\n=== {title} ===");
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&table.headers));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in &table.rows {
        println!("{}", fmt_row(row));
    }
}

/// Append a JSON record for EXPERIMENTS.md tooling under
/// `target/experiments/<name>.json`.
pub fn record_json(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from("target/experiments");
    if fs::create_dir_all(&dir).is_err() {
        return; // best-effort: records are a convenience, not a requirement
    }
    let path = dir.join(format!("{name}.json"));
    let _ = fs::write(&path, serde_json::to_string_pretty(value).unwrap_or_default());
    println!("[recorded {}]", path.display());
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a byte count in human units.
pub fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2}MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

/// Format an operation/cycle count in K/M units.
pub fn human_count(c: u64) -> String {
    if c >= 1_000_000 {
        format!("{:.1}M", c as f64 / 1e6)
    } else if c >= 1_000 {
        format!("{:.1}K", c as f64 / 1e3)
    } else {
        c.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rejects_misshapen_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn misshapen_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.376), "37.6%");
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(30_000), "29.3KB");
        assert_eq!(human_bytes(4_000_000), "3.81MB");
        assert_eq!(human_count(11_000), "11.0K");
        assert_eq!(human_count(98_300_000), "98.3M");
        assert_eq!(human_count(97), "97");
    }
}
