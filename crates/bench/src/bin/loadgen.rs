//! `loadgen` — drive the `dart-serve` runtime with synthetic multi-stream
//! load and report a pass/fail verdict.
//!
//! Unlike `serve_bench` (a comparative scaling study), this binary is a
//! smoke/soak driver: it runs one configuration, prints a `LoadReport`
//! (throughput, p50/p99 from the runtime's shared latency histogram,
//! failure counts) plus the full metrics exposition, and **exits
//! non-zero** if any response carried an error or any response was lost —
//! suitable as a CI gate or a quick manual health check.
//!
//! Environment knobs:
//!
//! * `DART_LOADGEN_STREAMS` (default 64) — concurrent client streams,
//! * `DART_LOADGEN_ACCESSES` (default 200) — accesses per stream,
//! * `DART_LOADGEN_SHARDS` (default 4) — shard workers,
//! * `DART_LOADGEN_MAX_BATCH` (default 32) — coalescing cap per drain,
//! * `DART_LOADGEN_PANIC_STREAM` (unset by default) — fault injection:
//!   kill the shard serving this stream id mid-batch, to demonstrate the
//!   non-zero exit path and the failure accounting.
//!
//! ```sh
//! cargo run --release -p dart-bench --bin loadgen
//! ```

use std::sync::Arc;

use dart_bench::{announce_threads, env_usize_strict};
use dart_core::config::TabularConfig;
use dart_core::tabularize::tabularize;
use dart_core::TabularModel;
use dart_nn::model::{AccessPredictor, ModelConfig};
use dart_serve::{generate_requests, run_load, LoadGenConfig, ServeConfig, ServeRuntime};
use dart_trace::{build_dataset, workload_by_name, PreprocessConfig};

/// Fit a small DART table model on a synthetic trace (same recipe as
/// `serve_bench`: serving cost does not depend on predictive quality).
fn build_model() -> (Arc<TabularModel>, PreprocessConfig) {
    let pre = PreprocessConfig {
        seq_len: 8,
        addr_segments: 4,
        seg_bits: 6,
        pc_segments: 2,
        delta_range: 16,
        lookforward: 8,
    };
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 16,
        heads: 2,
        layers: 1,
        ffn_dim: 32,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let student = AccessPredictor::new(cfg, 0x5EED).expect("valid model config");
    let trace = workload_by_name("bwaves").expect("workload").generate(4_000, 7);
    let data = build_dataset(&trace, &pre, 2);
    let tab_cfg = TabularConfig { k: 16, c: 2, fine_tune_epochs: 0, ..Default::default() };
    let (model, _) = tabularize(&student, &data.inputs, &tab_cfg);
    (Arc::new(model), pre)
}

fn main() {
    let streams = env_usize_strict("DART_LOADGEN_STREAMS", 64);
    let accesses = env_usize_strict("DART_LOADGEN_ACCESSES", 200);
    let shards = env_usize_strict("DART_LOADGEN_SHARDS", 4);
    let max_batch = env_usize_strict("DART_LOADGEN_MAX_BATCH", 32);
    let panic_stream = std::env::var("DART_LOADGEN_PANIC_STREAM")
        .ok()
        .map(|v| v.parse::<u64>().expect("DART_LOADGEN_PANIC_STREAM must be a stream id"));
    announce_threads();
    println!(
        "loadgen: {streams} streams x {accesses} accesses, {shards} shard(s), \
         max_batch {max_batch}{}",
        match panic_stream {
            Some(id) => format!(", fault injection on stream {id}"),
            None => String::new(),
        }
    );

    let (model, pre) = build_model();
    let reqs =
        generate_requests(&LoadGenConfig { streams, accesses_per_stream: accesses, seed: 0xBEEF });

    let cfg = ServeConfig {
        shards,
        max_batch,
        threshold: 0.5,
        panic_on_stream: panic_stream,
        ..ServeConfig::default()
    };
    let runtime = ServeRuntime::start(model, pre, cfg);
    let report = run_load(&runtime, &reqs, streams);

    println!("{}", report.summary());
    println!("\n--- metrics exposition ---");
    print!("{}", runtime.render_metrics());
    runtime.shutdown();

    if !report.is_ok() {
        eprintln!(
            "loadgen: FAILED ({} failure(s), {}/{} responses)",
            report.failures, report.responses, report.submitted
        );
        std::process::exit(1);
    }
    println!("loadgen: OK");
}
