//! The Prometheus-style plaintext exposition of [`ServeStats`].
//!
//! [`render_exposition`] is a pure function of a stats snapshot, so the
//! document is deterministic given the numbers — the golden test
//! (`tests/exposition_golden.rs`) pins every metric name, `# HELP` /
//! `# TYPE` line, and the ordering; renaming a metric breaks CI instead
//! of breaking downstream scrapers silently.
//!
//! Metric catalog (all durations in nanoseconds; see the README
//! "Observability" section for how to read them):
//!
//! | metric | type | meaning |
//! |---|---|---|
//! | `dart_serve_uptime_seconds` | gauge | seconds since runtime start |
//! | `dart_serve_requests_total{shard}` | counter | requests answered |
//! | `dart_serve_predictions_total` | counter | warm-stream predictions |
//! | `dart_serve_batches_total` | counter | `predict_batch` calls |
//! | `dart_serve_failed_total` | counter | failure responses |
//! | `dart_serve_worker_panics_total` | counter | dead shard workers |
//! | `dart_serve_worker_panic_info{shard,reason}` | gauge | 1 per dead worker, reason label |
//! | `dart_serve_stream_evictions_total` | counter | LRU stream evictions |
//! | `dart_serve_stream_retirements_total` | counter | dead-connection stream retirements |
//! | `dart_serve_in_flight` | gauge | submitted, unanswered |
//! | `dart_serve_queue_depth` | gauge | queued, undrained |
//! | `dart_serve_resident_streams{shard}` | gauge | streams in LRU |
//! | `dart_serve_max_batch` | gauge | largest coalesced batch |
//! | `dart_serve_shard_node{shard}` | gauge | NUMA node (-1 unplaced) |
//! | `dart_serve_shard_pinned{shard}` | gauge | 1 if worker pinned |
//! | `dart_serve_model_version` | gauge | active model version (slot epoch) |
//! | `dart_serve_model_swaps_total` | counter | model hot-swaps since start |
//! | `dart_serve_model_rollbacks_total` | counter | model rollbacks since start |
//! | `dart_serve_shard_model_version{shard}` | gauge | version each shard adopted |
//! | `dart_serve_request_latency_nanoseconds` | histogram | queue+serve |
//! | `dart_serve_batch_size` | histogram | coalesced batch sizes |
//! | `dart_serve_stage_duration_nanoseconds{stage}` | histogram | lifecycle stages |

use dart_telemetry::{Exposition, MetricKind};

use crate::runtime::ServeStats;

/// Render one stats snapshot as a plaintext exposition document.
///
/// Deterministic: same stats, same string. The per-shard series are
/// labelled `{shard="i"}` in shard order; the four lifecycle stages share
/// one histogram family labelled `{stage="..."}` in pipeline order
/// (queue_wait → coalesce → kernel → sink).
pub fn render_exposition(stats: &ServeStats) -> String {
    let mut e = Exposition::new();

    e.header("dart_serve_uptime_seconds", MetricKind::Gauge, "Seconds since the runtime started.");
    e.sample("dart_serve_uptime_seconds", &[], format!("{:.3}", stats.uptime_ns as f64 / 1e9));

    e.header(
        "dart_serve_requests_total",
        MetricKind::Counter,
        "Requests answered by shard workers (failure responses are counted \
         in dart_serve_failed_total instead).",
    );
    let shard_ids: Vec<String> =
        (0..stats.per_shard_requests.len()).map(|i| i.to_string()).collect();
    for (id, &n) in shard_ids.iter().zip(&stats.per_shard_requests) {
        e.sample("dart_serve_requests_total", &[("shard", id.as_str())], n);
    }

    e.header(
        "dart_serve_predictions_total",
        MetricKind::Counter,
        "Model predictions made (requests whose stream history was warm).",
    );
    e.sample("dart_serve_predictions_total", &[], stats.predictions);

    e.header(
        "dart_serve_batches_total",
        MetricKind::Counter,
        "Batched predict_batch calls issued across all shards.",
    );
    e.sample("dart_serve_batches_total", &[], stats.batches);

    e.header(
        "dart_serve_failed_total",
        MetricKind::Counter,
        "Failure responses delivered (worker panic, dead shard, shutdown).",
    );
    e.sample("dart_serve_failed_total", &[], stats.failed);

    e.header(
        "dart_serve_worker_panics_total",
        MetricKind::Counter,
        "Shard workers that died; non-zero means degraded capacity.",
    );
    e.sample("dart_serve_worker_panics_total", &[], stats.worker_panics.len());

    // Only emitted when a worker has actually died: an info-style gauge
    // whose `reason` label carries the panic message verbatim. Panic
    // payloads are arbitrary strings — quotes, backslashes, newlines —
    // so this family is exactly the place where label escaping must hold
    // (tests/exposition_escape.rs proves it stays parseable).
    if !stats.worker_panics.is_empty() {
        e.header(
            "dart_serve_worker_panic_info",
            MetricKind::Gauge,
            "One series per dead shard worker; the reason label is the \
             panic message.",
        );
        for (shard, reason) in &stats.worker_panics {
            let id = shard.to_string();
            e.sample(
                "dart_serve_worker_panic_info",
                &[("shard", id.as_str()), ("reason", reason.as_str())],
                1,
            );
        }
    }

    e.header(
        "dart_serve_stream_evictions_total",
        MetricKind::Counter,
        "Streams evicted by the per-shard LRU cap.",
    );
    e.sample("dart_serve_stream_evictions_total", &[], stats.stream_evictions);

    e.header(
        "dart_serve_stream_retirements_total",
        MetricKind::Counter,
        "Streams retired by dead-connection cleanup.",
    );
    e.sample("dart_serve_stream_retirements_total", &[], stats.stream_retirements);

    e.header("dart_serve_in_flight", MetricKind::Gauge, "Requests submitted but not yet answered.");
    e.sample("dart_serve_in_flight", &[], stats.in_flight);

    e.header(
        "dart_serve_queue_depth",
        MetricKind::Gauge,
        "Requests sitting in shard queues, not yet drained by a worker.",
    );
    e.sample("dart_serve_queue_depth", &[], stats.queue_depth);

    e.header(
        "dart_serve_resident_streams",
        MetricKind::Gauge,
        "Streams resident in each shard's bounded LRU map.",
    );
    for (id, &n) in shard_ids.iter().zip(&stats.per_shard_streams) {
        e.sample("dart_serve_resident_streams", &[("shard", id.as_str())], n);
    }

    e.header(
        "dart_serve_max_batch",
        MetricKind::Gauge,
        "Largest coalesced batch observed on any shard.",
    );
    e.sample("dart_serve_max_batch", &[], stats.max_batch);

    e.header(
        "dart_serve_shard_node",
        MetricKind::Gauge,
        "NUMA node each shard worker was assigned to (-1 = unplaced).",
    );
    for (id, node) in shard_ids.iter().zip(&stats.per_shard_node) {
        e.sample(
            "dart_serve_shard_node",
            &[("shard", id.as_str())],
            node.map(|n| n as i64).unwrap_or(-1),
        );
    }

    e.header(
        "dart_serve_shard_pinned",
        MetricKind::Gauge,
        "Whether each shard worker pinned itself to its node's cpuset.",
    );
    for (id, &pinned) in shard_ids.iter().zip(&stats.per_shard_pinned) {
        e.sample("dart_serve_shard_pinned", &[("shard", id.as_str())], pinned as u8);
    }

    e.header(
        "dart_serve_model_version",
        MetricKind::Gauge,
        "Active model version (ModelSlot epoch; starts at 1, bumps on \
         every hot-swap including rollbacks). Correlate latency or \
         hit-rate shifts with promotions through this.",
    );
    e.sample("dart_serve_model_version", &[], stats.model_version);

    e.header(
        "dart_serve_model_swaps_total",
        MetricKind::Counter,
        "Model hot-swaps since startup (promotions + rollbacks).",
    );
    e.sample("dart_serve_model_swaps_total", &[], stats.model_swaps);

    e.header(
        "dart_serve_model_rollbacks_total",
        MetricKind::Counter,
        "Explicit model rollbacks since startup (each also counts as a \
         swap).",
    );
    e.sample("dart_serve_model_rollbacks_total", &[], stats.model_rollbacks);

    e.header(
        "dart_serve_shard_model_version",
        MetricKind::Gauge,
        "Model version each shard worker most recently adopted (0 = \
         initial adoption still pending; lagging = may serve one more \
         batch on the previous version).",
    );
    for (id, &v) in shard_ids.iter().zip(&stats.per_shard_model_version) {
        e.sample("dart_serve_shard_model_version", &[("shard", id.as_str())], v);
    }

    e.header(
        "dart_serve_request_latency_nanoseconds",
        MetricKind::Histogram,
        "Request latency (enqueue to response), log2 buckets.",
    );
    e.histogram("dart_serve_request_latency_nanoseconds", &[], &stats.latency);

    e.header(
        "dart_serve_batch_size",
        MetricKind::Histogram,
        "Coalesced batch-size distribution (requests per predict_batch).",
    );
    e.histogram("dart_serve_batch_size", &[], &stats.batch_sizes);

    e.header(
        "dart_serve_stage_duration_nanoseconds",
        MetricKind::Histogram,
        "Request-lifecycle stage durations (queue_wait per request; \
         coalesce/kernel/sink per batch). Empty without the telemetry \
         feature.",
    );
    for (stage, hist) in [
        ("queue_wait", &stats.stage_queue_wait),
        ("coalesce", &stats.stage_coalesce),
        ("kernel", &stats.stage_kernel),
        ("sink", &stats.stage_sink),
    ] {
        e.histogram("dart_serve_stage_duration_nanoseconds", &[("stage", stage)], hist);
    }

    e.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_deterministic_and_covers_the_catalog() {
        let mut stats = ServeStats {
            requests: 7,
            per_shard_requests: vec![4, 3],
            per_shard_streams: vec![2, 1],
            per_shard_node: vec![Some(0), None],
            per_shard_pinned: vec![true, false],
            model_version: 3,
            model_swaps: 2,
            model_rollbacks: 1,
            per_shard_model_version: vec![3, 2],
            ..ServeStats::default()
        };
        stats.latency.record(900);
        let a = render_exposition(&stats);
        let b = render_exposition(&stats);
        assert_eq!(a, b);
        for name in [
            "dart_serve_uptime_seconds",
            "dart_serve_requests_total{shard=\"1\"} 3",
            "dart_serve_shard_node{shard=\"1\"} -1",
            "dart_serve_shard_pinned{shard=\"0\"} 1",
            "dart_serve_model_version 3",
            "dart_serve_model_swaps_total 2",
            "dart_serve_model_rollbacks_total 1",
            "dart_serve_shard_model_version{shard=\"1\"} 2",
            "dart_serve_request_latency_nanoseconds_count 1",
            "dart_serve_stage_duration_nanoseconds_bucket{stage=\"kernel\",le=\"+Inf\"} 0",
        ] {
            assert!(a.contains(name), "missing `{name}` in:\n{a}");
        }
        // Every non-comment line belongs to a family announced by a TYPE
        // line (scrapers reject untyped samples in strict mode).
        let typed: Vec<&str> = a
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        for line in a.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            let base = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(typed.contains(&base), "sample `{name}` has no TYPE line");
        }
    }
}
