//! The `GET /metrics` scrape must serve the same document
//! `ServeRuntime::render_metrics()` renders in-process.
//!
//! This test lives in its own binary on purpose: the `dart_net_*`
//! counters sit in the process-global telemetry registry, so any other
//! test running a server concurrently would move them between the
//! scrape and the in-process render. Alone in its binary, the only
//! drift is what the scrape itself causes — and those few series are
//! exactly enumerated below.

mod common;

use dart_net::{fetch_metrics, ClientEvent, NetClient, NetConfig, NetServer};
use dart_serve::ServeConfig;
use std::time::Duration;

/// Series legitimately different between scrape time and a later
/// in-process render: wall-clock, the scrape connection's own lifecycle,
/// and its disconnect accounting.
fn volatile(line: &str) -> bool {
    line.contains("dart_serve_uptime_seconds")
        || line.contains("dart_net_connections_active")
        || line.contains("dart_net_disconnects_total")
}

fn strip_volatile(doc: &str) -> String {
    doc.lines().filter(|l| !volatile(l)).collect::<Vec<_>>().join("\n")
}

#[test]
fn http_scrape_equals_in_process_exposition() {
    let runtime = common::start_runtime(ServeConfig {
        shards: 2,
        max_batch: 16,
        threshold: 0.0,
        ..ServeConfig::default()
    });
    let server = NetServer::start(runtime.clone(), NetConfig::default()).unwrap();
    let addr = server.local_addr();

    // Put real traffic through so the document is non-trivial.
    let mut client = NetClient::connect(addr).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for access in 0..10u64 {
        for stream in 0..6u32 {
            client.send_request(stream, 0x400, (stream as u64) << 20 | access << 6);
        }
    }
    for _ in 0..60 {
        match client.recv_event().unwrap() {
            ClientEvent::Response(_) => {}
            ClientEvent::Nack(n) => panic!("unexpected NACK {n:?}"),
        }
    }
    runtime.wait_idle();

    let scraped = fetch_metrics(addr).unwrap();
    let in_process = runtime.render_metrics();
    assert_eq!(
        strip_volatile(&scraped),
        strip_volatile(&in_process),
        "HTTP scrape and in-process render must be the same document \
         (modulo uptime and the scrape connection's own series)"
    );

    // The scrape saw the serve traffic and the net counters.
    assert!(scraped.contains("dart_serve_requests_total{shard=\"0\"}"), "{scraped}");
    assert!(scraped.contains("dart_net_frames_in_total 60"), "{scraped}");
    assert!(scraped.contains("dart_net_responses_out_total 60"), "{scraped}");
    assert!(scraped.contains("dart_net_connections_accepted_total"), "{scraped}");
    assert!(scraped.contains("dart_net_http_requests_total 1"), "{scraped}");
    server.shutdown();
}
