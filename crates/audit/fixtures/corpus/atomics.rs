// R3 fixture: which Relaxed/SeqCst uses gate and which are exempt.
use std::sync::atomic::{AtomicUsize, Ordering};

pub static N: AtomicUsize = AtomicUsize::new(0);

pub fn hot_relaxed() {
    N.fetch_add(1, Ordering::Relaxed); // MARK:hot-relaxed
}

pub fn hot_seqcst() {
    N.store(0, Ordering::SeqCst); // MARK:hot-seqcst
}

pub fn strings_do_not_count() -> &'static str {
    "Ordering::Relaxed inside a string literal"
}

pub fn acquire_release_exempt() {
    N.store(0, Ordering::Release);
    let _ = N.load(Ordering::Acquire);
}

pub enum MyOrdering {
    Relaxed,
}

pub fn word_boundary(_o: MyOrdering) -> MyOrdering {
    MyOrdering::Relaxed // not std's Ordering
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_use_any_ordering() {
        N.store(0, Ordering::SeqCst);
        let _ = N.load(Ordering::Relaxed);
    }
}
