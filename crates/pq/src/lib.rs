//! # dart-pq — product-quantization tabularization kernels
//!
//! Implements §II-B and §V of the DART paper: the machinery that converts
//! the matrix multiplications of an attention-based neural network into
//! table lookups.
//!
//! * [`kmeans`] — k-means++ / Lloyd prototype learning (paper Eq. 5),
//! * [`quantizer`] — per-subspace quantizers: exact arg-min encoding and a
//!   MADDNESS-style balanced hash-tree encoder with `log2(K)` query depth
//!   (the paper's "locality sensitive hashing \[24\]" encoder),
//! * [`linear_table`] — the **linear kernel** (Eq. 10–11): precomputed
//!   prototype·weight tables with the bias folded into one subspace,
//! * [`attention_table`] — the **attention kernel** (Eq. 12–15): a QK table
//!   of pairwise prototype products, a second quantization of the
//!   intermediate `QK^T`, and a QKV table with scaling and activation folded
//!   into the prototypes,
//! * [`sigmoid_lut`] — fixed lookup-table sigmoid (paper ref. \[46\]),
//! * [`complexity`] — the latency / storage / arithmetic-operation formulas
//!   of Eq. 16–21 used by DART's table configurator,
//! * [`simd`] — runtime-dispatched AVX2/NEON kernels for the tiled arena
//!   loops (behind the `simd` feature), bit-for-bit identical to the
//!   scalar tiles that remain the mandatory fallback.

pub mod arena;
pub mod attention_table;
pub mod complexity;
pub mod fused;
pub mod kmeans;
pub mod linear_table;
pub mod profile;
pub mod quantized;
pub mod quantizer;
pub mod sigmoid_lut;
pub mod simd;

pub use arena::{CodebookArena, TableArena};
pub use attention_table::{
    AttentionActivation, AttentionTable, AttentionTableConfig, ATTN_TILE_SAMPLES,
};
pub use fused::FusedFfnTable;
pub use linear_table::{LinearTable, ProtoTransform, AGG_TILE_ROWS};
pub use profile::profile_kernel;
pub use quantized::QuantizedLinearTable;
pub use quantizer::{EncoderKind, ProductQuantizer, Quantizer, ENCODE_TILE_ROWS};
pub use sigmoid_lut::SigmoidLut;
pub use simd::{SimdLevel, SimdOps};
