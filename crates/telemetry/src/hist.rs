//! Log2-bucketed value histograms: the plain, mergeable [`Histogram`]
//! (promoted from `dart-serve`'s shard internals, where it recorded
//! request latencies) and its lock-free twin [`AtomicHistogram`] for
//! concurrent recording without a mutex.
//!
//! Bucket `i` covers `[2^i, 2^(i+1))`, so percentiles are exact to within
//! ~1.5x at O(1) memory regardless of how many samples a long-running
//! process records. Values are unit-agnostic — the serve runtime uses
//! nanoseconds for latencies and plain counts for batch sizes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: one per `u64` bit position.
pub const BUCKETS: usize = 64;

#[inline]
fn bucket_of(value: u64) -> usize {
    // A 0 sample counts into bucket 0 ([1, 2)) instead of underflowing
    // the bucket index.
    63 - value.max(1).leading_zeros() as usize
}

/// Fixed-size log2-bucketed histogram. Single-writer (or externally
/// synchronized) recording; cloneable snapshot semantics; mergeable.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0 }
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample. The sum saturates instead of wrapping so
    /// [`Self::mean`] stays an upper bound even after pathological
    /// (`u64::MAX`) samples.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Nearest-rank percentile (bucket midpoint); 0 when empty.
    ///
    /// `q` is clamped to `[0, 1]`: `q <= 0` is the minimum sample's
    /// bucket, `q >= 1` the maximum's, and NaN is treated as 0 — out of
    /// range quantiles used to fall through to bogus ranks (or the mean
    /// fallback) instead of an answer on the distribution.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                let lo = 1u64 << i;
                return lo + lo / 2;
            }
        }
        self.sum / self.count
    }

    /// Exact mean (saturating sum over count); 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Index of the highest non-empty bucket, if any sample was recorded.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }
}

/// Lock-free histogram for concurrent writers: identical bucketing to
/// [`Histogram`], recorded with relaxed atomic adds.
///
/// [`Self::snapshot`] derives the count from the bucket array itself, so a
/// snapshot taken mid-record is always *internally* consistent (count ==
/// sum of buckets) even though it may miss in-flight samples; the value
/// sum is tracked separately and is therefore approximate (within the
/// in-flight samples) relative to the buckets.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    pub fn new() -> AtomicHistogram {
        AtomicHistogram::default()
    }

    /// Record one sample; safe from any thread, no lock.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        // fetch_add wraps rather than saturates; one wrap needs count *
        // mean ~ 2^64 ns (= 584 years of summed latency), so plain add is
        // acceptable where a mutable histogram saturates.
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Materialize a plain [`Histogram`] view of the current state.
    pub fn snapshot(&self) -> Histogram {
        let mut out = Histogram::new();
        let mut count = 0u64;
        for (dst, src) in out.buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
            count += *dst;
        }
        out.count = count;
        out.sum = self.sum.load(Ordering::Relaxed);
        out
    }

    /// Samples recorded so far (sum over buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn histogram_percentiles_are_monotone_and_bucketed() {
        let mut h = Histogram::new();
        for ns in [100u64, 200, 400, 800, 1600, 100_000] {
            h.record(ns);
        }
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        assert!(p99 >= p50);
        // p99 lands in the bucket of the 100_000 ns outlier: [2^16, 2^17).
        assert!((65_536..131_072).contains(&p99), "p99 {p99}");
        assert_eq!(h.mean(), (100 + 200 + 400 + 800 + 1600 + 100_000) / 6);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.50), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_bucket(), None);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1_000);
        b.record(2_000);
        b.record(3_000);
        a.merge(&b);
        assert_eq!(a.mean(), 2_000);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn histogram_bucket_boundaries_zero_one_and_max() {
        // 0 is clamped into bucket 0 ([1, 2)) rather than underflowing
        // the bucket index; 1 is the true lower boundary of bucket 0.
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.percentile(0.5), 1, "bucket 0 midpoint");
        // Exact powers of two land in the bucket they open: 2^i is the
        // inclusive lower bound of bucket i.
        let mut p2 = Histogram::new();
        p2.record(1 << 10);
        let mid = (1u64 << 10) + (1 << 9);
        assert_eq!(p2.percentile(0.5), mid);
        let mut below = Histogram::new();
        below.record((1 << 10) - 1);
        assert!(below.percentile(0.5) < 1 << 10, "2^10 - 1 belongs to bucket 9");
        // u64::MAX lands in the top bucket and its reported midpoint does
        // not overflow.
        let mut top = Histogram::new();
        top.record(u64::MAX);
        assert_eq!(top.percentile(0.99), (1u64 << 63) + (1 << 62));
        assert_eq!(top.max_bucket(), Some(63));
    }

    #[test]
    fn percentile_clamps_quantile_to_unit_interval() {
        // Regression: `percentile(1.5)` used to compute rank > count and
        // fall through every bucket to the mean fallback; negative/NaN `q`
        // produced bogus rank-1-ish answers by accident of float `max`.
        let mut h = Histogram::new();
        for ns in [10u64, 1_000, 100_000] {
            h.record(ns);
        }
        let lo = h.percentile(0.0); // minimum sample's bucket midpoint
        let hi = h.percentile(1.0); // maximum sample's bucket midpoint
        assert!((8..16).contains(&lo), "p0 must land in the 10 ns bucket, got {lo}");
        assert!((65_536..131_072).contains(&hi), "p100 must land in the 100 µs bucket, got {hi}");
        // Out-of-range and NaN quantiles clamp instead of misbehaving.
        assert_eq!(h.percentile(1.5), hi);
        assert_eq!(h.percentile(f64::INFINITY), hi);
        assert_eq!(h.percentile(-3.0), lo);
        assert_eq!(h.percentile(f64::NAN), lo);
        // Clamping does not disturb interior quantiles: rank 2 of 3 is the
        // 1000 ns sample, bucket [512, 1024) with midpoint 768.
        assert_eq!(h.percentile(0.5), 768);
        // Empty histograms still report 0 for any q.
        assert_eq!(Histogram::new().percentile(f64::NAN), 0);
        assert_eq!(Histogram::new().percentile(1.5), 0);
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        // A wrapping sum would report a tiny mean; saturation keeps it at
        // the ceiling divided by the count.
        assert_eq!(h.mean(), u64::MAX / 2);
        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.mean(), u64::MAX / 3);
    }

    #[test]
    fn atomic_histogram_matches_plain_recording() {
        let a = AtomicHistogram::new();
        let mut p = Histogram::new();
        for v in [0u64, 1, 7, 1024, 1025, 1 << 40] {
            a.record(v);
            p.record(v);
        }
        let snap = a.snapshot();
        assert_eq!(snap.buckets(), p.buckets());
        assert_eq!(snap.count(), p.count());
        assert_eq!(snap.sum(), p.sum());
        assert_eq!(snap.percentile(0.5), p.percentile(0.5));
    }

    #[test]
    fn atomic_histogram_snapshot_is_internally_consistent_under_writers() {
        let h = Arc::new(AtomicHistogram::new());
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(i * 37 + t);
                    }
                })
            })
            .collect();
        // Poll snapshots while writers run: count must always equal the
        // sum of buckets (it is derived from them) and never decrease.
        let mut last = 0u64;
        for _ in 0..50 {
            let snap = h.snapshot();
            let total: u64 = snap.buckets().iter().sum();
            assert_eq!(snap.count(), total);
            assert!(snap.count() >= last, "count went backwards");
            last = snap.count();
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 20_000);
    }
}
