//! Synthetic SPEC-like workload generators.
//!
//! The paper evaluates on LLC traces of eight SPEC CPU 2006/2017 apps
//! (Table IV). Those traces are not redistributable, so this module
//! generates synthetic access streams whose *pattern class* (streaming,
//! strided stencil, region-hopping, pointer-chasing) and trace statistics
//! (unique block addresses / pages / deltas) track the paper's Table IV —
//! the properties §VII-B identifies as governing prediction difficulty.
//!
//! Every generator is deterministic given a seed.

mod patterns;

pub use patterns::{AccessPattern, ArraySpec};

use dart_nn::init::InitRng;

use crate::record::TraceRecord;
use patterns::{MixedState, PatternState};

/// The pattern class of a workload.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadKind {
    /// Parallel sequential streams with per-stream strides (bwaves/libquantum).
    Streaming {
        /// Number of interleaved streams.
        streams: usize,
        /// Stride choices, in blocks (each stream picks one).
        strides: Vec<i64>,
        /// Footprint in 4 KiB pages.
        region_pages: u64,
        /// Probability a stream restarts at a random offset per access.
        restart_prob: f32,
    },
    /// Multi-array stencil sweeps (leslie3d/lbm): fixed block strides per array.
    Stencil {
        /// The arrays being swept.
        arrays: Vec<ArraySpec>,
    },
    /// Short sequential bursts at random pages (milc-like irregular-regular).
    RegionHop {
        /// Footprint in pages.
        region_pages: u64,
        /// Blocks touched per burst.
        burst_len: usize,
    },
    /// Pointer chasing over a randomized node graph (mcf-like).
    PointerChase {
        /// Number of graph nodes (one block each).
        nodes: usize,
        /// Footprint in pages the nodes are scattered over.
        region_pages: u64,
    },
    /// Weighted mixture of other kinds (gcc/wrf-like).
    Mixed {
        /// `(weight, kind)` components; weights need not be normalized.
        parts: Vec<(f32, WorkloadKind)>,
        /// Accesses the active component keeps before re-drawing.
        burst: usize,
    },
}

/// A named workload: pattern plus instruction-gap model.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name, e.g. `"410.bwaves"`.
    pub name: String,
    /// Pattern class.
    pub kind: WorkloadKind,
    /// Uniform range of non-memory instructions between accesses.
    pub instr_gap: (u64, u64),
}

impl Workload {
    /// Generate `len` LLC accesses deterministically from `seed`.
    pub fn generate(&self, len: usize, seed: u64) -> Vec<TraceRecord> {
        let mut rng = InitRng::new(seed ^ 0xC0FFEE);
        let mut state = PatternState::new(&self.kind, &mut rng);
        let mut records = Vec::with_capacity(len);
        let mut instr_id = 0u64;
        let (gap_lo, gap_hi) = self.instr_gap;
        for _ in 0..len {
            let (pc, addr) = state.next_access(&mut rng);
            records.push(TraceRecord { instr_id, pc, addr });
            let gap =
                if gap_hi > gap_lo { gap_lo + rng.next_u64() % (gap_hi - gap_lo) } else { gap_lo };
            instr_id += 1 + gap;
        }
        records
    }
}

/// Construct the mixed-pattern runtime for external composition tests.
pub fn mixed_state(kind: &WorkloadKind, rng: &mut InitRng) -> MixedState {
    MixedState::new(kind, rng)
}

/// The eight workloads standing in for the paper's Table IV applications.
///
/// Region sizes and pattern mixes are tuned so the generated traces land in
/// the same bands of unique pages / deltas the paper reports (regenerate the
/// comparison with `cargo run -p dart-bench --bin exp_table4`).
pub fn spec_workloads() -> Vec<Workload> {
    vec![
        Workload {
            // 236.5K addr / 3.7K pages / 14.4K deltas — many streams.
            name: "410.bwaves".into(),
            kind: WorkloadKind::Streaming {
                streams: 16,
                strides: vec![1],
                region_pages: 3_700,
                restart_prob: 0.002,
            },
            instr_gap: (40, 120),
        },
        Workload {
            // 170.7K addr / 19.8K pages / 15.8K deltas — page-hopping bursts.
            name: "433.milc".into(),
            kind: WorkloadKind::RegionHop { region_pages: 19_800, burst_len: 8 },
            instr_gap: (40, 120),
        },
        Workload {
            // 104.3K addr / 1.7K pages / 3.6K deltas — stencil sweeps.
            name: "437.leslie3d".into(),
            kind: WorkloadKind::Stencil {
                arrays: vec![
                    ArraySpec { pages: 600, stride: 1 },
                    ArraySpec { pages: 550, stride: 9 },
                    ArraySpec { pages: 550, stride: 81 },
                ],
            },
            instr_gap: (50, 150),
        },
        Workload {
            // 347.8K addr / 5.4K pages / 0.5K deltas — nearly pure stream.
            name: "462.libquantum".into(),
            kind: WorkloadKind::Streaming {
                streams: 2,
                strides: vec![1],
                region_pages: 5_400,
                restart_prob: 0.0005,
            },
            instr_gap: (30, 90),
        },
        Workload {
            // 195.8K addr / 3.4K pages / 4.9K deltas — code-like mix.
            name: "602.gcc".into(),
            kind: WorkloadKind::Mixed {
                parts: vec![
                    (
                        0.7,
                        WorkloadKind::Streaming {
                            streams: 6,
                            strides: vec![2],
                            region_pages: 2_400,
                            restart_prob: 0.004,
                        },
                    ),
                    (0.3, WorkloadKind::RegionHop { region_pages: 1_000, burst_len: 4 }),
                ],
                burst: 16,
            },
            instr_gap: (40, 100),
        },
        Workload {
            // 176.0K addr / 3.7K pages / 207.7K deltas — pointer chasing.
            // 40K nodes trades some unique-address mass for edge revisits
            // (each node is walked ~5x in a 200K trace), which is what lets
            // *any* predictor get traction on mcf.
            name: "605.mcf".into(),
            kind: WorkloadKind::PointerChase { nodes: 40_000, region_pages: 3_700 },
            instr_gap: (60, 200),
        },
        Workload {
            // 121.8K addr / 1.9K pages / 1.2K deltas — grid sweeps.
            name: "619.lbm".into(),
            kind: WorkloadKind::Stencil {
                arrays: vec![
                    ArraySpec { pages: 950, stride: 1 },
                    ArraySpec { pages: 950, stride: 3 },
                ],
            },
            instr_gap: (40, 110),
        },
        Workload {
            // 188.5K addr / 3.3K pages / 13.7K deltas — stencil + hops.
            name: "621.wrf".into(),
            kind: WorkloadKind::Mixed {
                parts: vec![
                    (
                        0.6,
                        WorkloadKind::Stencil {
                            arrays: vec![
                                ArraySpec { pages: 1_100, stride: 1 },
                                ArraySpec { pages: 1_100, stride: 13 },
                            ],
                        },
                    ),
                    (0.4, WorkloadKind::RegionHop { region_pages: 1_100, burst_len: 6 }),
                ],
                burst: 8,
            },
            instr_gap: (40, 120),
        },
    ]
}

/// Look a workload up by (suffix of its) name, e.g. `"mcf"`.
pub fn workload_by_name(name: &str) -> Option<Workload> {
    spec_workloads().into_iter().find(|w| w.name.contains(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn eight_workloads_defined() {
        assert_eq!(spec_workloads().len(), 8);
    }

    #[test]
    fn deterministic_generation() {
        let w = workload_by_name("bwaves").unwrap();
        let a = w.generate(1000, 42);
        let b = w.generate(1000, 42);
        assert_eq!(a, b);
        let c = w.generate(1000, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn instr_ids_strictly_increase() {
        for w in spec_workloads() {
            let trace = w.generate(500, 7);
            for pair in trace.windows(2) {
                assert!(pair[1].instr_id > pair[0].instr_id, "{}", w.name);
            }
        }
    }

    #[test]
    fn libquantum_has_few_deltas_mcf_many() {
        let libq = workload_by_name("libquantum").unwrap().generate(20_000, 1);
        let mcf = workload_by_name("mcf").unwrap().generate(20_000, 1);
        let s_libq = TraceStats::compute(&libq);
        let s_mcf = TraceStats::compute(&mcf);
        assert!(
            s_libq.unique_deltas * 20 < s_mcf.unique_deltas,
            "libquantum {} vs mcf {}",
            s_libq.unique_deltas,
            s_mcf.unique_deltas
        );
    }

    #[test]
    fn milc_touches_more_pages_than_leslie() {
        let milc = workload_by_name("milc").unwrap().generate(30_000, 3);
        let les = workload_by_name("leslie3d").unwrap().generate(30_000, 3);
        assert!(TraceStats::compute(&milc).unique_pages > TraceStats::compute(&les).unique_pages);
    }

    #[test]
    fn footprints_are_bounded_by_region() {
        let w = workload_by_name("bwaves").unwrap();
        let trace = w.generate(50_000, 5);
        let stats = TraceStats::compute(&trace);
        // Streaming over 3.7K pages: page count can't exceed the region
        // (plus one page of slack for stride overshoot).
        assert!(stats.unique_pages <= 3_701 + 16, "pages {}", stats.unique_pages);
    }

    #[test]
    fn workload_by_name_misses_gracefully() {
        assert!(workload_by_name("no-such-app").is_none());
    }
}
