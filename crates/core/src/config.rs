//! Configuration types shared across the DART pipeline.

use dart_nn::model::ModelConfig;
use dart_pq::{AttentionActivation, EncoderKind};
use serde::{Deserialize, Serialize};

/// Prefetcher design constraints (paper Eq. 9): latency bound `τ` in cycles
/// and storage bound `s` in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignConstraints {
    /// Latency constraint `τ` (cycles).
    pub latency_cycles: u64,
    /// Storage constraint `s` (bytes).
    pub storage_bytes: u64,
}

impl DesignConstraints {
    /// The paper's DART-S constraints (Table VIII): 60 cycles, 30 KB.
    pub fn dart_s() -> Self {
        DesignConstraints { latency_cycles: 60, storage_bytes: 30_000 }
    }

    /// The paper's DART constraints (Table VIII): 100 cycles, 1 MB.
    pub fn dart() -> Self {
        DesignConstraints { latency_cycles: 100, storage_bytes: 1_000_000 }
    }

    /// The paper's DART-L constraints (Table VIII): 200 cycles, 4 MB.
    pub fn dart_l() -> Self {
        DesignConstraints { latency_cycles: 200, storage_bytes: 4_000_000 }
    }
}

/// A structural + table configuration chosen by the configurator
/// (paper Table VIII format: `(L, D, H, K, C)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Encoder layers `L`.
    pub layers: usize,
    /// Hidden dimension `D`.
    pub dim: usize,
    /// Attention heads `H`.
    pub heads: usize,
    /// Prototypes per subspace `K`.
    pub k: usize,
    /// Subspaces `C` (shared across kernels, as in Table V/VIII).
    pub c: usize,
}

impl PredictorConfig {
    /// The paper's DART configuration (Table V): `(1, 32, 2, 128, 2)`.
    pub fn dart() -> Self {
        PredictorConfig { layers: 1, dim: 32, heads: 2, k: 128, c: 2 }
    }

    /// The paper's DART-S configuration (Table VIII): `(1, 16, 2, 16, 1)`.
    pub fn dart_s() -> Self {
        PredictorConfig { layers: 1, dim: 16, heads: 2, k: 16, c: 1 }
    }

    /// The paper's DART-L configuration (Table VIII): `(2, 32, 2, 256, 2)`.
    pub fn dart_l() -> Self {
        PredictorConfig { layers: 2, dim: 32, heads: 2, k: 256, c: 2 }
    }

    /// Feed-forward inner dimension (`D_F = 4D`, the convention that
    /// reproduces the paper's Table V complexity numbers).
    pub fn ffn_dim(&self) -> usize {
        4 * self.dim
    }

    /// Expand to a full `dart-nn` model configuration.
    pub fn to_model_config(
        &self,
        input_dim: usize,
        output_dim: usize,
        seq_len: usize,
    ) -> ModelConfig {
        ModelConfig {
            input_dim,
            dim: self.dim,
            heads: self.heads,
            layers: self.layers,
            ffn_dim: self.ffn_dim(),
            output_dim,
            seq_len,
        }
    }
}

/// Knobs of the tabularization step (Algorithm 1).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TabularConfig {
    /// Prototypes per subspace `K`.
    pub k: usize,
    /// Subspaces `C` (used for both `C_k` and `C_t`).
    pub c: usize,
    /// Encoder used by every quantizer.
    pub encoder: EncoderKind,
    /// Activation folded into the attention QKV tables (Eq. 14).
    pub activation: AttentionActivation,
    /// Fine-tuning epochs `E` per linear layer; 0 disables fine-tuning
    /// (the paper's "DART w/o FT" ablation).
    pub fine_tune_epochs: usize,
    /// Fine-tuning learning rate.
    pub fine_tune_lr: f32,
    /// Collapse each FFN into a single fused table (paper §VIII future
    /// work): halves FFN latency at an accuracy cost.
    pub fuse_ffn: bool,
    /// PRNG seed for prototype learning and fine-tuning.
    pub seed: u64,
}

impl Default for TabularConfig {
    fn default() -> Self {
        TabularConfig {
            k: 128,
            c: 2,
            encoder: EncoderKind::Argmin,
            activation: AttentionActivation::SigmoidScaled,
            fine_tune_epochs: 8,
            fine_tune_lr: 1e-3,
            fuse_ffn: false,
            seed: 0xDA47,
        }
    }
}

impl TabularConfig {
    /// Configuration derived from a configurator choice.
    pub fn from_predictor(cfg: &PredictorConfig) -> Self {
        TabularConfig { k: cfg.k, c: cfg.c, ..Default::default() }
    }

    /// Disable fine-tuning (the "DART w/o FT" ablation of Table VII).
    pub fn without_fine_tuning(mut self) -> Self {
        self.fine_tune_epochs = 0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_table_viii() {
        assert_eq!(
            PredictorConfig::dart_s(),
            PredictorConfig { layers: 1, dim: 16, heads: 2, k: 16, c: 1 }
        );
        assert_eq!(
            PredictorConfig::dart(),
            PredictorConfig { layers: 1, dim: 32, heads: 2, k: 128, c: 2 }
        );
        assert_eq!(
            PredictorConfig::dart_l(),
            PredictorConfig { layers: 2, dim: 32, heads: 2, k: 256, c: 2 }
        );
    }

    #[test]
    fn model_config_expansion() {
        let cfg = PredictorConfig::dart().to_model_config(8, 128, 16);
        assert_eq!(cfg.dim, 32);
        assert_eq!(cfg.ffn_dim, 128);
        assert_eq!(cfg.seq_len, 16);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn without_fine_tuning_zeroes_epochs() {
        let t = TabularConfig::default().without_fine_tuning();
        assert_eq!(t.fine_tune_epochs, 0);
    }
}
