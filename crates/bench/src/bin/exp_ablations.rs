//! Ablation experiments for the design choices DESIGN.md calls out:
//!
//! 1. encoder kind (exact arg-min vs log-K hash tree),
//! 2. attention activation (Eq. 14 sigmoid vs per-subspace softmax),
//! 3. fused single-table FFN (paper §VIII future work) vs two kernels,
//!
//! each measured as held-out F1 on two representative workloads.

use dart_bench::zoo::{tabular_config, train_dart};
use dart_bench::{print_table, record_json, ExperimentContext, Table};
use dart_core::config::PredictorConfig;
use dart_core::eval::evaluate_tabular_f1;
use dart_core::tabularize::tabularize;
use dart_pq::{AttentionActivation, EncoderKind};
use dart_trace::workload_by_name;

fn main() {
    let ctx = ExperimentContext::from_env();
    let variant = PredictorConfig::dart();
    let apps = ["410.bwaves", "602.gcc"];
    let mut t = Table::new(&["Ablation", "Setting", "F1 (bwaves)", "F1 (gcc)"]);
    let mut records = Vec::new();

    // Train one student per app, reuse across all ablation settings.
    let mut students = Vec::new();
    for (wi, app) in apps.iter().enumerate() {
        eprintln!("[ablations] training {app}");
        let workload = workload_by_name(app).expect("workload");
        let prepared = ctx.prepare(&workload, 0xAB1A + wi as u64 * 17);
        let artifacts = train_dart(&prepared, &ctx.pre, ctx.scale, &variant, false);
        students.push((prepared, artifacts.student));
    }

    let mut run_setting =
        |name: &str, setting: &str, mutate: &dyn Fn(&mut dart_core::config::TabularConfig)| {
            let mut row = vec![name.to_string(), setting.to_string()];
            let mut scores = Vec::new();
            for (prepared, student) in &students {
                let mut cfg = tabular_config(ctx.scale, &variant);
                mutate(&mut cfg);
                let (tab, _) = tabularize(student, &prepared.train.inputs, &cfg);
                let f1 = evaluate_tabular_f1(&tab, &prepared.test, 256);
                row.push(format!("{f1:.3}"));
                scores.push(f1);
            }
            t.row(row);
            records.push(serde_json::json!({
                "ablation": name, "setting": setting, "f1": scores,
            }));
        };

    run_setting("encoder", "argmin (exact)", &|c| c.encoder = EncoderKind::Argmin);
    run_setting("encoder", "hash-tree (log K)", &|c| c.encoder = EncoderKind::HashTree);
    run_setting("attention act", "sigmoid (Eq. 14)", &|c| {
        c.activation = AttentionActivation::SigmoidScaled
    });
    run_setting("attention act", "softmax/subspace", &|c| {
        c.activation = AttentionActivation::SoftmaxPerSubspace
    });
    run_setting("ffn", "two kernels", &|c| c.fuse_ffn = false);
    run_setting("ffn", "fused table", &|c| c.fuse_ffn = true);

    print_table("Ablations: encoder, attention activation, fused FFN", &t);
    println!(
        "\nExpected shapes: argmin >= hash-tree (accuracy), sigmoid vs softmax \
         comparable (the fine-tuned layers absorb either), fused FFN trades \
         accuracy for half the FFN latency."
    );
    record_json("ablations", &serde_json::Value::Array(records));
}
