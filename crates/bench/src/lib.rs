//! # dart-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§VII).
//! Each `src/bin/exp_*.rs` binary prints one table/figure in the paper's
//! row/series format, alongside the paper's reported values, and appends a
//! machine-readable record under `target/experiments/`.
//!
//! Scale is controlled by the `DART_SCALE` environment variable:
//! `quick` (default — minutes, reduced model/trace sizes) or
//! `full` (paper-faithful sizes; expect an hour-plus on a laptop).

pub mod context;
pub mod env;
pub mod prefetch_eval;
pub mod report;
pub mod zoo;

pub use context::{ExperimentContext, Scale};
pub use env::{announce_threads, env_usize_strict, validate_threads_env};
pub use report::{print_table, record_json, Table};

/// Canonical short names of the eight workloads (Table IV order).
pub const WORKLOAD_NAMES: [&str; 8] = [
    "410.bwaves",
    "433.milc",
    "437.leslie3d",
    "462.libquantum",
    "602.gcc",
    "605.mcf",
    "619.lbm",
    "621.wrf",
];
