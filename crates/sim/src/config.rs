//! Simulation parameters (paper Table III).

use serde::{Deserialize, Serialize};

/// One cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in cycles.
    pub latency: u64,
    /// Miss-status holding registers (outstanding misses).
    pub mshr_entries: usize,
}

impl CacheConfig {
    /// Number of sets for 64-byte blocks.
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / 64 / self.ways as u64).max(1) as usize
    }
}

/// DRAM timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Access latency in core cycles (tRP + tRCD + tCAS at 4 GHz).
    pub latency: u64,
    /// Minimum cycles between successive line transfers (per-core bandwidth).
    pub cycles_per_transfer: u64,
}

/// Core front-end model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Issue/retire width (instructions per cycle).
    pub width: u64,
    /// Reorder-buffer entries.
    pub rob_size: u64,
}

/// Full simulation configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache (where prefetchers live).
    pub llc: CacheConfig,
    /// Memory.
    pub dram: DramConfig,
    /// Core.
    pub core: CoreConfig,
}

impl SimConfig {
    /// The paper's Table III configuration (single core):
    /// 4-wide OoO with a 256-entry ROB; 64 KB/12-way L1D (5 cycles),
    /// 1 MB/8-way L2 (10 cycles), 8 MB/16-way LLC (20 cycles);
    /// DRAM tRP=tRCD=tCAS=12.5 ns at 4 GHz (3 x 50 = 150 cycles) and
    /// 8 GB/s per-core bandwidth (64 B / 8 GB/s = 8 ns = 32 cycles; two
    /// channels halve the effective spacing to 16).
    pub fn table_iii() -> SimConfig {
        SimConfig {
            l1d: CacheConfig { size_bytes: 64 << 10, ways: 12, latency: 5, mshr_entries: 16 },
            l2: CacheConfig { size_bytes: 1 << 20, ways: 8, latency: 10, mshr_entries: 32 },
            llc: CacheConfig { size_bytes: 8 << 20, ways: 16, latency: 20, mshr_entries: 64 },
            dram: DramConfig { latency: 150, cycles_per_transfer: 16 },
            core: CoreConfig { width: 4, rob_size: 256 },
        }
    }

    /// A scaled-down configuration for fast unit tests and the quick bench
    /// mode: smaller caches make misses (and thus prefetcher effects) appear
    /// on short synthetic traces.
    pub fn small() -> SimConfig {
        SimConfig {
            l1d: CacheConfig { size_bytes: 8 << 10, ways: 4, latency: 4, mshr_entries: 8 },
            l2: CacheConfig { size_bytes: 64 << 10, ways: 8, latency: 10, mshr_entries: 16 },
            llc: CacheConfig { size_bytes: 512 << 10, ways: 8, latency: 20, mshr_entries: 32 },
            dram: DramConfig { latency: 150, cycles_per_transfer: 8 },
            core: CoreConfig { width: 4, rob_size: 256 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_set_counts() {
        let cfg = SimConfig::table_iii();
        // 64KB / 64B / 12 ways = 85 sets (non power of two is fine).
        assert_eq!(cfg.l1d.num_sets(), 85);
        assert_eq!(cfg.l2.num_sets(), 2048);
        assert_eq!(cfg.llc.num_sets(), 8192);
    }

    #[test]
    fn tiny_cache_has_at_least_one_set() {
        let c = CacheConfig { size_bytes: 64, ways: 4, latency: 1, mshr_entries: 1 };
        assert_eq!(c.num_sets(), 1);
    }
}
