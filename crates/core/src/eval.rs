//! Evaluation helpers: F1 for the tabular predictor and layer-similarity
//! comparisons (paper Fig. 11, Tables VI–VII).

use dart_nn::train::{Dataset, MultiLabelCounts};

use crate::tabular_model::TabularModel;
use crate::tabularize::TabularizationReport;

/// Micro-F1 of a tabular model over a dataset at threshold 0.5.
pub fn evaluate_tabular_f1(model: &TabularModel, data: &Dataset, batch_size: usize) -> f64 {
    let mut counts = MultiLabelCounts::default();
    let mut start = 0;
    while start < data.len() {
        let end = (start + batch_size).min(data.len());
        let (x, y) = data.batch(start, end);
        let probs = model.forward_probs(&x);
        counts.accumulate(&probs, &y, 0.5);
        start = end;
    }
    counts.f1()
}

/// Pair up two tabularization reports (e.g. with and without fine-tuning)
/// by layer name for the Fig. 11 comparison. Returns
/// `(layer, cosine_a, cosine_b)` rows in forward order.
pub fn compare_reports(
    a: &TabularizationReport,
    b: &TabularizationReport,
) -> Vec<(String, f32, f32)> {
    a.similarities
        .iter()
        .filter_map(|sa| {
            b.similarities
                .iter()
                .find(|sb| sb.layer == sa.layer)
                .map(|sb| (sa.layer.clone(), sa.cosine, sb.cosine))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TabularConfig;
    use crate::tabularize::tabularize;
    use dart_nn::init::InitRng;
    use dart_nn::matrix::Matrix;
    use dart_nn::model::{AccessPredictor, ModelConfig};
    use dart_nn::train::evaluate_f1;

    #[test]
    fn tabular_f1_close_to_student_f1_with_high_k() {
        // Build a student that has learned a simple threshold task, then
        // check the tabular model's F1 lands near the student's.
        use dart_nn::train::{train_bce, TrainConfig};
        let mut rng = InitRng::new(41);
        let (n, seq, di, dout) = (220, 4, 4, 6);
        let mut inputs = Matrix::zeros(n * seq, di);
        let mut targets = Matrix::zeros(n, dout);
        for i in 0..n {
            let level = rng.next_f32();
            for t in 0..seq {
                for d in 0..di {
                    inputs.set(i * seq + t, d, level + rng.normal() * 0.05);
                }
            }
            for b in 0..dout {
                if level > (b + 1) as f32 / (dout + 1) as f32 {
                    targets.set(i, b, 1.0);
                }
            }
        }
        let data = Dataset::new(inputs, targets, seq);
        let (train, test) = data.split(0.8);

        let cfg = ModelConfig {
            input_dim: di,
            dim: 8,
            heads: 2,
            layers: 1,
            ffn_dim: 16,
            output_dim: dout,
            seq_len: seq,
        };
        let mut student = AccessPredictor::new(cfg, 1).unwrap();
        train_bce(
            &mut student,
            &train,
            &TrainConfig { epochs: 25, batch_size: 32, ..Default::default() },
        );
        let student_f1 = evaluate_f1(&mut student, &test, 64);

        let tab_cfg = TabularConfig { k: 128, c: 2, fine_tune_epochs: 6, ..Default::default() };
        let (table, _) = tabularize(&student, &train.inputs, &tab_cfg);
        let tab_f1 = evaluate_tabular_f1(&table, &test, 64);
        assert!(
            tab_f1 > student_f1 - 0.15,
            "tabular F1 {tab_f1} too far below student {student_f1}"
        );
    }

    #[test]
    fn compare_reports_aligns_layers() {
        use crate::tabularize::LayerSimilarity;
        let a = TabularizationReport {
            similarities: vec![
                LayerSimilarity { layer: "x".into(), cosine: 0.9 },
                LayerSimilarity { layer: "y".into(), cosine: 0.8 },
            ],
        };
        let b = TabularizationReport {
            similarities: vec![
                LayerSimilarity { layer: "y".into(), cosine: 0.7 },
                LayerSimilarity { layer: "x".into(), cosine: 0.95 },
            ],
        };
        let rows = compare_reports(&a, &b);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], ("x".into(), 0.9, 0.95));
        assert_eq!(rows[1], ("y".into(), 0.8, 0.7));
    }
}
