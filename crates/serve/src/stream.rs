//! Per-stream history state.

use std::collections::VecDeque;

use dart_nn::matrix::Matrix;
use dart_trace::PreprocessConfig;

/// Rolling access history of one client stream, mirroring the
/// `DartPrefetcher` history buffer but owned by a shard worker so thousands
/// of streams can share one model.
#[derive(Clone, Debug)]
pub struct StreamState {
    history: VecDeque<(u64, u64)>, // (block, pc)
    seq_len: usize,
    next_seq: u64,
}

impl StreamState {
    /// Fresh state for a model with history length `seq_len`.
    pub fn new(seq_len: usize) -> StreamState {
        StreamState { history: VecDeque::with_capacity(seq_len), seq_len, next_seq: 0 }
    }

    /// Record one access; returns the request's per-stream sequence number.
    pub fn push(&mut self, block: u64, pc: u64) -> u64 {
        if self.history.len() == self.seq_len {
            self.history.pop_front();
        }
        self.history.push_back((block, pc));
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Forget everything: clear the history window and restart the
    /// per-stream sequence counter, keeping the history buffer's
    /// allocation. Used by the shard LRU to recycle an evicted stream's
    /// slot — the next occupant starts exactly as cold as a brand-new
    /// stream.
    pub fn reset(&mut self) {
        self.history.clear();
        self.next_seq = 0;
    }

    /// True once the history holds a full model window.
    pub fn warm(&self) -> bool {
        self.history.len() == self.seq_len
    }

    /// Block address of the most recent access (prediction anchor).
    pub fn last_block(&self) -> Option<u64> {
        self.history.back().map(|&(block, _)| block)
    }

    /// Number of requests seen so far.
    pub fn requests(&self) -> u64 {
        self.next_seq
    }

    /// Write the history window into `seq_len` stacked feature rows of
    /// `feats`, starting at `base_row` (the batched-prediction layout of
    /// `TabularModel::predict_batch`). Panics if the stream is not
    /// [`warm`](Self::warm).
    pub fn write_features_into(&self, pre: &PreprocessConfig, feats: &mut Matrix, base_row: usize) {
        assert!(self.warm(), "write_features_into on a cold stream");
        for (t, &(block, pc)) in self.history.iter().enumerate() {
            pre.write_token_features(block, pc, feats.row_mut(base_row + t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pre() -> PreprocessConfig {
        PreprocessConfig { seq_len: 4, ..Default::default() }
    }

    #[test]
    fn warms_after_seq_len_accesses() {
        let mut s = StreamState::new(4);
        for i in 0..3 {
            assert_eq!(s.push(100 + i, 0x400), i);
            assert!(!s.warm());
        }
        assert_eq!(s.push(103, 0x400), 3);
        assert!(s.warm());
        assert_eq!(s.last_block(), Some(103));
        assert_eq!(s.requests(), 4);
    }

    #[test]
    fn history_is_a_sliding_window() {
        let pre = pre();
        let mut s = StreamState::new(4);
        for i in 0..10u64 {
            s.push(i, 0x400);
        }
        // Window should be blocks [6, 7, 8, 9], written at a row offset.
        let mut feats = Matrix::zeros(8, pre.input_dim());
        s.write_features_into(&pre, &mut feats, 4);
        let mut expected = Matrix::zeros(8, pre.input_dim());
        for (t, block) in (6u64..10).enumerate() {
            pre.write_token_features(block, 0x400, expected.row_mut(4 + t));
        }
        assert_eq!(feats, expected);
    }

    #[test]
    #[should_panic(expected = "cold stream")]
    fn cold_stream_rejects_feature_write() {
        let pre = pre();
        let s = StreamState::new(4);
        let mut m = Matrix::zeros(4, pre.input_dim());
        s.write_features_into(&pre, &mut m, 0);
    }
}
