//! Weight initialization schemes.
//!
//! All initializers are deterministic given a seed, built on a small xorshift
//! PRNG so initialization does not depend on `rand` version internals.

use crate::matrix::Matrix;

/// Deterministic 64-bit xorshift* generator used for weight init.
///
/// Kept separate from `rand` so that saved experiments remain reproducible
/// even across `rand` crate upgrades.
#[derive(Clone, Debug)]
pub struct InitRng {
    state: u64,
}

impl InitRng {
    /// Create a generator; a zero seed is remapped to a fixed odd constant.
    pub fn new(seed: u64) -> Self {
        InitRng { state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        let u1 = self.next_f32().max(1e-9);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Xavier/Glorot uniform initialization for a `fan_out x fan_in` weight.
pub fn xavier_uniform(fan_out: usize, fan_in: usize, rng: &mut InitRng) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_out, fan_in, |_, _| rng.uniform(-limit, limit))
}

/// Kaiming/He normal initialization (for ReLU fan-in).
pub fn kaiming_normal(fan_out: usize, fan_in: usize, rng: &mut InitRng) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    Matrix::from_fn(fan_out, fan_in, |_, _| rng.normal() * std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = InitRng::new(42);
        let mut b = InitRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_uniform_in_range() {
        let mut rng = InitRng::new(7);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = InitRng::new(1);
        let w = xavier_uniform(16, 8, &mut rng);
        let limit = (6.0 / 24.0f32).sqrt();
        assert!(w.max_abs() <= limit);
        // And is not degenerate.
        assert!(w.max_abs() > 0.0);
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = InitRng::new(3);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn below_covers_range() {
        let mut rng = InitRng::new(5);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
