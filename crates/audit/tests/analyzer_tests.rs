//! Exact-findings tests over the adversarial fixture corpus.
//!
//! Each fixture is lexed/analyzed through the library API and the test
//! asserts the *complete* finding list — both that the seeded violations
//! are found at their marked lines and that nothing else fires (raw
//! strings, comments and test code must stay silent).

use dart_audit::analyze_source;
use dart_audit::rules::Rule;

/// 1-based line of the fixture line carrying `marker`.
fn line_of(src: &str, marker: &str) -> usize {
    src.lines()
        .position(|l| l.contains(marker))
        .unwrap_or_else(|| panic!("marker {marker} not in fixture"))
        + 1
}

fn findings(rel_path: &str, src: &str) -> Vec<(Rule, usize)> {
    analyze_source(rel_path, src).into_iter().map(|f| (f.rule, f.line)).collect()
}

const RAW_STRINGS: &str = include_str!("../fixtures/corpus/raw_string_hides_unsafe.rs");
const HIDDEN_ASM: &str = include_str!("../fixtures/corpus/comment_hides_asm.rs");
const NESTED_UNSAFE: &str = include_str!("../fixtures/corpus/nested_unsafe.rs");
const SAFETY_SPACING: &str = include_str!("../fixtures/corpus/safety_no_space.rs");
const ATOMICS: &str = include_str!("../fixtures/corpus/atomics.rs");
const LOCK_UNWRAP: &str = include_str!("../fixtures/corpus/lock_unwrap.rs");
const ALLOW_ATTR: &str = include_str!("../fixtures/corpus/allow_attr.rs");

#[test]
fn raw_strings_and_char_literals_are_silent() {
    assert_eq!(findings("crates/x/src/lib.rs", RAW_STRINGS), vec![]);
}

#[test]
fn comments_hide_asm_but_real_sites_fire() {
    assert_eq!(
        findings("crates/x/src/lib.rs", HIDDEN_ASM),
        vec![
            (Rule::R2, line_of(HIDDEN_ASM, "MARK:real-asm")),
            (Rule::R2, line_of(HIDDEN_ASM, "MARK:real-syscall")),
            (Rule::R2, line_of(HIDDEN_ASM, "MARK:spaced-asm")),
        ]
    );
}

#[test]
fn unsafe_coverage_including_nesting() {
    assert_eq!(
        findings("crates/x/src/lib.rs", NESTED_UNSAFE),
        vec![
            (Rule::R1, line_of(NESTED_UNSAFE, "MARK:uncovered-impl")),
            (Rule::R1, line_of(NESTED_UNSAFE, "MARK:uncovered-block")),
            (Rule::R1, line_of(NESTED_UNSAFE, "MARK:uncovered-nested")),
        ]
    );
}

#[test]
fn safety_marker_spacing_and_staleness() {
    assert_eq!(
        findings("crates/x/src/lib.rs", SAFETY_SPACING),
        vec![
            (Rule::R1, line_of(SAFETY_SPACING, "MARK:lowercase")),
            (Rule::R1, line_of(SAFETY_SPACING, "MARK:stale-marker")),
        ]
    );
}

#[test]
fn atomics_flag_relaxed_and_seqcst_outside_tests() {
    assert_eq!(
        findings("crates/x/src/lib.rs", ATOMICS),
        vec![
            (Rule::R3, line_of(ATOMICS, "MARK:hot-relaxed")),
            (Rule::R3, line_of(ATOMICS, "MARK:hot-seqcst")),
        ]
    );
}

#[test]
fn lock_unwrap_in_serving_crates_only() {
    assert_eq!(
        findings("crates/serve/src/fixture.rs", LOCK_UNWRAP),
        vec![
            (Rule::R4, line_of(LOCK_UNWRAP, "MARK:bare-unwrap")),
            (Rule::R4, line_of(LOCK_UNWRAP, "MARK:split-chain")),
            (Rule::R4, line_of(LOCK_UNWRAP, "MARK:rwlock-expect")),
        ]
    );
    // The same source outside the serving crates is not R4's business.
    assert_eq!(findings("crates/pq/src/fixture.rs", LOCK_UNWRAP), vec![]);
}

#[test]
fn allow_attributes_need_justification() {
    assert_eq!(
        findings("crates/x/src/lib.rs", ALLOW_ATTR),
        vec![
            (Rule::R5, line_of(ALLOW_ATTR, "MARK:unjustified") - 1),
            (Rule::R5, line_of(ALLOW_ATTR, "MARK:doc-only") - 1),
        ],
        "R5 reports at the attribute line, one above the marked item"
    );
}

#[test]
fn tests_dir_paths_are_exempt_from_r3_and_r4() {
    assert_eq!(findings("crates/serve/tests/foo.rs", LOCK_UNWRAP), vec![]);
    assert_eq!(findings("crates/x/tests/foo.rs", ATOMICS), vec![]);
}
