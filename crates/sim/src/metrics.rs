//! Simulation results and prefetch metrics (paper §VII-A4).

use dart_trace::TraceRecord;
use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;

/// Outcome of one simulation run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimResult {
    /// Total cycles to retire the trace.
    pub cycles: u64,
    /// Instructions retired (memory and non-memory).
    pub instructions: u64,
    /// L1D counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// LLC counters.
    pub llc: CacheStats,
    /// Prefetches issued to the memory system.
    pub prefetches_issued: u64,
    /// Prefetch candidates dropped because the line was already cached or
    /// already being fetched.
    pub prefetches_redundant: u64,
    /// Prefetches dropped for lack of a free MSHR.
    pub prefetches_no_mshr: u64,
    /// Prefetches dropped by prefetch-queue overflow.
    pub prefetches_queue_dropped: u64,
    /// Demand misses that found their block already in flight from a
    /// prefetch ("late" prefetches — partially hidden latency).
    pub late_prefetches: u64,
    /// The LLC demand access stream, when recording was requested.
    #[serde(skip)]
    pub llc_trace: Option<Vec<TraceRecord>>,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Useful prefetches: demand hits on prefetched lines plus late
    /// (in-flight) covers.
    pub fn useful_prefetches(&self) -> u64 {
        self.llc.useful_prefetches + self.late_prefetches
    }

    /// Prefetch accuracy: useful / issued (paper Fig. 12).
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.useful_prefetches() as f64 / self.prefetches_issued as f64
        }
    }

    /// Prefetch coverage: covered would-be misses over all would-be misses
    /// (paper Fig. 13). Late prefetches count as covered; pollution-induced
    /// baseline shifts are ignored, as is standard.
    pub fn prefetch_coverage(&self) -> f64 {
        let covered = self.useful_prefetches();
        let uncovered = self.llc.misses.saturating_sub(self.late_prefetches);
        if covered + uncovered == 0 {
            0.0
        } else {
            covered as f64 / (covered + uncovered) as f64
        }
    }

    /// IPC improvement over a baseline run, in percent (paper Fig. 14).
    pub fn ipc_improvement_pct(&self, baseline: &SimResult) -> f64 {
        let b = baseline.ipc();
        if b == 0.0 {
            0.0
        } else {
            (self.ipc() / b - 1.0) * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_improvement() {
        let base = SimResult { cycles: 1000, instructions: 2000, ..Default::default() };
        let faster = SimResult { cycles: 800, instructions: 2000, ..Default::default() };
        assert!((base.ipc() - 2.0).abs() < 1e-9);
        assert!((faster.ipc_improvement_pct(&base) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_and_coverage_degenerate() {
        let r = SimResult::default();
        assert_eq!(r.prefetch_accuracy(), 0.0);
        assert_eq!(r.prefetch_coverage(), 0.0);
    }

    #[test]
    fn coverage_counts_late_as_covered() {
        let mut r = SimResult::default();
        r.llc.useful_prefetches = 30;
        r.late_prefetches = 10;
        r.llc.misses = 60; // 10 of which were late-covered
        r.prefetches_issued = 80;
        // covered = 40, uncovered = 50.
        assert!((r.prefetch_coverage() - 40.0 / 90.0).abs() < 1e-9);
        assert!((r.prefetch_accuracy() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_guard() {
        let r = SimResult { cycles: 0, instructions: 5, ..Default::default() };
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.ipc_improvement_pct(&r), 0.0);
    }

    #[test]
    fn coverage_saturates_when_late_exceeds_misses() {
        // More late prefetches than recorded misses (possible when a late
        // cover retires before its demand miss is counted) must not
        // underflow the uncovered term.
        let mut r = SimResult { late_prefetches: 10, prefetches_issued: 10, ..Default::default() };
        r.llc.misses = 3;
        // uncovered saturates to 0 -> full coverage, not a wrapped huge
        // denominator.
        assert!((r.prefetch_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extreme_counter_values_stay_finite() {
        let r = SimResult {
            cycles: u64::MAX,
            instructions: u64::MAX,
            prefetches_issued: u64::MAX,
            late_prefetches: u64::MAX,
            ..Default::default()
        };
        assert!(r.ipc().is_finite());
        assert!(r.prefetch_accuracy().is_finite());
        assert!(r.prefetch_coverage().is_finite());
    }
}
