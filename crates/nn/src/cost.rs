//! Analytic complexity model for the *neural* predictors (paper Table V).
//!
//! The paper evaluates the Teacher and Student "under systolic array
//! implementation for matrix multiplications" (citing Kung & Leiserson).
//! We model a fully-pipelined systolic array per matmul: multiplying a
//! `(T x K)` activation with a `(K x N)` weight costs `T + K + N` cycles of
//! latency and `2*T*K*N` arithmetic operations; storage is parameter bytes.
//!
//! The constants reproduce the paper's Table V within ~10% for the teacher
//! (16.5K cycles, 98.3M ops) and student (908 cycles) configurations with
//! `T = 16`, `D_F = 4D`; the paper does not state its storage assumptions,
//! so storage here is simply `4 bytes x parameter count` (see
//! EXPERIMENTS.md for the comparison).

use crate::model::{LstmConfig, ModelConfig};

/// Latency (cycles), storage (bytes), and arithmetic-operation count of a
/// model under the systolic-array cost model.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CostReport {
    /// Inference latency in cycles, assuming full pipelining/parallelism.
    pub latency_cycles: u64,
    /// Model storage in bytes (`f32` parameters).
    pub storage_bytes: u64,
    /// Arithmetic operations per inference (multiply + add counted separately).
    pub ops: u64,
}

impl CostReport {
    /// Zero cost (identity model).
    pub fn zero() -> Self {
        CostReport { latency_cycles: 0, storage_bytes: 0, ops: 0 }
    }

    /// Sum of two reports (sequential composition).
    pub fn seq(self, other: CostReport) -> CostReport {
        CostReport {
            latency_cycles: self.latency_cycles + other.latency_cycles,
            storage_bytes: self.storage_bytes + other.storage_bytes,
            ops: self.ops + other.ops,
        }
    }
}

/// Bytes per stored scalar (f32).
const DATA_BYTES: u64 = 4;

/// Latency of a LayerNorm (reduction tree + normalize), cycles.
pub const LN_LATENCY: u64 = 5;

/// Latency of the output Sigmoid, cycles.
pub const SIGMOID_LATENCY: u64 = 4;

/// Latency of a row softmax over `t` elements (max/sum reduction trees).
fn softmax_latency(t: usize) -> u64 {
    2 * (t.max(2) as f64).log2().ceil() as u64 + 2
}

/// Cost of one dense layer mapping `t x in_dim` to `t x out_dim`.
pub fn linear_cost(t: usize, in_dim: usize, out_dim: usize) -> CostReport {
    CostReport {
        latency_cycles: (t + in_dim + out_dim) as u64,
        storage_bytes: ((in_dim * out_dim + out_dim) as u64) * DATA_BYTES,
        ops: 2 * (t * in_dim * out_dim) as u64,
    }
}

/// Cost of the scaled-dot-product attention core for `heads` parallel heads
/// over a `t`-token sequence with model dimension `dim` (head dim = dim/heads).
pub fn attention_core_cost(t: usize, dim: usize, heads: usize) -> CostReport {
    let dh = dim / heads.max(1);
    // QK^T: (t x dh) @ (dh x t); heads run in parallel -> latency of one head.
    let qk_lat = (t + dh + t) as u64;
    // AV: (t x t) @ (t x dh)
    let av_lat = (t + t + dh) as u64;
    CostReport {
        latency_cycles: qk_lat + softmax_latency(t) + av_lat,
        storage_bytes: 0, // no parameters in the attention core itself
        // Ops across ALL heads: 2*t*t*dh per matmul per head, two matmuls.
        ops: 2 * 2 * (t * t * dh * heads) as u64 + (t * t * heads) as u64,
    }
}

/// Full cost of the attention predictor in `config` (paper Fig. 6):
/// input linear + LN + L encoder layers + output linear + sigmoid.
pub fn attention_model_cost(config: &ModelConfig) -> CostReport {
    let t = config.seq_len;
    let d = config.dim;
    let mut total = linear_cost(t, config.input_dim, d);
    total.latency_cycles += LN_LATENCY;
    total.storage_bytes += 2 * d as u64 * DATA_BYTES; // gamma, beta

    for _ in 0..config.layers {
        // LN1 + QKV projection + attention core + output projection
        let mut layer = CostReport::zero();
        layer.latency_cycles += LN_LATENCY;
        layer = layer.seq(linear_cost(t, d, 3 * d));
        layer = layer.seq(attention_core_cost(t, d, config.heads));
        layer = layer.seq(linear_cost(t, d, d));
        // LN2 + FFN
        layer.latency_cycles += LN_LATENCY;
        layer = layer.seq(linear_cost(t, d, config.ffn_dim));
        layer = layer.seq(linear_cost(t, config.ffn_dim, d));
        layer.storage_bytes += 4 * d as u64 * DATA_BYTES; // two LayerNorms
        total = total.seq(layer);
    }

    total = total.seq(linear_cost(t, d, config.output_dim));
    total.latency_cycles += SIGMOID_LATENCY;
    total
}

/// Full cost of the LSTM predictor (Voyager-like). The recurrence is
/// inherently sequential over `T` steps — this is the latency story that
/// makes Voyager impractical in the paper (Table IX: 27.7K cycles).
pub fn lstm_model_cost(config: &LstmConfig) -> CostReport {
    let t = config.seq_len;
    let h = config.hidden;
    let input = linear_cost(t, config.input_dim, h);
    // Per step: z = W x + U h (two matmuls of (1 x h) @ (h x 4h)) + gates.
    let step_lat = (1 + h + 4 * h) as u64 + (1 + h + 4 * h) as u64 + 4;
    let step_ops = 2 * (h * 4 * h) as u64 * 2 + 8 * h as u64;
    let out = linear_cost(1, h, config.output_dim);
    CostReport {
        latency_cycles: input.latency_cycles + t as u64 * step_lat + out.latency_cycles,
        storage_bytes: input.storage_bytes
            + ((4 * h * h * 2 + 4 * h) as u64) * DATA_BYTES
            + out.storage_bytes,
        ops: input.ops + t as u64 * step_ops + out.ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn teacher_cfg() -> ModelConfig {
        ModelConfig::teacher(8, 128, 16)
    }

    fn student_cfg() -> ModelConfig {
        ModelConfig::student(8, 128, 16)
    }

    #[test]
    fn teacher_latency_matches_paper_magnitude() {
        // Paper Table V: 16.5K cycles.
        let c = attention_model_cost(&teacher_cfg());
        assert!(
            (12_000..22_000).contains(&c.latency_cycles),
            "teacher latency {} out of plausible range",
            c.latency_cycles
        );
    }

    #[test]
    fn teacher_ops_match_paper_magnitude() {
        // Paper Table V: 98.3M ops.
        let c = attention_model_cost(&teacher_cfg());
        assert!(
            (70e6 as u64..130e6 as u64).contains(&c.ops),
            "teacher ops {} out of plausible range",
            c.ops
        );
    }

    #[test]
    fn student_latency_matches_paper_magnitude() {
        // Paper Table V: 908 cycles.
        let c = attention_model_cost(&student_cfg());
        assert!(
            (600..1400).contains(&c.latency_cycles),
            "student latency {} out of plausible range",
            c.latency_cycles
        );
    }

    #[test]
    fn teacher_dominates_student_on_all_axes() {
        let t = attention_model_cost(&teacher_cfg());
        let s = attention_model_cost(&student_cfg());
        assert!(t.latency_cycles > 10 * s.latency_cycles);
        assert!(t.storage_bytes > 10 * s.storage_bytes);
        assert!(t.ops > 100 * s.ops);
    }

    #[test]
    fn lstm_latency_scales_linearly_with_seq() {
        let short =
            lstm_model_cost(&LstmConfig { input_dim: 8, hidden: 64, output_dim: 128, seq_len: 8 });
        let long =
            lstm_model_cost(&LstmConfig { input_dim: 8, hidden: 64, output_dim: 128, seq_len: 16 });
        let delta = long.latency_cycles - short.latency_cycles;
        // Doubling T should roughly double the recurrent latency share.
        assert!(delta > short.latency_cycles / 2);
    }

    #[test]
    fn lstm_is_slower_than_attention_at_same_scale() {
        // The recurrence serializes; attention parallelizes.
        let lstm = lstm_model_cost(&LstmConfig {
            input_dim: 8,
            hidden: 256,
            output_dim: 128,
            seq_len: 16,
        });
        let attn = attention_model_cost(&ModelConfig {
            input_dim: 8,
            dim: 256,
            heads: 8,
            layers: 1,
            ffn_dim: 1024,
            output_dim: 128,
            seq_len: 16,
        });
        assert!(lstm.latency_cycles > attn.latency_cycles);
    }

    #[test]
    fn seq_composition_adds() {
        let a = linear_cost(4, 8, 8);
        let b = linear_cost(4, 8, 8);
        let s = a.seq(b);
        assert_eq!(s.latency_cycles, 2 * a.latency_cycles);
        assert_eq!(s.ops, 2 * a.ops);
    }
}
