//! Prometheus-style plaintext exposition formatting.
//!
//! One formatter backs every metrics surface in the workspace (the
//! registry's `render`, `dart-serve`'s `ServeStats` exposition), so
//! scrapers see a single, stable dialect:
//!
//! ```text
//! # HELP dart_serve_requests_total Requests answered by shard workers.
//! # TYPE dart_serve_requests_total counter
//! dart_serve_requests_total{shard="0"} 128
//! ```
//!
//! Histograms render the standard cumulative form (`_bucket{le="..."}`
//! ascending, then `_sum` and `_count`); log2 buckets are emitted only up
//! to the highest non-empty one plus `+Inf`, keeping an empty histogram to
//! three lines instead of 64.

use std::fmt::Display;
use std::fmt::Write as _;

use crate::hist::Histogram;

/// Metric type emitted on the `# TYPE` line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(value: &str, out: &mut String) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
}

/// Incremental builder for one exposition document.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

/// A borrowed label set: `&[("shard", "0")]`-style pairs, rendered in the
/// given order (callers keep label order deterministic for golden tests).
pub type Labels<'a> = &'a [(&'a str, &'a str)];

impl Exposition {
    pub fn new() -> Exposition {
        Exposition::default()
    }

    /// Emit the `# HELP` / `# TYPE` preamble for a metric family. Call
    /// once per family, before its samples.
    pub fn header(&mut self, name: &str, kind: MetricKind, help: &str) {
        // A newline inside `help` would terminate the comment early and
        // corrupt the document; the format's escape for it is `\n`.
        let help = help.replace('\\', "\\\\").replace('\n', "\\n");
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {}", kind.as_str());
    }

    /// Emit one sample line: `name{labels} value`.
    pub fn sample<D: Display>(&mut self, name: &str, labels: Labels<'_>, value: D) {
        self.out.push_str(name);
        self.write_labels(labels, None);
        let _ = writeln!(self.out, " {value}");
    }

    /// Emit a full histogram family body (`_bucket`/`_sum`/`_count`) for
    /// one label set. The family [`Self::header`] must already have been
    /// written by the caller (histogram families with several label sets —
    /// e.g. per-stage — share one header).
    pub fn histogram(&mut self, name: &str, labels: Labels<'_>, hist: &Histogram) {
        let mut cumulative = 0u64;
        let top = hist.max_bucket().map(|b| b + 1).unwrap_or(0);
        for (i, &c) in hist.buckets().iter().enumerate().take(top) {
            cumulative += c;
            // Bucket i covers [2^i, 2^(i+1)); its inclusive upper bound is
            // 2^(i+1) - 1.
            let le = ((1u128 << (i + 1)) - 1).to_string();
            self.out.push_str(name);
            self.out.push_str("_bucket");
            self.write_labels(labels, Some(&le));
            let _ = writeln!(self.out, " {cumulative}");
        }
        self.out.push_str(name);
        self.out.push_str("_bucket");
        self.write_labels(labels, Some("+Inf"));
        let _ = writeln!(self.out, " {}", hist.count());
        self.out.push_str(name);
        self.out.push_str("_sum");
        self.write_labels(labels, None);
        let _ = writeln!(self.out, " {}", hist.sum());
        self.out.push_str(name);
        self.out.push_str("_count");
        self.write_labels(labels, None);
        let _ = writeln!(self.out, " {}", hist.count());
    }

    fn write_labels(&mut self, labels: Labels<'_>, le: Option<&str>) {
        if labels.is_empty() && le.is_none() {
            return;
        }
        self.out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                self.out.push(',');
            }
            first = false;
            self.out.push_str(k);
            self.out.push_str("=\"");
            escape_label(v, &mut self.out);
            self.out.push('"');
        }
        if let Some(le) = le {
            if !first {
                self.out.push(',');
            }
            self.out.push_str("le=\"");
            self.out.push_str(le);
            self.out.push('"');
        }
        self.out.push('}');
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_samples_with_labels() {
        let mut e = Exposition::new();
        e.header("dart_x_total", MetricKind::Counter, "Things counted.");
        e.sample("dart_x_total", &[("shard", "0")], 3u64);
        e.sample("dart_x_total", &[], 5u64);
        assert_eq!(
            e.finish(),
            "# HELP dart_x_total Things counted.\n\
             # TYPE dart_x_total counter\n\
             dart_x_total{shard=\"0\"} 3\n\
             dart_x_total 5\n"
        );
    }

    #[test]
    fn escapes_label_values_and_help() {
        let mut e = Exposition::new();
        e.header("m", MetricKind::Gauge, "multi\nline \\ help");
        e.sample("m", &[("k", "a\"b\\c\nd")], 1u64);
        let out = e.finish();
        assert!(out.contains("# HELP m multi\\nline \\\\ help\n"));
        assert!(out.contains("m{k=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn histogram_is_cumulative_and_truncates_empty_tail() {
        let mut h = Histogram::new();
        h.record(1); // bucket 0
        h.record(3); // bucket 1
        h.record(3); // bucket 1
        let mut e = Exposition::new();
        e.header("lat", MetricKind::Histogram, "h");
        e.histogram("lat", &[("stage", "kernel")], &h);
        assert_eq!(
            e.finish(),
            "# HELP lat h\n\
             # TYPE lat histogram\n\
             lat_bucket{stage=\"kernel\",le=\"1\"} 1\n\
             lat_bucket{stage=\"kernel\",le=\"3\"} 3\n\
             lat_bucket{stage=\"kernel\",le=\"+Inf\"} 3\n\
             lat_sum{stage=\"kernel\"} 7\n\
             lat_count{stage=\"kernel\"} 3\n"
        );
    }

    #[test]
    fn empty_histogram_renders_three_lines() {
        let mut e = Exposition::new();
        e.histogram("lat", &[], &Histogram::new());
        assert_eq!(e.finish(), "lat_bucket{le=\"+Inf\"} 0\nlat_sum 0\nlat_count 0\n");
    }

    #[test]
    fn top_bucket_le_does_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        let mut e = Exposition::new();
        e.histogram("lat", &[], &h);
        let out = e.finish();
        // Bucket 63's inclusive upper bound is u64::MAX itself.
        assert!(out.contains(&format!("lat_bucket{{le=\"{}\"}} 1\n", u64::MAX)), "{out}");
    }
}
