//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! workspace's serde lookalike.
//!
//! The build environment has no registry access, so `syn`/`quote` are
//! unavailable; the item is parsed directly from the raw `TokenStream`.
//! Supported shapes — which cover every annotated type in this workspace:
//!
//! * structs with named fields (including `#[serde(skip)]` fields, which are
//!   omitted on serialize and `Default::default()`-filled on deserialize),
//! * tuple structs (serialized as arrays),
//! * externally-tagged enums with unit, newtype, tuple, and struct variants.
//!
//! Generics are intentionally unsupported and fail loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: name (or tuple index) plus its `#[serde(skip)]` flag.
struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// True when an attribute group body is `serde(...)` containing `skip`.
fn attr_is_serde_skip(body: TokenStream) -> bool {
    let mut toks = body.into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consume leading `#[...]` attributes; report whether any was
/// `#[serde(skip)]`.
fn eat_attrs(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut skip = false;
    while matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        toks.next();
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                skip |= attr_is_serde_skip(g.stream());
            }
            other => panic!("serde_derive: malformed attribute, got {other:?}"),
        }
    }
    skip
}

/// Consume an optional `pub` / `pub(...)` visibility.
fn eat_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Skip the remainder of a field/variant entry: everything up to a comma at
/// angle-bracket depth 0 (commas inside `Vec<(A, B)>` are depth-protected by
/// `<`/`>` tracking; parenthesized commas hide inside `Group`s already).
fn skip_until_comma(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Parse `name: Type, ...` named fields from a brace-group body.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut toks = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = eat_attrs(&mut toks);
        eat_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_until_comma(&mut toks);
        fields.push(Field { name, skip });
    }
    fields
}

/// Count the fields of a paren-group (tuple struct/variant) body.
fn tuple_arity(body: TokenStream) -> usize {
    let mut toks = body.into_iter().peekable();
    let mut arity = 0;
    while toks.peek().is_some() {
        eat_attrs(&mut toks);
        eat_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_until_comma(&mut toks);
        arity += 1;
    }
    arity
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut toks = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        eat_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                toks.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        skip_until_comma(&mut toks);
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    eat_attrs(&mut toks);
    eat_vis(&mut toks);
    let keyword = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is unsupported");
    }
    match keyword.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: tuple_arity(g.stream()) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive: malformed struct `{name}`, got {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("serde_derive: malformed enum `{name}`, got {other:?}"),
        },
        other => panic!("serde_derive: `{other}` items are unsupported"),
    }
}

/// Generate `impl Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let pushes: String = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "fields.push((\"{0}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{0})));\n",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n}}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> =
                (0..arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Array(vec![{}])\n}}\n}}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{0} => ::serde::Value::String(\"{0}\".to_string()),\n",
                        v.name
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{0}(f0) => ::serde::Value::Object(vec![(\"{0}\".to_string(), \
                         ::serde::Serialize::to_value(f0))]),\n",
                        v.name
                    ),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{0}({1}) => ::serde::Value::Object(vec![(\"{0}\".to_string(), \
                             ::serde::Value::Array(vec![{2}]))]),\n",
                            v.name,
                            binds.join(", "),
                            vals.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pairs: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{0} {{ {1} }} => ::serde::Value::Object(vec![(\"{0}\"\
                             .to_string(), ::serde::Value::Object(vec![{2}]))]),\n",
                            v.name,
                            binds.join(", "),
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}"
            )
        }
    };
    code.parse().expect("serde_derive: generated Serialize impl failed to parse")
}

/// Generate `impl Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default(),\n", f.name)
                    } else {
                        format!("{0}: ::serde::obj_field(v, \"{0}\")?,\n", f.name)
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
                 {{\nOk({name} {{\n{inits}}})\n}}\n}}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i})\
                         .ok_or_else(|| ::serde::Error(\"tuple struct too short\".to_string()))?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
                 {{\n\
                 let items = v.as_array()\
                 .ok_or_else(|| ::serde::Error(\"expected array\".to_string()))?;\n\
                 Ok({name}({}))\n}}\n}}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
             {{ Ok({name}) }}\n}}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),\n", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(1) => Some(format!(
                        "\"{0}\" => Ok({name}::{0}(::serde::Deserialize::from_value(inner)?)),\n",
                        v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(items.get({i})\
                                     .ok_or_else(|| ::serde::Error(\
                                     \"variant tuple too short\".to_string()))?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{0}\" => {{\n\
                             let items = inner.as_array().ok_or_else(|| \
                             ::serde::Error(\"expected array\".to_string()))?;\n\
                             Ok({name}::{0}({1}))\n}}\n",
                            v.name,
                            items.join(", ")
                        ))
                    }
                    VariantKind::Struct(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: ::std::default::Default::default(),\n", f.name)
                                } else {
                                    format!("{0}: ::serde::obj_field(inner, \"{0}\")?,\n", f.name)
                                }
                            })
                            .collect();
                        Some(format!("\"{0}\" => Ok({name}::{0} {{\n{inits}}}),\n", v.name))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
                 {{\n\
                 match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::Error(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                 let (tag, inner) = &fields[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 other => Err(::serde::Error(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n}}\n}},\n\
                 _ => Err(::serde::Error(\"expected enum representation\".to_string())),\n\
                 }}\n}}\n}}"
            )
        }
    };
    code.parse().expect("serde_derive: generated Deserialize impl failed to parse")
}
