//! Differential proof that NUMA-aware shard placement is
//! behavior-neutral: the identical request sequence served with
//! `ShardPlacement::NumaRoundRobin` and with placement disabled must
//! produce identical responses and identical serving counts. On the CI
//! container this exercises the single-node fallback (pin to the full
//! cpuset, no replica); on a real multi-socket host the same test proves
//! the node-local replicas are bit-identical to the original.

use std::collections::HashMap;
use std::sync::Arc;

use dart_core::config::TabularConfig;
use dart_core::tabularize::tabularize;
use dart_core::TabularModel;
use dart_nn::init::InitRng;
use dart_nn::matrix::Matrix;
use dart_nn::model::{AccessPredictor, ModelConfig};
use dart_serve::{
    generate_requests, LoadGenConfig, PrefetchRequest, ServeConfig, ServeRuntime, ShardPlacement,
};
use dart_trace::PreprocessConfig;

/// A tiny tabularized model + preprocessing pair (fast to fit).
fn tiny_setup() -> (Arc<TabularModel>, PreprocessConfig) {
    let pre = PreprocessConfig {
        seq_len: 4,
        addr_segments: 3,
        seg_bits: 4,
        pc_segments: 1,
        delta_range: 4,
        lookforward: 4,
    };
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 8,
        heads: 2,
        layers: 1,
        ffn_dim: 16,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let student = AccessPredictor::new(cfg, 3).unwrap();
    let mut rng = InitRng::new(9);
    let x = Matrix::from_fn(40 * 4, pre.input_dim(), |_, _| rng.next_f32());
    let tab_cfg = TabularConfig { k: 8, c: 2, fine_tune_epochs: 0, ..Default::default() };
    let (model, _) = tabularize(&student, &x, &tab_cfg);
    (Arc::new(model), pre)
}

type ResponseMap = HashMap<(u64, u64), Vec<u64>>;

fn run(
    model: &Arc<TabularModel>,
    pre: PreprocessConfig,
    cfg: ServeConfig,
    reqs: &[PrefetchRequest],
) -> (ResponseMap, u64, u64) {
    let runtime = ServeRuntime::start(Arc::clone(model), pre, cfg);
    runtime.submit_all(reqs.iter().copied());
    runtime.wait_idle();
    let responses = runtime.drain_completed();
    assert_eq!(responses.len(), reqs.len(), "dropped responses");
    for resp in &responses {
        assert!(resp.error.is_none(), "unexpected failure response");
    }
    let map: ResponseMap =
        responses.into_iter().map(|r| ((r.stream_id, r.seq), r.prefetch_blocks)).collect();
    assert_eq!(map.len(), reqs.len(), "duplicate (stream, seq) keys");
    let stats = runtime.shutdown();
    (map, stats.predictions, stats.batches)
}

/// Order-normalized responses and `predictions`/`batches` counts must be
/// identical with placement on and off. `max_batch: 1` makes the batch
/// count deterministic (one drain per request) so it can be compared
/// exactly; the coalesced variant below covers the batched path.
#[test]
fn placement_on_and_off_serve_identically() {
    let (model, pre) = tiny_setup();
    let reqs = generate_requests(&LoadGenConfig { streams: 24, accesses_per_stream: 20, seed: 7 });
    let base = ServeConfig {
        shards: 4,
        max_batch: 1,
        threshold: 0.0,
        placement: ShardPlacement::Disabled,
        ..ServeConfig::default()
    };
    let numa = ServeConfig { placement: ShardPlacement::NumaRoundRobin, ..base };

    let (plain, plain_preds, plain_batches) = run(&model, pre, base, &reqs);
    let (placed, placed_preds, placed_batches) = run(&model, pre, numa, &reqs);

    assert_eq!(plain_preds, placed_preds, "placement changed the prediction count");
    assert_eq!(plain_batches, placed_batches, "placement changed the batch count");
    assert_eq!(plain.len(), placed.len());
    for (key, blocks) in &plain {
        assert_eq!(
            placed.get(key),
            Some(blocks),
            "stream {} seq {} diverged under NUMA placement",
            key.0,
            key.1
        );
    }
}

/// Same differential through the coalescing path (batch composition is
/// timing-dependent, so only responses and the prediction count are
/// compared — both must still be bit-identical).
#[test]
fn placement_is_neutral_under_coalescing() {
    let (model, pre) = tiny_setup();
    let reqs = generate_requests(&LoadGenConfig { streams: 16, accesses_per_stream: 30, seed: 11 });
    let base = ServeConfig {
        shards: 2,
        max_batch: 64,
        threshold: 0.0,
        placement: ShardPlacement::Disabled,
        ..ServeConfig::default()
    };
    let numa = ServeConfig { placement: ShardPlacement::NumaRoundRobin, ..base };
    let (plain, plain_preds, _) = run(&model, pre, base, &reqs);
    let (placed, placed_preds, _) = run(&model, pre, numa, &reqs);
    assert_eq!(plain_preds, placed_preds);
    assert_eq!(plain, placed, "coalesced responses diverged under NUMA placement");
}

/// The observability surface: a placed runtime reports a node for every
/// shard (consistent with the topology it detected), an unplaced one
/// reports none, and `ServeStats::per_shard_node` mirrors the plan.
#[test]
fn placement_plan_is_observable() {
    let (model, pre) = tiny_setup();

    let plain = ServeRuntime::start(
        Arc::clone(&model),
        pre,
        ServeConfig { shards: 3, ..ServeConfig::default() },
    );
    assert!(!plain.topology().nodes().is_empty(), "topology must always resolve");
    assert_eq!(plain.per_shard_node(), &[None, None, None]);
    let stats = plain.shutdown();
    assert_eq!(stats.per_shard_node, vec![None, None, None]);

    let placed = ServeRuntime::start(
        Arc::clone(&model),
        pre,
        ServeConfig {
            shards: 3,
            placement: ShardPlacement::NumaRoundRobin,
            ..ServeConfig::default()
        },
    );
    let topology = placed.topology().clone();
    let topo_nodes: Vec<usize> = topology.nodes().iter().map(|n| n.id).collect();
    for node in placed.per_shard_node() {
        let id = node.expect("every shard must be placed under NumaRoundRobin");
        assert!(topo_nodes.contains(&id), "plan references node {id} outside the topology");
    }
    let stats = placed.shutdown();
    assert_eq!(stats.per_shard_node.len(), 3);
    assert!(stats.per_shard_node.iter().all(|n| n.is_some()));
    // Pin outcomes are reported honestly: without the `numa` feature (or
    // off-Linux) pinning is a no-op and must read `false` — placement
    // must not pretend locality it cannot deliver. With the feature on,
    // a shard pins exactly when its node's cpuset intersects the CPUs
    // this process is allowed to use (pinning never widens a
    // taskset/cgroup restriction, and a disjoint cpuset — e.g. the
    // fallback topology's synthesized ids inside a shifted container
    // cpuset — is a clean no-pin).
    assert_eq!(stats.per_shard_pinned.len(), 3);
    if !dart_numa::affinity_supported() {
        assert!(
            stats.per_shard_pinned.iter().all(|&p| !p),
            "no-op pinning must not be reported as pinned"
        );
    } else {
        let allowed = dart_numa::current_affinity().expect("affinity readable when supported");
        for (shard, (&pinned, node)) in
            stats.per_shard_pinned.iter().zip(&stats.per_shard_node).enumerate()
        {
            let cpus = &topology.node(node.unwrap()).unwrap().cpus;
            let expect = cpus.iter().any(|c| allowed.contains(c));
            assert_eq!(pinned, expect, "shard {shard}: node cpus {cpus:?} vs allowed {allowed:?}");
        }
    }
}

/// `TabularModel::deep_clone` — the per-node replica primitive — must
/// produce bit-identical predictions through fresh storage.
#[test]
fn deep_clone_replica_is_bit_identical() {
    let (model, pre) = tiny_setup();
    let replica = model.deep_clone();
    assert_eq!(replica.storage_bytes(), model.storage_bytes());
    let mut rng = InitRng::new(0xC0FFEE);
    let x = Matrix::from_fn(6 * pre.seq_len, pre.input_dim(), |_, _| rng.next_f32());
    assert_eq!(model.predict_batch(&x), replica.predict_batch(&x));
}
