//! Shard worker: queue, batch coalescing, and batched prediction.

use dart_telemetry::lockcheck::{named_mutex, Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::{Arc, PoisonError};
use std::time::Instant;

use dart_nn::matrix::Matrix;
use dart_telemetry::{AtomicHistogram, Gauge, Histogram, SpanRing};
use dart_trace::PreprocessConfig;

use crate::lru::StreamLru;
use crate::request::PrefetchResponse;
use crate::shadow::{ReplaySample, ReplaySampler};
use crate::slot::ModelHandle;

#[cfg(feature = "telemetry")]
use dart_telemetry::SpanRecord;

/// A request plus its enqueue timestamp (for latency accounting).
pub(crate) struct Envelope {
    pub req: crate::request::PrefetchRequest,
    pub enqueued: Instant,
}

/// The mutex+condvar request queue feeding one shard worker.
///
/// Capacity is bounded by `ServeConfig::queue_capacity`. Producers have
/// two ways in: [`Self::push`]/[`Self::push_all`] **block** while the
/// queue is full (in-process submitters), while [`Self::try_push`] fails
/// fast with the current depth (the network front-end turns that into a
/// protocol NACK instead of ever blocking an IO thread).
pub(crate) struct ShardQueue {
    inner: Mutex<QueueInner>,
    cv: Condvar,
    /// Producer-side condvar: blocked `push`/`push_all` callers wait here
    /// for space. Woken by `pop_batch` (space freed) AND by
    /// `shutdown`/`poison` — a producer parked on a full queue whose
    /// worker dies must wake and fail fast with the worker's panic
    /// message, never sleep forever (the wakeup-on-death bugfix).
    space: Condvar,
    /// Maximum queued envelopes (`usize::MAX` = unbounded).
    capacity: usize,
    /// Live queue depth, mirrored from `pending.len()` on every
    /// push/drain. A lock-free cell so `stats_snapshot` reads it without
    /// contending for the hot-path queue mutex.
    depth: Gauge,
}

/// Why [`ShardQueue::try_push`] bounced an envelope.
pub(crate) enum TryPushError {
    /// The queue is at capacity; `depth` is its length at rejection time
    /// (what a protocol NACK carries back to the client).
    Full { depth: u64 },
    /// The queue is shut down or its worker died; the caller must fail
    /// the envelope with this reason.
    Closed(Arc<str>),
}

struct QueueInner {
    pending: VecDeque<Envelope>,
    shutdown: bool,
    /// Set when the shard worker died (panicked): the queue will never be
    /// drained again, so pushes must be rejected back to the caller.
    dead: Option<Arc<str>>,
}

impl QueueInner {
    /// Why a push must be rejected right now, if it must be.
    fn reject_reason(&self) -> Option<Arc<str>> {
        if let Some(reason) = &self.dead {
            return Some(Arc::clone(reason));
        }
        if self.shutdown {
            return Some(Arc::from("shard queue already shut down"));
        }
        None
    }
}

impl ShardQueue {
    pub fn new(capacity: usize) -> ShardQueue {
        ShardQueue {
            inner: named_mutex(
                "serve.shard_queue",
                QueueInner { pending: VecDeque::new(), shutdown: false, dead: None },
            ),
            cv: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
            depth: Gauge::new(),
        }
    }

    /// Requests currently queued (not yet drained by the worker).
    /// Lock-free read of the mirrored depth gauge; clamped at 0 against
    /// transient push/drain interleavings.
    pub fn depth(&self) -> u64 {
        self.depth.get().max(0) as u64
    }

    /// Lock the queue, recovering from mutex poisoning: a panicking worker
    /// must not turn every later producer into a confusing `PoisonError`
    /// unwrap — the queue state is a plain FIFO and stays consistent.
    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueue one request, **blocking while the queue is full**. After
    /// [`Self::shutdown`] or [`Self::poison`] the envelope is handed back
    /// with the reason instead: a request pushed into a queue no worker
    /// will drain again must be failed by the caller, never silently
    /// dropped. A producer parked here when the worker dies is woken by
    /// `poison`'s `space` notification and gets the rejection, so it can
    /// never hang on a dead shard.
    pub fn push(&self, env: Envelope) -> Result<(), (Vec<Envelope>, Arc<str>)> {
        let mut inner = self.lock();
        loop {
            if let Some(reason) = inner.reject_reason() {
                return Err((vec![env], reason));
            }
            if inner.pending.len() < self.capacity {
                break;
            }
            inner = self.space.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        let was_empty = inner.pending.is_empty();
        inner.pending.push_back(env);
        self.depth.add(1);
        drop(inner);
        if was_empty {
            self.cv.notify_one();
        }
        Ok(())
    }

    /// Enqueue one request **without ever blocking**: a full queue comes
    /// back as [`TryPushError::Full`] with the depth at rejection time.
    /// This is the network front-end's entry point — a full bounded shard
    /// queue becomes a protocol NACK carrying that depth, instead of a
    /// blocked socket thread.
    pub fn try_push(&self, env: Envelope) -> Result<(), (Envelope, TryPushError)> {
        let mut inner = self.lock();
        if let Some(reason) = inner.reject_reason() {
            return Err((env, TryPushError::Closed(reason)));
        }
        if inner.pending.len() >= self.capacity {
            let depth = inner.pending.len() as u64;
            return Err((env, TryPushError::Full { depth }));
        }
        let was_empty = inner.pending.is_empty();
        inner.pending.push_back(env);
        self.depth.add(1);
        drop(inner);
        if was_empty {
            self.cv.notify_one();
        }
        Ok(())
    }

    /// Enqueue many requests, blocking in chunks while the queue is full;
    /// same rejection contract as [`Self::push`]. If the queue dies while
    /// a chunk is parked, the **not-yet-queued tail** is handed back
    /// (envelopes already queued are drained and failed by the poisoner),
    /// so every envelope is accounted exactly once either way.
    pub fn push_all(&self, envs: Vec<Envelope>) -> Result<(), (Vec<Envelope>, Arc<str>)> {
        let mut envs: VecDeque<Envelope> = envs.into();
        let mut inner = self.lock();
        while !envs.is_empty() {
            if let Some(reason) = inner.reject_reason() {
                return Err((envs.into_iter().collect(), reason));
            }
            let room = self.capacity.saturating_sub(inner.pending.len());
            if room == 0 {
                inner = self.space.wait(inner).unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            let take = room.min(envs.len());
            let was_empty = inner.pending.is_empty();
            inner.pending.extend(envs.drain(..take));
            self.depth.add(take as i64);
            if was_empty {
                self.cv.notify_one();
            }
        }
        Ok(())
    }

    /// Block until work or shutdown; drain up to `max_batch` requests.
    /// Returns `None` when shut down with an empty queue — envelopes that
    /// were already queued when `shutdown()` landed keep draining until
    /// the queue is empty, so they are always answered.
    pub fn pop_batch(&self, max_batch: usize) -> Option<Vec<Envelope>> {
        let mut inner = self.lock();
        while inner.pending.is_empty() && !inner.shutdown {
            inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
        if inner.pending.is_empty() {
            return None; // shutdown
        }
        let n = inner.pending.len().min(max_batch.max(1));
        self.depth.sub(n as i64);
        let batch = inner.pending.drain(..n).collect();
        drop(inner);
        // Space was freed: wake every producer parked on the full queue
        // (notify_all — several may fit into the drained room).
        self.space.notify_all();
        Some(batch)
    }

    /// Mark the queue shut down and wake the worker **and** any producers
    /// parked on a full queue (they get the shutdown rejection).
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.cv.notify_all();
        self.space.notify_all();
    }

    /// Mark the queue dead (its worker panicked): refuse all future
    /// pushes with `reason` and hand back everything still queued so the
    /// caller can fail those envelopes.
    ///
    /// Wakes producers parked on the full queue too — a submitter blocked
    /// inside `ServeRuntime::submit`'s full-queue wait used to sleep
    /// forever when the shard's worker died, because nothing ever freed
    /// space again. Now it wakes, sees the death reason, and the submit
    /// fails fast with the worker's panic message.
    pub fn poison(&self, reason: &str) -> Vec<Envelope> {
        let mut inner = self.lock();
        inner.shutdown = true;
        inner.dead = Some(Arc::from(reason));
        let drained: Vec<Envelope> = inner.pending.drain(..).collect();
        self.depth.sub(drained.len() as i64);
        drop(inner);
        self.cv.notify_all();
        self.space.notify_all();
        drained
    }
}

/// Cross-thread stream-retirement requests for one shard.
///
/// A shard worker owns its [`StreamLru`] locally (allocated on the
/// worker thread, after any NUMA pin, for first-touch locality), so
/// other threads cannot evict dead streams directly. Instead they push
/// the doomed namespace here; the worker drains the cell at the top of
/// each batch iteration, **before** serving, so a batch's new streams
/// see the freed residency. Draining is lazy by design: retired streams
/// can only displace live ones when new traffic arrives, and new
/// traffic is exactly what wakes the worker.
pub(crate) struct RetireCell {
    /// Fast-path flag so the worker loop pays one relaxed load per batch
    /// when nothing is pending (the common case — disconnects are rare).
    flagged: std::sync::atomic::AtomicBool,
    prefixes: Mutex<Vec<u32>>,
}

impl Default for RetireCell {
    fn default() -> RetireCell {
        RetireCell {
            flagged: std::sync::atomic::AtomicBool::new(false),
            prefixes: named_mutex("serve.retire", Vec::new()),
        }
    }
}

impl RetireCell {
    /// Ask the owning worker to retire every stream namespaced under
    /// `prefix` (upper 32 bits of the stream id).
    pub fn push(&self, prefix: u32) {
        self.prefixes.lock().unwrap_or_else(PoisonError::into_inner).push(prefix);
        // Release pairs with the worker's acquire load: the prefix push
        // above must be visible once the flag is.
        self.flagged.store(true, std::sync::atomic::Ordering::Release);
    }

    /// Drain pending retirements into the worker's LRU. Returns how many
    /// streams were actually removed.
    fn drain_into(&self, streams: &mut StreamLru) -> usize {
        if !self.flagged.load(std::sync::atomic::Ordering::Acquire) {
            return 0;
        }
        let prefixes: Vec<u32> = {
            let mut list = self.prefixes.lock().unwrap_or_else(PoisonError::into_inner);
            self.flagged.store(false, std::sync::atomic::Ordering::Relaxed);
            list.drain(..).collect()
        };
        prefixes.into_iter().map(|p| streams.retire_prefix(p)).sum()
    }
}

/// Where finished responses land (shared by all shards), plus the in-flight
/// counter that [`crate::ServeRuntime::wait_idle`] blocks on.
pub(crate) struct CompletionSink {
    pub state: Mutex<SinkState>,
    pub cv: Condvar,
}

pub(crate) struct SinkState {
    pub completed: Vec<PrefetchResponse>,
    pub in_flight: u64,
    /// Failure responses delivered so far (worker panics, dead-shard
    /// submissions).
    pub failed: u64,
    /// `(shard_id, panic message)` of every shard worker that died.
    pub worker_panics: Vec<(usize, String)>,
}

impl CompletionSink {
    pub fn new() -> CompletionSink {
        CompletionSink {
            state: named_mutex(
                "serve.sink",
                SinkState {
                    completed: Vec::new(),
                    in_flight: 0,
                    failed: 0,
                    worker_panics: Vec::new(),
                },
            ),
            cv: Condvar::new(),
        }
    }

    /// Lock the sink state, recovering from mutex poisoning. A shard
    /// worker that panics while holding this lock must not cascade into
    /// `PoisonError` panics at every later lock site — the state is plain
    /// counters plus a response list and stays consistent.
    pub fn lock(&self) -> MutexGuard<'_, SinkState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Deliver a **failure** response for each `(stream_id, enqueued)`
    /// request and release its in-flight slot, so `wait_idle`/`wait_below`
    /// callers can never hang on a request no worker will ever serve.
    pub fn fail_requests(&self, shard: usize, items: Vec<(u64, Instant)>, reason: &str) {
        if items.is_empty() {
            return;
        }
        let now = Instant::now();
        let n = items.len() as u64;
        let mut state = self.lock();
        for (stream_id, enqueued) in items {
            state.completed.push(PrefetchResponse {
                stream_id,
                seq: u64::MAX,
                shard,
                prefetch_blocks: Vec::new(),
                latency_ns: now.duration_since(enqueued).as_nanos() as u64,
                error: Some(reason.to_string()),
            });
        }
        debug_assert!(state.in_flight >= n, "in-flight accounting underflow");
        state.in_flight -= n;
        state.failed += n;
        drop(state);
        self.cv.notify_all();
    }

    /// Record a dead worker's panic message (surfaced by
    /// `ServeRuntime::worker_panics` and `ServeStats::worker_panics`).
    pub fn record_worker_panic(&self, shard: usize, message: String) {
        self.lock().worker_panics.push((shard, message));
        self.cv.notify_all();
    }
}

/// Unwind guard armed around one popped batch: if the worker panics
/// before delivering the batch's responses, the guard fails every
/// envelope of the batch (error response + in-flight release) instead of
/// leaking its `in_flight` slots and hanging `wait_idle` forever.
struct BatchGuard<'a> {
    sink: &'a CompletionSink,
    shard: usize,
    items: Vec<(u64, Instant)>,
    armed: bool,
}

impl<'a> BatchGuard<'a> {
    fn arm(sink: &'a CompletionSink, shard: usize, batch: &[Envelope]) -> BatchGuard<'a> {
        BatchGuard {
            sink,
            shard,
            items: batch.iter().map(|e| (e.req.stream_id, e.enqueued)).collect(),
            armed: true,
        }
    }
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.sink.fail_requests(
                self.shard,
                std::mem::take(&mut self.items),
                "shard worker panicked while serving this batch",
            );
        }
    }
}

/// Per-shard serving statistics, committed whole-batch under the report
/// cell's lock so any clone of the cell is internally consistent
/// (`latency.count() == requests`, `predictions <= requests`). Backs both
/// `ServeRuntime::stats_snapshot` (live) and `shutdown` (final) through
/// the same aggregation path.
#[derive(Clone, Debug, Default)]
pub(crate) struct ShardReport {
    pub requests: u64,
    pub predictions: u64,
    pub batches: u64,
    pub max_batch: usize,
    /// Streams resident in the shard's LRU map as of the last served
    /// batch (always `<= ServeConfig::max_streams_per_shard`).
    pub resident_streams: usize,
    /// Streams evicted by the LRU cap so far.
    pub stream_evictions: u64,
    /// Streams explicitly retired (dead-connection cleanup via
    /// [`RetireCell`]) so far.
    pub stream_retirements: u64,
    /// Whether this shard's worker successfully pinned itself to its
    /// assigned node's cpuset (always `false` when unplaced, when the
    /// `numa` feature is off, or when the kernel rejected the mask).
    pub pinned: bool,
    /// Request latency (queue + inference), log2-bucketed
    /// ([`dart_telemetry::Histogram`], promoted out of this module).
    pub latency: Histogram,
}

/// Lock-free per-shard lifecycle metric cells, recorded by the worker
/// without taking any lock and snapshot by `stats_snapshot` at any time.
///
/// The four stage histograms are only *recorded* under the `telemetry`
/// feature (the timestamps they need compile to no-ops otherwise); the
/// batch-size distribution is always on — one relaxed atomic add per
/// coalesced batch.
#[derive(Debug, Default)]
pub(crate) struct ShardTelemetry {
    /// Enqueue → drained by the worker, per request, nanoseconds.
    pub queue_wait: AtomicHistogram,
    /// Drain → feature matrix formed (stream updates + staging), per
    /// batch, nanoseconds.
    pub coalesce: AtomicHistogram,
    /// Feature matrix → predictions decoded (`predict_batch` + emission),
    /// per batch, nanoseconds.
    pub kernel: AtomicHistogram,
    /// Predictions → responses delivered to the completion sink, per
    /// batch, nanoseconds.
    pub sink: AtomicHistogram,
    /// Coalesced batch-size distribution (per batch, in requests).
    pub batch_size: AtomicHistogram,
}

/// Emission policy applied to each bitmap prediction.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EmitPolicy {
    pub threshold: f32,
    pub max_degree: usize,
}

/// One shard: owns its streams' history state and a versioned handle
/// into the shared [`crate::ModelSlot`].
pub(crate) struct ShardWorker {
    pub shard_id: usize,
    /// Versioned model view: re-checked once per batch boundary (one
    /// atomic load when nothing changed), so hot-swapped versions are
    /// adopted between batches and a batch never observes a torn model.
    pub model: ModelHandle,
    pub pre: PreprocessConfig,
    pub max_batch: usize,
    pub emit: EmitPolicy,
    /// Resident-stream cap of this shard's LRU state map
    /// (`ServeConfig::max_streams_per_shard`).
    pub max_streams: usize,
    /// Fault injection (`ServeConfig::panic_on_stream`): panic while
    /// serving the batch that contains this stream id.
    pub panic_on_stream: Option<u64>,
    /// Fault injection (`ServeConfig::stall_on_stream`): sleep for
    /// `stall_ms` before serving a batch that contains this stream id —
    /// deterministic back-pressure for queue-full / NACK tests.
    pub stall_on_stream: Option<u64>,
    /// Milliseconds [`Self::stall_on_stream`] sleeps for.
    pub stall_ms: u64,
    /// Dead-stream retirement requests from other threads (the runtime
    /// holds the other reference); drained before each served batch.
    pub retire: Arc<RetireCell>,
    /// This shard's lock-free lifecycle metric cells (the runtime holds
    /// the other reference and snapshots them live).
    pub telemetry: Arc<ShardTelemetry>,
    /// Shared ring of recent request spans (capacity 0 = disabled; only
    /// written under the `telemetry` feature).
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    pub spans: Arc<SpanRing>,
    /// Live-traffic replay sampler feeding the shadow retrainer
    /// (`ServeConfig::replay_capacity > 0`); one bulk push per served
    /// batch. `None` disables sampling entirely.
    pub replay: Option<Arc<ReplaySampler>>,
}

impl ShardWorker {
    /// Worker loop: drain → coalesce → `predict_batch` → respond, until the
    /// queue shuts down.
    ///
    /// Statistics land in the shared `report` cell once per batch (after
    /// that batch's responses are final), so a worker that panics later
    /// loses at most the dying batch's numbers — everything it served
    /// before the panic stays counted in `ServeStats`.
    ///
    /// The per-batch feature matrix and the stacked warm-row matrix are
    /// built from two scratch buffers owned by the worker and recycled via
    /// `Matrix::from_vec` / `Matrix::into_vec`, so a long-running shard
    /// performs no steady-state allocation for feature staging regardless
    /// of how many batches it drains.
    pub fn run(
        mut self,
        queue: Arc<ShardQueue>,
        sink: Arc<CompletionSink>,
        report: Arc<Mutex<ShardReport>>,
    ) {
        let t = self.pre.seq_len;
        let di = self.pre.input_dim();
        // Bounded per-stream state: at most `max_streams` resident, LRU
        // eviction beyond that (see `crate::lru` for why an evicted stream
        // re-warms from scratch). Allocated here, on the worker thread,
        // *after* any NUMA pinning — first touch keeps it node-local.
        let mut streams = StreamLru::new(self.max_streams);
        // (request index in batch, anchor block) of each warm request, in
        // feature-matrix order.
        let mut warm: Vec<(usize, u64)> = Vec::new();
        let mut candidates: Vec<(f32, usize)> = Vec::new();
        // Reused feature staging: `feat_buf` backs the per-batch feature
        // matrix (capacity max_batch * t * di after the first full batch),
        // `stack_buf` backs the exact-size stacked matrix handed to
        // `predict_batch`.
        let mut feat_buf: Vec<f32> = Vec::new();
        let mut stack_buf: Vec<f32> = Vec::new();

        while let Some(batch) = queue.pop_batch(self.max_batch) {
            // Dead-connection cleanup first, so this batch's new streams
            // see the freed residency instead of evicting live ones.
            self.retire.drain_into(&mut streams);
            // Lifecycle tracing stamps (telemetry feature only — without
            // it no clock is read beyond the existing latency stamp).
            #[cfg(feature = "telemetry")]
            let t_drained = Instant::now();
            // Fault injection: stall before touching the batch, so the
            // queue can fill (and NACK) behind a deterministically slow
            // worker.
            if let Some(sid) = self.stall_on_stream {
                if self.stall_ms > 0 && batch.iter().any(|e| e.req.stream_id == sid) {
                    std::thread::sleep(std::time::Duration::from_millis(self.stall_ms));
                }
            }
            // If anything below unwinds, the guard converts this batch
            // into failure responses so its in-flight slots are released.
            let mut batch_guard = BatchGuard::arm(&sink, self.shard_id, &batch);
            // Batch-boundary model adoption, deliberately AFTER arming the
            // guard: if adopting a hot-swapped version panics (a node
            // replica's deep clone OOMs, say), the batch fails cleanly —
            // its in-flight slots are released — instead of leaking. The
            // adopted `Arc` serves this whole batch: a swap landing
            // mid-batch is picked up at the next boundary, never torn.
            let model = Arc::clone(self.model.current());
            warm.clear();

            // Phase 1: update stream state in arrival order. Features are
            // written immediately after each push, so a stream submitting
            // several requests within one batch gets one prediction per
            // request, each over its own history window.
            feat_buf.clear();
            feat_buf.resize(batch.len() * t * di, 0.0);
            let mut feats = Matrix::from_vec(batch.len() * t, di, std::mem::take(&mut feat_buf));
            let mut responses: Vec<PrefetchResponse> = Vec::with_capacity(batch.len());
            for (i, env) in batch.iter().enumerate() {
                if Some(env.req.stream_id) == self.panic_on_stream {
                    // The message deliberately contains a double quote, a
                    // backslash, and a newline: panic reasons flow into
                    // exposition labels (`dart_serve_worker_panic_info`),
                    // so every fault-injection run also exercises label
                    // escaping end to end.
                    panic!(
                        "fault injection: shard worker told to die on stream {} \
                         (\"quoted\", back\\slash,\nsecond line)",
                        env.req.stream_id
                    );
                }
                let state = streams.entry(env.req.stream_id, t);
                let seq = state.push(env.req.block(), env.req.pc);
                responses.push(PrefetchResponse {
                    stream_id: env.req.stream_id,
                    seq,
                    shard: self.shard_id,
                    prefetch_blocks: Vec::new(),
                    latency_ns: 0,
                    error: None,
                });
                if state.warm() {
                    state.write_features_into(&self.pre, &mut feats, warm.len() * t);
                    warm.push((i, state.last_block().unwrap()));
                }
            }

            #[cfg(feature = "telemetry")]
            let t_formed = Instant::now();

            // Phase 2: one batched prediction for every warm request.
            if !warm.is_empty() {
                stack_buf.clear();
                stack_buf.extend_from_slice(&feats.as_slice()[..warm.len() * t * di]);
                let stacked = Matrix::from_vec(warm.len() * t, di, std::mem::take(&mut stack_buf));
                let probs = model.predict_batch(&stacked);
                stack_buf = stacked.into_vec();
                for (w, &(i, anchor)) in warm.iter().enumerate() {
                    responses[i].prefetch_blocks =
                        decode_bitmap(probs.row(w), &self.pre, anchor, self.emit, &mut candidates);
                }
            }
            feat_buf = feats.into_vec();
            #[cfg(feature = "telemetry")]
            let t_predicted = Instant::now();

            // Phase 3: stamp latencies, then deliver. All fallible work is
            // done; disarm before taking any lock so the guard's Drop can
            // never re-lock the sink from this thread. Commit this batch's
            // statistics only now that its responses are final: a panic
            // earlier in the batch loses at most the dying batch's numbers.
            let now = Instant::now();
            for (env, resp) in batch.iter().zip(&mut responses) {
                resp.latency_ns = now.duration_since(env.enqueued).as_nanos() as u64;
            }
            batch_guard.armed = false;
            {
                let mut r = report.lock().unwrap_or_else(PoisonError::into_inner);
                r.batches += 1;
                r.max_batch = r.max_batch.max(batch.len());
                r.requests += batch.len() as u64;
                r.predictions += warm.len() as u64;
                r.resident_streams = streams.len();
                r.stream_evictions = streams.evictions();
                r.stream_retirements = streams.retirements();
                for resp in &responses {
                    r.latency.record(resp.latency_ns);
                }
            }
            // Span identities must be captured before the responses move
            // into the sink (only needed when the ring records anything).
            #[cfg(feature = "telemetry")]
            let span_ids: Option<Vec<(u64, u64)>> = (self.spans.capacity() > 0)
                .then(|| responses.iter().map(|r| (r.stream_id, r.seq)).collect());
            let mut sink_state = sink.lock();
            sink_state.completed.append(&mut responses);
            sink_state.in_flight -= batch.len() as u64;
            drop(sink_state);
            sink.cv.notify_all();

            // Feed the shadow retrainer's replay window (one bulk push per
            // batch, after the responses are already delivered — sampling
            // adds nothing to request latency). Arrival order within the
            // batch is preserved, which is what keeps per-stream replay
            // traces meaningful.
            if let Some(sampler) = &self.replay {
                sampler.push_batch(batch.iter().map(|env| ReplaySample {
                    stream_id: env.req.stream_id,
                    pc: env.req.pc,
                    addr: env.req.addr,
                }));
            }

            // Lifecycle telemetry, all lock-free cells: batch-size always
            // (one relaxed add per batch), stage durations and span
            // records only when the tracing timestamps exist.
            self.telemetry.batch_size.record(batch.len() as u64);
            #[cfg(feature = "telemetry")]
            {
                let t_delivered = Instant::now();
                let coalesce_ns = t_formed.duration_since(t_drained).as_nanos() as u64;
                let kernel_ns = t_predicted.duration_since(t_formed).as_nanos() as u64;
                let sink_ns = t_delivered.duration_since(t_predicted).as_nanos() as u64;
                self.telemetry.coalesce.record(coalesce_ns);
                self.telemetry.kernel.record(kernel_ns);
                self.telemetry.sink.record(sink_ns);
                for env in &batch {
                    self.telemetry
                        .queue_wait
                        .record(t_drained.duration_since(env.enqueued).as_nanos() as u64);
                }
                if let Some(ids) = span_ids {
                    for (env, (stream_id, seq)) in batch.iter().zip(ids) {
                        self.spans.push(SpanRecord {
                            stream_id,
                            seq,
                            shard: self.shard_id,
                            batch_size: batch.len(),
                            queue_wait_ns: t_drained.duration_since(env.enqueued).as_nanos() as u64,
                            coalesce_ns,
                            kernel_ns,
                            sink_ns,
                        });
                    }
                }
            }
        }
    }
}

/// Turn one bitmap-probability row into prefetch block addresses via the
/// emission rule shared with `DartPrefetcher`
/// ([`PreprocessConfig::decode_bitmap_into`]).
pub(crate) fn decode_bitmap(
    probs: &[f32],
    pre: &PreprocessConfig,
    anchor_block: u64,
    emit: EmitPolicy,
    candidates: &mut Vec<(f32, usize)>,
) -> Vec<u64> {
    pre.decode_bitmap_into(probs, anchor_block, emit.threshold, emit.max_degree, candidates)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_for(stream_id: u64) -> Envelope {
        Envelope {
            req: crate::request::PrefetchRequest { stream_id, pc: 0, addr: stream_id << 6 },
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn queue_drains_in_order_and_respects_max_batch() {
        let q = ShardQueue::new(usize::MAX);
        for i in 0..5u64 {
            assert!(q.push(env_for(i)).is_ok());
        }
        let batch = q.pop_batch(3).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].req.stream_id, 0);
        assert_eq!(batch[2].req.stream_id, 2);
        let rest = q.pop_batch(16).unwrap();
        assert_eq!(rest.len(), 2);
        q.shutdown();
        assert!(q.pop_batch(16).is_none());
    }

    #[test]
    fn envelopes_queued_at_shutdown_still_drain() {
        // Regression (shutdown-path audit): requests that were already
        // queued when `shutdown()` landed must keep draining — the worker
        // answers them before `pop_batch` reports `None`.
        let q = ShardQueue::new(usize::MAX);
        for i in 0..7u64 {
            assert!(q.push(env_for(i)).is_ok());
        }
        q.shutdown();
        let first = q.pop_batch(4).expect("queued work must survive shutdown");
        assert_eq!(first.len(), 4);
        let rest = q.pop_batch(4).expect("tail must survive shutdown too");
        assert_eq!(rest.len(), 3);
        assert_eq!(rest[2].req.stream_id, 6, "drain order broken across shutdown");
        assert!(q.pop_batch(4).is_none());
    }

    #[test]
    fn push_after_shutdown_is_rejected_not_dropped() {
        // Regression: a push after shutdown used to enqueue silently even
        // though no worker would ever drain it again — the envelope (and
        // its in-flight slot) just vanished.
        let q = ShardQueue::new(usize::MAX);
        q.shutdown();
        let (rejected, reason) = q.push(env_for(9)).expect_err("push must be rejected");
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].req.stream_id, 9);
        assert!(reason.contains("shut down"), "unhelpful reason: {reason}");
        let (batch_rejected, _) =
            q.push_all(vec![env_for(1), env_for(2)]).expect_err("push_all must be rejected");
        assert_eq!(batch_rejected.len(), 2);
        assert!(q.pop_batch(8).is_none(), "rejected envelopes must not linger in the queue");
    }

    #[test]
    fn poison_drains_pending_and_rejects_future_pushes() {
        let q = ShardQueue::new(usize::MAX);
        assert!(q.push(env_for(1)).is_ok());
        assert!(q.push(env_for(2)).is_ok());
        let leaked = q.poison("shard 0 worker panicked: boom");
        assert_eq!(leaked.len(), 2, "poison must hand queued envelopes back");
        let (_, reason) = q.push(env_for(3)).expect_err("dead queue must reject");
        assert!(reason.contains("boom"), "original panic lost: {reason}");
        assert!(q.pop_batch(8).is_none());
    }

    #[test]
    fn fail_requests_releases_in_flight_and_delivers_errors() {
        let sink = CompletionSink::new();
        sink.lock().in_flight = 3;
        let now = Instant::now();
        sink.fail_requests(1, vec![(7, now), (8, now)], "worker died");
        let state = sink.lock();
        assert_eq!(state.in_flight, 1);
        assert_eq!(state.failed, 2);
        assert_eq!(state.completed.len(), 2);
        for resp in &state.completed {
            assert_eq!(resp.shard, 1);
            assert_eq!(resp.seq, u64::MAX);
            assert!(resp.prefetch_blocks.is_empty());
            assert_eq!(resp.error.as_deref(), Some("worker died"));
        }
    }

    #[test]
    fn decode_bitmap_ranks_and_caps() {
        let pre = PreprocessConfig { delta_range: 4, ..Default::default() };
        // Bits: deltas -4..-1 then +1..+4; probabilities favor +1 and -2.
        let mut probs = vec![0.0f32; pre.output_dim()];
        probs[pre.delta_to_bit(1).unwrap()] = 0.9;
        probs[pre.delta_to_bit(-2).unwrap()] = 0.8;
        probs[pre.delta_to_bit(3).unwrap()] = 0.6;
        let emit = EmitPolicy { threshold: 0.7, max_degree: 4 };
        let mut scratch = Vec::new();
        let out = decode_bitmap(&probs, &pre, 100, emit, &mut scratch);
        assert_eq!(out, vec![101, 98]); // delta +1 first (higher prob), then -2
    }

    #[test]
    fn queue_depth_gauge_tracks_push_drain_and_poison() {
        // The depth gauge is what `stats_snapshot` reads without touching
        // the queue mutex — it must mirror pending.len() at every
        // quiescent point, including the poison drain.
        let q = ShardQueue::new(usize::MAX);
        assert_eq!(q.depth(), 0);
        assert!(q.push(env_for(1)).is_ok());
        assert!(q.push_all(vec![env_for(2), env_for(3), env_for(4)]).is_ok());
        assert_eq!(q.depth(), 4);
        let batch = q.pop_batch(3).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(q.depth(), 1);
        let leaked = q.poison("worker died");
        assert_eq!(leaked.len(), 1);
        assert_eq!(q.depth(), 0, "poison must release the drained depth");
        // Rejected pushes never count into the depth.
        assert!(q.push(env_for(5)).is_err());
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn decode_bitmap_drops_nonpositive_targets() {
        let pre = PreprocessConfig { delta_range: 4, ..Default::default() };
        let mut probs = vec![0.0f32; pre.output_dim()];
        probs[pre.delta_to_bit(-3).unwrap()] = 0.9;
        let emit = EmitPolicy { threshold: 0.5, max_degree: 2 };
        let mut scratch = Vec::new();
        // Anchor block 2: 2 - 3 = -1 is not a valid block.
        assert!(decode_bitmap(&probs, &pre, 2, emit, &mut scratch).is_empty());
    }
}
