//! `cargo bench` entry point that regenerates every table and figure at
//! reduced scale (the per-experiment binaries under `src/bin/` do the same
//! individually, with `DART_SCALE=full` for paper-faithful sizes).
//!
//! This is a `harness = false` bench target: it shells out to the already
//! built experiment binaries so their stdout lands in the bench log.

use std::process::Command;

fn run(bin: &str, envs: &[(&str, &str)]) {
    println!("\n############ {bin} ############");
    let mut cmd = Command::new(env!("CARGO"));
    cmd.args(["run", "--release", "-p", "dart-bench", "--bin", bin]);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    match cmd.status() {
        Ok(s) if s.success() => {}
        Ok(s) => eprintln!("{bin} exited with {s}"),
        Err(e) => eprintln!("failed to run {bin}: {e}"),
    }
}

fn main() {
    // Honour `cargo bench -- <filter>`: run only experiments whose name
    // contains the filter string.
    let filter = std::env::args().nth(1).filter(|a| !a.starts_with('-'));
    let experiments = [
        "exp_table3",
        "exp_table4",
        "exp_table5",
        "exp_table8",
        "exp_table9",
        "exp_fig7",
        "exp_fig10",
        "exp_table6",
        "exp_table7",
        "exp_fig8",
        "exp_fig9",
        "exp_fig11",
        "exp_prefetching",
        "exp_fig12",
        "exp_fig13",
        "exp_fig14",
        "exp_ablations",
        "exp_headline",
    ];
    for bin in experiments {
        if let Some(f) = &filter {
            if !bin.contains(f.as_str()) {
                continue;
            }
        }
        // The figure 12-14 binaries reuse the matrix exp_prefetching saved;
        // training-heavy experiments run on a 2-workload subset so the whole
        // regeneration stays within a coffee break (unset DART_WORKLOADS and
        // DART_SCALE=full for the paper-faithful runs).
        let heavy = ["exp_table6", "exp_table7", "exp_fig8", "exp_fig9", "exp_prefetching"];
        let envs: &[(&str, &str)] =
            if bin.starts_with("exp_fig1") && bin != "exp_fig10" && bin != "exp_fig11" {
                &[("DART_REUSE", "1"), ("DART_WORKLOADS", "2")]
            } else if heavy.contains(&bin) {
                &[("DART_WORKLOADS", "2")]
            } else {
                &[]
            };
        run(bin, envs);
    }
    println!("\nAll experiments done. JSON records: target/experiments/");
}
