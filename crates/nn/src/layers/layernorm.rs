//! Layer normalization over the feature (last) dimension.
//!
//! Algorithm 1 of the paper keeps LayerNorm as exact arithmetic in the
//! tabular model ("dimension-wise simple arithmetic operation without matrix
//! multiplication"), so this implementation is shared verbatim between the
//! neural and tabular predictors.

use crate::layers::{Layer, Param};
use crate::matrix::Matrix;

/// Layer normalization with learned scale (`gamma`) and shift (`beta`).
#[derive(Clone, Debug)]
pub struct LayerNorm {
    /// Scale, shape `1 x dim`.
    pub gamma: Param,
    /// Shift, shape `1 x dim`.
    pub beta: Param,
    eps: f32,
    cache: Option<LnCache>,
}

#[derive(Clone, Debug)]
struct LnCache {
    x_hat: Matrix,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// New LayerNorm over `dim` features (`gamma = 1`, `beta = 0`).
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Param::new(Matrix::full(1, dim, 1.0)),
            beta: Param::new(Matrix::zeros(1, dim)),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.gamma.value.cols()
    }

    /// Variance epsilon (copied verbatim into the tabular model's exact
    /// LayerNorm so both predictors normalize identically).
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Forward pass without caching.
    pub fn apply(&self, x: &Matrix) -> Matrix {
        self.normalize(x).0
    }

    fn normalize(&self, x: &Matrix) -> (Matrix, Matrix, Vec<f32>) {
        let dim = self.dim();
        assert_eq!(x.cols(), dim, "LayerNorm dim mismatch");
        let mut y = Matrix::zeros(x.rows(), dim);
        let mut x_hat = Matrix::zeros(x.rows(), dim);
        let mut inv_stds = Vec::with_capacity(x.rows());
        let gamma = self.gamma.value.as_slice();
        let beta = self.beta.value.as_slice();
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / dim as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / dim as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds.push(inv_std);
            let xh = x_hat.row_mut(r);
            let yr = y.row_mut(r);
            for c in 0..dim {
                let h = (row[c] - mean) * inv_std;
                xh[c] = h;
                yr[c] = gamma[c] * h + beta[c];
            }
        }
        (y, x_hat, inv_stds)
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let (y, x_hat, inv_std) = self.normalize(x);
        if train {
            self.cache = Some(LnCache { x_hat, inv_std });
        }
        y
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        let cache = self.cache.as_ref().expect("backward before forward(train=true)");
        let dim = self.dim();
        assert_eq!(grad.shape(), cache.x_hat.shape());
        let gamma = self.gamma.value.as_slice();

        let mut dx = Matrix::zeros(grad.rows(), dim);
        for r in 0..grad.rows() {
            let g = grad.row(r);
            let xh = cache.x_hat.row(r);
            let inv_std = cache.inv_std[r];

            // Accumulate parameter grads.
            {
                let dgamma = self.gamma.grad.as_mut_slice();
                let dbeta = self.beta.grad.as_mut_slice();
                for c in 0..dim {
                    dgamma[c] += g[c] * xh[c];
                    dbeta[c] += g[c];
                }
            }

            // dx = (inv_std / dim) * (dim * dy*gamma - sum(dy*gamma) - x_hat * sum(dy*gamma*x_hat))
            let mut sum_dyg = 0.0f32;
            let mut sum_dyg_xh = 0.0f32;
            for c in 0..dim {
                let dyg = g[c] * gamma[c];
                sum_dyg += dyg;
                sum_dyg_xh += dyg * xh[c];
            }
            let dxr = dx.row_mut(r);
            let n = dim as f32;
            for c in 0..dim {
                let dyg = g[c] * gamma[c];
                dxr[c] = (inv_std / n) * (n * dyg - sum_dyg - xh[c] * sum_dyg_xh);
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> &'static str {
        "layernorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::grad_check_input;

    #[test]
    fn output_has_zero_mean_unit_variance() {
        let mut ln = LayerNorm::new(8);
        let x = Matrix::from_fn(4, 8, |r, c| (r * 8 + c) as f32 * 1.7 - 5.0);
        let y = ln.forward(&x, false);
        for r in 0..4 {
            let row = y.row(r);
            let mean = row.iter().sum::<f32>() / 8.0;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut ln = LayerNorm::new(4);
        ln.gamma.value = Matrix::from_vec(1, 4, vec![2.0, 2.0, 2.0, 2.0]);
        ln.beta.value = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let x = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let y = ln.forward(&x, false);
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-4); // beta shifts the mean
    }

    #[test]
    fn gradient_check() {
        let mut ln = LayerNorm::new(6);
        // Non-uniform gamma: with gamma = 1 the sum-loss gradient is exactly
        // zero (normalized rows sum to zero), which makes the check degenerate.
        ln.gamma.value = Matrix::from_vec(1, 6, vec![0.5, 1.5, -0.7, 2.0, 1.0, 0.3]);
        let x = Matrix::from_fn(3, 6, |r, c| ((r * 6 + c) as f32 * 0.37).cos() * 2.0);
        let err = grad_check_input(&mut ln, &x, 1e-2);
        assert!(err < 3e-2, "relative grad error {err}");
    }

    #[test]
    fn apply_matches_forward() {
        let mut ln = LayerNorm::new(5);
        let x = Matrix::from_fn(2, 5, |r, c| (r + c) as f32);
        let y1 = ln.forward(&x, false);
        let y2 = ln.apply(&x);
        assert_eq!(y1, y2);
    }
}
