//! The compact fixed-layout binary wire protocol.
//!
//! Every frame starts with the same 4-byte header — magic `0xDA 0x7A`,
//! protocol version, frame kind — followed by a kind-specific fixed-size
//! body (responses append a variable block list whose length is in the
//! fixed part). All integers are little-endian. Layouts:
//!
//! | kind | frame | layout after the header |
//! |---|---|---|
//! | 1 | [`RequestFrame`]  | stream `u32`, pc `u64`, addr `u64` (24 B total) |
//! | 2 | [`ResponseFrame`] | stream `u32`, seq `u64`, latency_ns `u64`, status `u8`, count `u8`, count × block `u64` |
//! | 3 | [`NackFrame`]     | stream `u32`, addr `u64`, queue depth `u64` (24 B total) |
//!
//! The first magic byte (`0xDA`) never collides with the first byte of an
//! HTTP method, which is how the server tells a binary client from a
//! `GET /metrics` scrape on the same port.
//!
//! [`FrameDecoder`] reassembles frames across arbitrary TCP segmentation:
//! feed it whatever `read` returned and pull complete frames out. It
//! never panics on garbage — anything that is not a well-formed header
//! is a typed [`WireError`] (the connection is then torn down; there is
//! no resynchronization inside a byte stream).

use dart_serve::PrefetchRequest;

/// First header byte. Deliberately outside the ASCII range so binary
/// connections are distinguishable from HTTP on byte one.
pub const MAGIC0: u8 = 0xDA;
/// Second header byte.
pub const MAGIC1: u8 = 0x7A;
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Frame kind: client → server prefetch request.
pub const KIND_REQUEST: u8 = 1;
/// Frame kind: server → client prediction (or failure) response.
pub const KIND_RESPONSE: u8 = 2;
/// Frame kind: server → client backpressure NACK.
pub const KIND_NACK: u8 = 3;

/// Total size of a request frame.
pub const REQUEST_LEN: usize = 24;
/// Total size of a NACK frame.
pub const NACK_LEN: usize = 24;
/// Size of a response frame before its block list.
pub const RESPONSE_HEADER_LEN: usize = 26;
/// Maximum blocks per response (the count field is one byte).
pub const MAX_BLOCKS: usize = 255;

/// A client's "this stream accessed this address at this pc" frame.
///
/// The stream id is 32-bit **on the wire**: it names a stream within one
/// connection. The server widens it with the connection id
/// ([`RequestFrame::global_stream_id`]) so two clients using stream 0
/// never share shard state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestFrame {
    /// Connection-local stream id.
    pub stream: u32,
    /// Program counter of the access.
    pub pc: u64,
    /// Byte address of the access.
    pub addr: u64,
}

impl RequestFrame {
    /// The process-wide stream id: connection id in the high 32 bits,
    /// wire stream id in the low 32. The inverse lives in the response
    /// path (`global >> 32` routes back to the connection, `global as
    /// u32` goes out on the wire).
    pub fn global_stream_id(&self, conn_id: u32) -> u64 {
        ((conn_id as u64) << 32) | self.stream as u64
    }

    /// Decode straight into the runtime's request type — no intermediate
    /// buffer, just integer reads out of the frame bytes.
    pub fn into_prefetch(self, conn_id: u32) -> PrefetchRequest {
        PrefetchRequest { stream_id: self.global_stream_id(conn_id), pc: self.pc, addr: self.addr }
    }
}

/// The server's answer to one request (mirrors
/// [`dart_serve::PrefetchResponse`] minus the shard diagnostic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Connection-local stream id the prediction belongs to.
    pub stream: u32,
    /// Per-stream sequence number (`u64::MAX` for failure responses).
    pub seq: u64,
    /// Queue + inference latency observed by the runtime.
    pub latency_ns: u64,
    /// True when the runtime **failed** the request (worker death,
    /// shutdown) instead of serving it.
    pub failed: bool,
    /// Predicted prefetch targets as block addresses (empty while the
    /// stream history is cold; capped at [`MAX_BLOCKS`]).
    pub blocks: Vec<u64>,
}

/// Explicit backpressure: the shard queue for this stream was full, the
/// request was **not** accepted, and no response will come for it. The
/// client owns the retry decision; `depth` says how far behind the shard
/// is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NackFrame {
    /// Connection-local stream id of the rejected request.
    pub stream: u32,
    /// Echo of the rejected request's address, so a windowed client can
    /// match the NACK to what it sent.
    pub addr: u64,
    /// Shard queue depth at rejection time (or the connection's in-flight
    /// count when the *connection* admission cap rejected it).
    pub depth: u64,
}

/// Any well-formed frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    Request(RequestFrame),
    Response(ResponseFrame),
    Nack(NackFrame),
}

/// A malformed frame header. Fatal for the connection: inside a byte
/// stream there is no frame boundary to resynchronize on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// First two bytes were not `0xDA 0x7A` (first byte reported).
    BadMagic(u8, u8),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(a, b) => write!(f, "bad frame magic {a:#04x} {b:#04x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
        }
    }
}

impl std::error::Error for WireError {}

fn put_header(out: &mut Vec<u8>, kind: u8) {
    out.extend_from_slice(&[MAGIC0, MAGIC1, VERSION, kind]);
}

/// Append one encoded request frame to `out`.
pub fn encode_request(frame: &RequestFrame, out: &mut Vec<u8>) {
    out.reserve(REQUEST_LEN);
    put_header(out, KIND_REQUEST);
    out.extend_from_slice(&frame.stream.to_le_bytes());
    out.extend_from_slice(&frame.pc.to_le_bytes());
    out.extend_from_slice(&frame.addr.to_le_bytes());
}

/// Append one encoded response frame to `out`. Blocks beyond
/// [`MAX_BLOCKS`] are truncated (the count field is one byte); in
/// practice the serving runtime's degree cap keeps responses far below
/// that.
pub fn encode_response(frame: &ResponseFrame, out: &mut Vec<u8>) {
    let count = frame.blocks.len().min(MAX_BLOCKS);
    out.reserve(RESPONSE_HEADER_LEN + 8 * count);
    put_header(out, KIND_RESPONSE);
    out.extend_from_slice(&frame.stream.to_le_bytes());
    out.extend_from_slice(&frame.seq.to_le_bytes());
    out.extend_from_slice(&frame.latency_ns.to_le_bytes());
    out.push(frame.failed as u8);
    out.push(count as u8);
    for block in &frame.blocks[..count] {
        out.extend_from_slice(&block.to_le_bytes());
    }
}

/// Append one encoded NACK frame to `out`.
pub fn encode_nack(frame: &NackFrame, out: &mut Vec<u8>) {
    out.reserve(NACK_LEN);
    put_header(out, KIND_NACK);
    out.extend_from_slice(&frame.stream.to_le_bytes());
    out.extend_from_slice(&frame.addr.to_le_bytes());
    out.extend_from_slice(&frame.depth.to_le_bytes());
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

/// Incremental frame reassembly over arbitrary read boundaries.
///
/// Bytes go in via [`extend`](Self::extend) exactly as the socket
/// delivered them; complete frames come out of [`next`](Self::next).
/// Consumed bytes are compacted away lazily (amortized O(1) per byte),
/// so a long-lived connection does not grow the buffer without bound.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Feed raw socket bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: once the consumed prefix dominates the
        // buffer, shift the live tail down instead of reallocating past it.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pull the next complete frame.
    ///
    /// * `Ok(Some(frame))` — one frame decoded and consumed.
    /// * `Ok(None)` — no complete frame yet; feed more bytes.
    /// * `Err(_)` — the stream is not speaking this protocol; the caller
    ///   must drop the connection (no bytes were consumed).
    // Deliberately named like `Iterator::next` but fallible and
    // tri-state; an Iterator impl would have to flatten the error into
    // the item type and lose the "need more bytes" case.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Frame>, WireError> {
        let buf = &self.buf[self.pos..];
        if buf.len() < 4 {
            return Ok(None);
        }
        if buf[0] != MAGIC0 || buf[1] != MAGIC1 {
            return Err(WireError::BadMagic(buf[0], buf[1]));
        }
        if buf[2] != VERSION {
            return Err(WireError::BadVersion(buf[2]));
        }
        let need = match buf[3] {
            KIND_REQUEST => REQUEST_LEN,
            KIND_NACK => NACK_LEN,
            KIND_RESPONSE => {
                if buf.len() < RESPONSE_HEADER_LEN {
                    return Ok(None);
                }
                RESPONSE_HEADER_LEN + 8 * buf[25] as usize
            }
            k => return Err(WireError::BadKind(k)),
        };
        if buf.len() < need {
            return Ok(None);
        }
        let frame = match buf[3] {
            KIND_REQUEST => Frame::Request(RequestFrame {
                stream: read_u32(buf, 4),
                pc: read_u64(buf, 8),
                addr: read_u64(buf, 16),
            }),
            KIND_NACK => Frame::Nack(NackFrame {
                stream: read_u32(buf, 4),
                addr: read_u64(buf, 8),
                depth: read_u64(buf, 16),
            }),
            _ => {
                let count = buf[25] as usize;
                let blocks =
                    (0..count).map(|i| read_u64(buf, RESPONSE_HEADER_LEN + 8 * i)).collect();
                Frame::Response(ResponseFrame {
                    stream: read_u32(buf, 4),
                    seq: read_u64(buf, 8),
                    latency_ns: read_u64(buf, 16),
                    failed: buf[24] != 0,
                    blocks,
                })
            }
        };
        self.pos += need;
        Ok(Some(frame))
    }
}

/// Encode any frame (test/client convenience; the server encodes the
/// concrete types directly).
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    match frame {
        Frame::Request(f) => encode_request(f, out),
        Frame::Response(f) => encode_response(f, out),
        Frame::Nack(f) => encode_nack(f, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_and_global_id() {
        let req = RequestFrame { stream: 7, pc: 0x400123, addr: 0xdead_beef_0040 };
        let mut bytes = Vec::new();
        encode_request(&req, &mut bytes);
        assert_eq!(bytes.len(), REQUEST_LEN);

        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        assert_eq!(dec.next().unwrap(), Some(Frame::Request(req)));
        assert_eq!(dec.next().unwrap(), None);

        let p = req.into_prefetch(3);
        assert_eq!(p.stream_id, (3u64 << 32) | 7);
        assert_eq!(p.pc, req.pc);
        assert_eq!(p.addr, req.addr);
    }

    #[test]
    fn response_roundtrip_with_blocks() {
        let resp = ResponseFrame {
            stream: 1,
            seq: 42,
            latency_ns: 900,
            failed: false,
            blocks: vec![10, 11, 12],
        };
        let mut bytes = Vec::new();
        encode_response(&resp, &mut bytes);
        assert_eq!(bytes.len(), RESPONSE_HEADER_LEN + 24);
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        assert_eq!(dec.next().unwrap(), Some(Frame::Response(resp)));
    }

    #[test]
    fn oversized_block_list_is_truncated_not_corrupted() {
        let resp = ResponseFrame {
            stream: 0,
            seq: 0,
            latency_ns: 0,
            failed: true,
            blocks: (0..300).collect(),
        };
        let mut bytes = Vec::new();
        encode_response(&resp, &mut bytes);
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        match dec.next().unwrap().unwrap() {
            Frame::Response(r) => {
                assert_eq!(r.blocks.len(), MAX_BLOCKS);
                assert_eq!(r.blocks[..], resp.blocks[..MAX_BLOCKS]);
                assert!(r.failed);
            }
            other => panic!("wrong frame {other:?}"),
        }
        assert_eq!(dec.buffered(), 0, "exactly one frame's bytes consumed");
    }

    #[test]
    fn split_reads_reassemble() {
        let nack = NackFrame { stream: 9, addr: 0x1000, depth: 17 };
        let mut bytes = Vec::new();
        encode_nack(&nack, &mut bytes);
        let mut dec = FrameDecoder::new();
        for b in &bytes[..bytes.len() - 1] {
            dec.extend(std::slice::from_ref(b));
            assert_eq!(dec.next().unwrap(), None, "must wait for the full frame");
        }
        dec.extend(&bytes[bytes.len() - 1..]);
        assert_eq!(dec.next().unwrap(), Some(Frame::Nack(nack)));
    }

    #[test]
    fn header_errors_are_typed() {
        let mut dec = FrameDecoder::new();
        dec.extend(b"GET /metrics");
        assert_eq!(dec.next(), Err(WireError::BadMagic(b'G', b'E')));

        let mut dec = FrameDecoder::new();
        dec.extend(&[MAGIC0, MAGIC1, 99, KIND_REQUEST]);
        assert_eq!(dec.next(), Err(WireError::BadVersion(99)));

        let mut dec = FrameDecoder::new();
        dec.extend(&[MAGIC0, MAGIC1, VERSION, 0]);
        assert_eq!(dec.next(), Err(WireError::BadKind(0)));
    }

    #[test]
    fn compaction_keeps_buffer_bounded() {
        let mut bytes = Vec::new();
        encode_request(&RequestFrame { stream: 1, pc: 2, addr: 3 }, &mut bytes);
        let mut dec = FrameDecoder::new();
        for _ in 0..10_000 {
            dec.extend(&bytes);
            assert!(matches!(dec.next().unwrap(), Some(Frame::Request(_))));
        }
        assert!(dec.buf.len() < 16 * 1024, "consumed prefix must be compacted away");
    }
}
