//! The shadow-retraining loop: sample live served traffic into a bounded
//! replay buffer, re-train → re-tabularize in the background, and
//! promote the candidate through an A/B gate.
//!
//! Pipeline of one round ([`ShadowTrainer::run_once`]):
//!
//! ```text
//!   ReplaySampler (bounded ring of live accesses, fed by shard workers)
//!        │ snapshot, group per stream, build_dataset per stream
//!        ▼
//!   shuffled merge ──split──► train set        held-out set
//!        │                       │                  │
//!        │     train student (optionally teacher → distill), tabularize
//!        ▼                       ▼                  │
//!   candidate TabularModel ──evaluate_tabular_f1────┤
//!                                                   ▼
//!   A/B gate: candidate promotes IFF its held-out F1 beats the
//!   incumbent's on the SAME held-out live traffic (by > margin);
//!   otherwise the rejection is recorded and serving is untouched.
//! ```
//!
//! Everything is deterministic given the sampler contents and
//! [`ShadowConfig::seed`], which is what the gate tests pin down. The
//! background thread ([`ShadowTrainer::spawn`]) just runs `run_once` on
//! an interval, installing the runtime's shared work-stealing pool so
//! retraining kernels never spawn threads of their own.

use dart_telemetry::lockcheck::{named_mutex, Mutex};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};
use std::time::Duration;

use dart_core::config::TabularConfig;
use dart_core::distill::{distill, DistillConfig};
use dart_core::eval::evaluate_tabular_f1;
use dart_core::tabularize::tabularize;
use dart_core::TabularModel;
use dart_nn::init::InitRng;
use dart_nn::matrix::Matrix;
use dart_nn::model::{AccessPredictor, ModelConfig};
use dart_nn::train::{train_bce, Dataset, TrainConfig};
use dart_trace::{build_dataset, PreprocessConfig, TraceRecord};

use crate::registry::ModelRegistry;

/// One sampled access from the live serving path.
#[derive(Clone, Copy, Debug)]
pub struct ReplaySample {
    /// Stream the access belongs to (replay keeps per-stream order).
    pub stream_id: u64,
    /// Program counter of the access.
    pub pc: u64,
    /// Byte address of the access.
    pub addr: u64,
}

/// A bounded ring of live served accesses, shared between the shard
/// workers (one bulk push per served batch) and the shadow trainer
/// (snapshot per round). Oldest samples fall off the front — replay
/// always holds the freshest window of traffic.
pub struct ReplaySampler {
    inner: Mutex<VecDeque<ReplaySample>>,
    capacity: usize,
    /// Total accesses ever sampled (monotone) — the training-window
    /// coordinate system recorded in the registry.
    total: AtomicU64,
}

impl ReplaySampler {
    /// A sampler holding at most `capacity` samples (clamped ≥ 1).
    pub fn new(capacity: usize) -> ReplaySampler {
        ReplaySampler {
            inner: named_mutex("serve.replay", VecDeque::new()),
            capacity: capacity.max(1),
            total: AtomicU64::new(0),
        }
    }

    /// Append one served batch's accesses (arrival order preserved).
    pub fn push_batch(&self, samples: impl IntoIterator<Item = ReplaySample>) {
        let mut ring = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut pushed = 0u64;
        for s in samples {
            ring.push_back(s);
            pushed += 1;
        }
        while ring.len() > self.capacity {
            ring.pop_front();
        }
        drop(ring);
        // Relaxed: a monotone statistics counter — the ring mutex above
        // orders the samples themselves; nobody synchronizes on `total`.
        self.total.fetch_add(pushed, Ordering::Relaxed);
    }

    /// Samples currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// True when nothing has been sampled (or everything aged out).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total accesses ever sampled (monotone across ring evictions).
    pub fn total_sampled(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Copy out the resident window plus its `[start, end)` coordinates
    /// in total-sampled space (the registry's training window). Samples
    /// stay resident — the next round sees a superset, not a gap.
    pub fn snapshot(&self) -> (Vec<ReplaySample>, (u64, u64)) {
        let ring = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let samples: Vec<ReplaySample> = ring.iter().copied().collect();
        drop(ring);
        let end = self.total.load(Ordering::Relaxed);
        let start = end.saturating_sub(samples.len() as u64);
        (samples, (start, end))
    }
}

/// Shadow-retraining configuration. `pre` must match the serving
/// runtime's preprocessing (the candidate must be dimension-compatible
/// with the incumbent or [`crate::ServeRuntime::swap_model`] refuses it).
#[derive(Clone, Debug)]
pub struct ShadowConfig {
    /// Preprocessing used to build datasets from replayed accesses —
    /// the same config the serving runtime was started with.
    pub pre: PreprocessConfig,
    /// Architecture of the (re)trained student.
    pub student: ModelConfig,
    /// Student training-loop settings.
    pub train: TrainConfig,
    /// When set, a teacher of this architecture is trained on the replay
    /// window first and the student is **distilled** from it (the
    /// paper's pipeline); `None` trains the student directly with BCE
    /// (the "Stu w/o KD" shape — much cheaper, weaker).
    pub teacher: Option<(ModelConfig, DistillConfig)>,
    /// Tabularization settings for the candidate.
    pub tabular: TabularConfig,
    /// Minimum resident replay samples before a round will train.
    pub min_samples: usize,
    /// Fraction of the replay dataset held out for the A/B gate.
    pub holdout_frac: f32,
    /// The candidate must beat the incumbent's held-out F1 by more than
    /// this margin to promote (0.0 = any strict improvement).
    pub margin: f64,
    /// Dataset stride handed to `build_dataset` per stream.
    pub stride: usize,
    /// Seed for the train/holdout shuffle and the student/teacher init.
    pub seed: u64,
    /// Evaluation batch size for `evaluate_tabular_f1`.
    pub eval_batch: usize,
}

/// What one shadow round did.
#[derive(Clone, Debug, PartialEq)]
pub enum ShadowOutcome {
    /// Not enough replay yet (`resident < min_samples`), or the window
    /// produced no trainable samples; nothing was trained.
    NotEnoughSamples {
        /// Replay samples resident when the round gave up.
        resident: usize,
    },
    /// The candidate beat the incumbent and was published.
    Promoted {
        /// The new version id.
        version: u64,
        /// Candidate held-out F1.
        candidate_f1: f64,
        /// Incumbent held-out F1 it beat.
        incumbent_f1: f64,
    },
    /// The candidate did not beat the incumbent; serving untouched.
    Rejected {
        /// Candidate held-out F1.
        candidate_f1: f64,
        /// Incumbent held-out F1 it failed to beat.
        incumbent_f1: f64,
    },
}

/// The A/B gate, exposed on its own so tests (and operators promoting a
/// hand-built model) can drive it without a training round: evaluate
/// `candidate` and the incumbent on the same `holdout`, publish the
/// candidate IFF it wins by more than `margin`, record the rejection
/// otherwise.
pub fn gate_candidate(
    registry: &ModelRegistry,
    candidate: Arc<TabularModel>,
    holdout: &Dataset,
    margin: f64,
    provenance: &str,
    training_window: Option<(u64, u64)>,
    eval_batch: usize,
) -> ShadowOutcome {
    let candidate_f1 = evaluate_tabular_f1(&candidate, holdout, eval_batch);
    let (_, incumbent) = registry.active();
    let incumbent_f1 = evaluate_tabular_f1(&incumbent, holdout, eval_batch);
    if candidate_f1 > incumbent_f1 + margin {
        let version = registry.publish(candidate, provenance, training_window, Some(candidate_f1));
        ShadowOutcome::Promoted { version, candidate_f1, incumbent_f1 }
    } else {
        registry.record_rejection(provenance, candidate_f1, incumbent_f1);
        ShadowOutcome::Rejected { candidate_f1, incumbent_f1 }
    }
}

/// The shadow trainer: owns the retraining recipe; rounds are driven
/// either manually ([`Self::run_once`] — deterministic, what the tests
/// use) or by the background thread ([`Self::spawn`]).
pub struct ShadowTrainer {
    cfg: ShadowConfig,
    /// Round counter, stamped into each candidate's provenance.
    rounds: AtomicU64,
}

impl ShadowTrainer {
    /// Build a trainer with `cfg`.
    pub fn new(cfg: ShadowConfig) -> ShadowTrainer {
        ShadowTrainer { cfg, rounds: AtomicU64::new(0) }
    }

    /// The configuration this trainer runs with.
    pub fn config(&self) -> &ShadowConfig {
        &self.cfg
    }

    /// Run one complete shadow round: snapshot replay, build the
    /// dataset, train, tabularize, gate. Deterministic given the sampler
    /// contents and `cfg.seed`.
    pub fn run_once(&self, registry: &ModelRegistry, sampler: &ReplaySampler) -> ShadowOutcome {
        // Relaxed: provenance labels only; rounds are not synchronized on.
        let round = self.rounds.fetch_add(1, Ordering::Relaxed) + 1;
        let (samples, window) = sampler.snapshot();
        if samples.len() < self.cfg.min_samples.max(1) {
            return ShadowOutcome::NotEnoughSamples { resident: samples.len() };
        }
        let Some(data) = replay_to_dataset(&samples, &self.cfg.pre, self.cfg.stride, self.cfg.seed)
        else {
            return ShadowOutcome::NotEnoughSamples { resident: samples.len() };
        };
        let (train, holdout) = data.split(1.0 - self.cfg.holdout_frac.clamp(0.05, 0.95));
        if train.is_empty() || holdout.is_empty() {
            return ShadowOutcome::NotEnoughSamples { resident: samples.len() };
        }

        let student = match &self.cfg.teacher {
            Some((teacher_cfg, dcfg)) => {
                // The paper's full pipeline, on live traffic: fit the
                // teacher, then distill the serving-sized student.
                let mut teacher = AccessPredictor::new(teacher_cfg.clone(), self.cfg.seed ^ 0x7EAC)
                    .expect("valid shadow teacher config");
                train_bce(&mut teacher, &train, &self.cfg.train);
                distill(&mut teacher, self.cfg.student.clone(), &train, dcfg).0
            }
            None => {
                let mut student = AccessPredictor::new(self.cfg.student.clone(), self.cfg.seed)
                    .expect("valid shadow student config");
                train_bce(&mut student, &train, &self.cfg.train);
                student
            }
        };
        let (candidate, _report) = tabularize(&student, &train.inputs, &self.cfg.tabular);
        gate_candidate(
            registry,
            Arc::new(candidate),
            &holdout,
            self.cfg.margin,
            &format!("shadow-retrain round {round}"),
            Some(window),
            self.cfg.eval_batch.max(1),
        )
    }

    /// Spawn the background loop: every `interval`, run one round on
    /// `pool` (the runtime's shared work-stealing pool — retraining
    /// kernels help-wait there instead of spawning threads; `None` uses
    /// the process-global pool). Stop and join via
    /// [`ShadowHandle::stop`].
    pub fn spawn(
        self,
        registry: Arc<ModelRegistry>,
        sampler: Arc<ReplaySampler>,
        pool: Option<Arc<rayon::ThreadPool>>,
        interval: Duration,
    ) -> ShadowHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("dart-serve-shadow".to_string())
            .spawn(move || {
                let mut outcomes = Vec::new();
                loop {
                    // Sleep in short slices so stop() never waits a full
                    // interval; SeqCst is overkill-but-clear for a
                    // once-per-run flag off the hot path.
                    let mut slept = Duration::ZERO;
                    while slept < interval {
                        if stop_flag.load(Ordering::SeqCst) {
                            return outcomes;
                        }
                        let step = Duration::from_millis(20).min(interval - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                    if stop_flag.load(Ordering::SeqCst) {
                        return outcomes;
                    }
                    let outcome = match &pool {
                        Some(p) => p.install(|| self.run_once(&registry, &sampler)),
                        None => self.run_once(&registry, &sampler),
                    };
                    outcomes.push(outcome);
                }
            })
            .expect("spawn shadow trainer");
        ShadowHandle { stop, join: Some(join) }
    }
}

/// Handle to a running background shadow loop.
pub struct ShadowHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<Vec<ShadowOutcome>>>,
}

impl ShadowHandle {
    /// Flag the loop to stop, join it, and return every round's outcome
    /// (oldest first).
    pub fn stop(mut self) -> Vec<ShadowOutcome> {
        self.stop.store(true, Ordering::SeqCst);
        match self.join.take() {
            Some(h) => h.join().expect("shadow trainer panicked"),
            None => Vec::new(),
        }
    }
}

impl Drop for ShadowHandle {
    /// Dropping without [`Self::stop`] still stops and joins the thread
    /// (outcomes are discarded) — no leaked background trainer.
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.join.take() {
            let _ = h.join();
        }
    }
}

/// Turn a replay window into one training dataset: group samples per
/// stream (replay preserves arrival order, and per-stream order is the
/// only order that means anything to the feature pipeline), run
/// [`build_dataset`] on each stream's trace, then concatenate with a
/// seeded sample shuffle so the positional train/holdout split doesn't
/// put whole streams on one side. `None` when no stream is long enough
/// to produce a single labeled sample.
fn replay_to_dataset(
    samples: &[ReplaySample],
    pre: &PreprocessConfig,
    stride: usize,
    seed: u64,
) -> Option<Dataset> {
    let mut per_stream: HashMap<u64, Vec<TraceRecord>> = HashMap::new();
    for s in samples {
        let trace = per_stream.entry(s.stream_id).or_default();
        let instr_id = trace.len() as u64;
        trace.push(TraceRecord { instr_id, pc: s.pc, addr: s.addr });
    }
    // Deterministic iteration: HashMap order is arbitrary, so sort the
    // streams before building (the shuffle below is seeded too).
    let mut streams: Vec<(u64, Vec<TraceRecord>)> = per_stream.into_iter().collect();
    streams.sort_by_key(|(id, _)| *id);
    let parts: Vec<Dataset> = streams
        .iter()
        .map(|(_, trace)| build_dataset(trace, pre, stride.max(1)))
        .filter(|d| !d.is_empty())
        .collect();
    let merged = concat_datasets(&parts)?;
    // Seeded Fisher–Yates over sample indices, materialized via gather.
    let n = merged.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = InitRng::new(seed | 1);
    for i in (1..n).rev() {
        order.swap(i, rng.below(i + 1));
    }
    Some(merged.gather(&order))
}

/// Stack several datasets (same `seq_len` and dims) into one.
fn concat_datasets(parts: &[Dataset]) -> Option<Dataset> {
    let first = parts.first()?;
    let t = first.seq_len;
    let di = first.inputs.cols();
    let dout = first.targets.cols();
    let total: usize = parts.iter().map(Dataset::len).sum();
    if total == 0 {
        return None;
    }
    let mut inputs = Matrix::zeros(total * t, di);
    let mut targets = Matrix::zeros(total, dout);
    let mut at = 0usize;
    for part in parts {
        inputs.set_rows(at * t, &part.inputs);
        targets.set_rows(at, &part.targets);
        at += part.len();
    }
    Some(Dataset::new(inputs, targets, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_ring_is_bounded_and_tracks_totals() {
        let sampler = ReplaySampler::new(4);
        sampler.push_batch((0..6).map(|i| ReplaySample { stream_id: 1, pc: 0x400, addr: i << 6 }));
        assert_eq!(sampler.len(), 4, "ring must drop the oldest beyond capacity");
        assert_eq!(sampler.total_sampled(), 6);
        let (samples, window) = sampler.snapshot();
        assert_eq!(window, (2, 6));
        assert_eq!(samples[0].addr, 2 << 6, "oldest resident sample must be #2");
        // Snapshot keeps samples resident.
        assert_eq!(sampler.len(), 4);
    }

    #[test]
    fn replay_to_dataset_groups_streams_and_is_deterministic() {
        let pre = PreprocessConfig {
            seq_len: 4,
            addr_segments: 3,
            seg_bits: 4,
            pc_segments: 1,
            delta_range: 4,
            lookforward: 2,
        };
        // Two interleaved sequential streams, long enough to label.
        let mut samples = Vec::new();
        for i in 0..32u64 {
            for sid in [7u64, 9] {
                samples.push(ReplaySample {
                    stream_id: sid,
                    pc: 0x400,
                    addr: (sid * 1000 + i) << 6,
                });
            }
        }
        let a = replay_to_dataset(&samples, &pre, 1, 42).expect("datasets");
        let b = replay_to_dataset(&samples, &pre, 1, 42).expect("datasets");
        assert!(!a.is_empty());
        assert_eq!(a.inputs.as_slice(), b.inputs.as_slice(), "must be deterministic");
        assert_eq!(a.targets.as_slice(), b.targets.as_slice());
        // Too-short traces produce no dataset at all.
        assert!(replay_to_dataset(&samples[..4], &pre, 1, 42).is_none());
    }
}
