//! Vendored mini property-testing framework.
//!
//! The build environment has no registry access, so the real proptest cannot
//! be fetched. This crate re-implements the subset the workspace's tests
//! use: the `proptest!` macro, `ProptestConfig::with_cases`, range/bool/
//! tuple/`collection::vec` strategies, `.prop_map`, and the `prop_assert*`
//! macros. Generation is deterministic (SplitMix64 seeded per test case);
//! there is no shrinking — failures report the case index instead.

/// Deterministic generator state (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seeded RNG; each proptest case uses `case_seed(test_seed, index)`.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// How many cases a `proptest!` block runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Override the case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding both booleans.
    pub struct Any;

    /// The `proptest::bool::ANY` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds for [`vec`].
    pub struct SizeRange {
        min: usize,
        max: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports a proptest file expects.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Assert within a property; reports the failing case via panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Define deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_prop(x in 0u64..100, flag in proptest::bool::ANY) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr);) => {};
    (@cfg ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                // Mix the test name into the seed so sibling tests diverge.
                let name_hash = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                    });
                let mut rng = $crate::TestRng::new(name_hash ^ (case as u64) << 17);
                $(let $arg = ($strat).generate(&mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::new(2);
        let s = crate::collection::vec(0u32..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_expands(x in 0usize..10, pair in (0u64..5, crate::bool::ANY)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 5);
        }
    }
}
