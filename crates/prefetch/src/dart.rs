//! The DART prefetcher (paper Fig. 3): a history buffer feeding the
//! hierarchy-of-tables predictor, emitting one prefetch per delta-bitmap bit
//! above threshold (variable prefetch degree).

use std::collections::VecDeque;

use dart_core::config::PredictorConfig;
use dart_core::configurator::model_latency;
use dart_core::TabularModel;
use dart_nn::matrix::Matrix;
use dart_sim::{LlcAccess, Prefetcher};
use dart_trace::PreprocessConfig;

/// DART: table-based neural prefetching at rule-based-prefetcher cost.
pub struct DartPrefetcher {
    name: String,
    model: TabularModel,
    pre: PreprocessConfig,
    history: VecDeque<(u64, u64)>, // (block, pc)
    features: Matrix,
    threshold: f32,
    max_degree: usize,
    latency: u64,
}

impl DartPrefetcher {
    /// Wrap a tabular model. `predictor_cfg` supplies the Eq. 22 analytic
    /// latency (Table VIII); `threshold`/`max_degree` bound emissions.
    pub fn new(
        name: impl Into<String>,
        model: TabularModel,
        pre: PreprocessConfig,
        predictor_cfg: &PredictorConfig,
        threshold: f32,
        max_degree: usize,
    ) -> DartPrefetcher {
        let latency = model_latency(predictor_cfg);
        Self::with_latency(name, model, pre, latency, threshold, max_degree)
    }

    /// Explicit-latency constructor (used by ideal-variant ablations).
    pub fn with_latency(
        name: impl Into<String>,
        model: TabularModel,
        pre: PreprocessConfig,
        latency: u64,
        threshold: f32,
        max_degree: usize,
    ) -> DartPrefetcher {
        assert_eq!(model.config.seq_len, pre.seq_len, "seq_len mismatch");
        assert_eq!(model.config.input_dim, pre.input_dim(), "input dim mismatch");
        assert_eq!(model.config.output_dim, pre.output_dim(), "output dim mismatch");
        let features = Matrix::zeros(pre.seq_len, pre.input_dim());
        DartPrefetcher {
            name: name.into(),
            model,
            pre,
            history: VecDeque::with_capacity(pre.seq_len),
            features,
            threshold,
            max_degree: max_degree.max(1),
            latency,
        }
    }

    /// The wrapped tabular model.
    pub fn model(&self) -> &TabularModel {
        &self.model
    }
}

impl Prefetcher for DartPrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn latency(&self) -> u64 {
        self.latency
    }

    fn on_access(&mut self, access: &LlcAccess) -> Vec<u64> {
        if self.history.len() == self.pre.seq_len {
            self.history.pop_front();
        }
        self.history.push_back((access.block, access.pc));
        if self.history.len() < self.pre.seq_len {
            return Vec::new();
        }

        for (t, &(block, pc)) in self.history.iter().enumerate() {
            self.pre.write_token_features(block, pc, self.features.row_mut(t));
        }
        let probs = self.model.forward_probs(&self.features);

        // Rank bits above threshold, emit the strongest `max_degree` deltas
        // (the emission rule shared with `dart-serve`).
        let mut candidates = Vec::new();
        self.pre.decode_bitmap_into(
            probs.row(0),
            access.block,
            self.threshold,
            self.max_degree,
            &mut candidates,
        )
    }

    fn storage_bytes(&self) -> u64 {
        self.model.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dart_core::config::TabularConfig;
    use dart_core::tabularize::tabularize;
    use dart_nn::init::InitRng;
    use dart_nn::model::{AccessPredictor, ModelConfig};

    fn tiny_setup() -> (TabularModel, PreprocessConfig) {
        let pre = PreprocessConfig {
            seq_len: 4,
            addr_segments: 3,
            seg_bits: 4,
            pc_segments: 1,
            delta_range: 4,
            lookforward: 4,
        };
        let cfg = ModelConfig {
            input_dim: pre.input_dim(),
            dim: 8,
            heads: 2,
            layers: 1,
            ffn_dim: 16,
            output_dim: pre.output_dim(),
            seq_len: pre.seq_len,
        };
        let student = AccessPredictor::new(cfg, 3).unwrap();
        let mut rng = InitRng::new(9);
        let x = Matrix::from_fn(40 * 4, pre.input_dim(), |_, _| rng.next_f32());
        let tab_cfg = TabularConfig { k: 8, c: 2, fine_tune_epochs: 0, ..Default::default() };
        let (model, _) = tabularize(&student, &x, &tab_cfg);
        (model, pre)
    }

    fn access(seq: usize, block: u64) -> LlcAccess {
        LlcAccess {
            seq,
            instr_id: seq as u64 * 4,
            pc: 0x400100,
            addr: block << 6,
            block,
            hit: false,
        }
    }

    #[test]
    fn warms_up_before_predicting() {
        let (model, pre) = tiny_setup();
        let mut pf = DartPrefetcher::with_latency("DART", model, pre, 97, 0.0, 4);
        // First seq_len - 1 accesses: no prediction.
        for i in 0..3 {
            assert!(pf.on_access(&access(i, 100 + i as u64)).is_empty());
        }
        // With threshold 0 every bit qualifies; degree caps at 4.
        let out = pf.on_access(&access(3, 103));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn emissions_are_valid_deltas() {
        let (model, pre) = tiny_setup();
        let r = pre.delta_range as i64;
        let mut pf = DartPrefetcher::with_latency("DART", model, pre, 97, 0.0, 8);
        for i in 0..3 {
            let _ = pf.on_access(&access(i, 500 + i as u64));
        }
        let out = pf.on_access(&access(3, 503));
        for target in out {
            let delta = target as i64 - 503;
            assert!(delta != 0 && delta.abs() <= r, "delta {delta} out of range");
        }
    }

    #[test]
    fn threshold_one_silences_prefetcher() {
        let (model, pre) = tiny_setup();
        let mut pf = DartPrefetcher::with_latency("DART", model, pre, 97, 1.1, 4);
        for i in 0..10 {
            assert!(pf.on_access(&access(i, 100 + i as u64)).is_empty());
        }
    }

    #[test]
    fn latency_comes_from_configurator() {
        let (model, pre) = tiny_setup();
        let cfg = PredictorConfig::dart();
        let pf = DartPrefetcher::new("DART", model, pre, &cfg, 0.5, 4);
        assert_eq!(pf.latency(), model_latency(&cfg));
        assert!(pf.storage_bytes() > 0);
    }
}
