//! Fig. 10 — latency and storage vs. prototypes `K` and subspaces `C`
//! (analytic, Eq. 22–23): latency scales linearly with `log K` / `log C`
//! while storage grows exponentially.

use dart_bench::report::human_bytes;
use dart_bench::{print_table, record_json, Table};
use dart_core::config::PredictorConfig;
use dart_core::configurator::{model_latency, model_storage_bytes, ShapeParams};

fn main() {
    let shape = ShapeParams::default();
    let base = PredictorConfig::dart();

    let mut tk = Table::new(&["K", "Latency (cycles)", "Storage"]);
    let mut k_records = Vec::new();
    for k in [16usize, 32, 64, 128, 256, 512, 1024] {
        let cfg = PredictorConfig { k, ..base };
        let (lat, sto) = (model_latency(&cfg), model_storage_bytes(&cfg, &shape));
        tk.row(vec![k.to_string(), lat.to_string(), human_bytes(sto)]);
        k_records.push(serde_json::json!({"k": k, "latency": lat, "storage": sto}));
    }
    print_table("Fig. 10a: cost vs prototypes K (C = 2)", &tk);

    let mut tc = Table::new(&["C", "Latency (cycles)", "Storage"]);
    let mut c_records = Vec::new();
    for c in [1usize, 2, 4, 8] {
        let cfg = PredictorConfig { c, ..base };
        let (lat, sto) = (model_latency(&cfg), model_storage_bytes(&cfg, &shape));
        tc.row(vec![c.to_string(), lat.to_string(), human_bytes(sto)]);
        c_records.push(serde_json::json!({"c": c, "latency": lat, "storage": sto}));
    }
    print_table("Fig. 10b: cost vs subspaces C (K = 128)", &tc);

    println!(
        "\nShape check (paper): latency is linear in log(K) and log(C); storage is \
         exponential (attention tables are K^2 per subspace)."
    );
    record_json("fig10", &serde_json::json!({"vs_k": k_records, "vs_c": c_records}));
}
