//! SIMD dispatch for the tiled arena kernels (ROADMAP: "SIMD intrinsics
//! for the tiled arena kernels behind a feature flag").
//!
//! The flat code-major arenas (PR 2) put every hot inner loop over one
//! contiguous slice; this module vectorizes those loops **across the
//! width / output-lane dimension only**. Each output lane keeps the exact
//! per-lane operation sequence of the scalar tiles — same subspace
//! accumulation order, separate multiply and add (no FMA contraction), the
//! same `0.0 + t` first-pass initialization — so every SIMD kernel is
//! **bit-for-bit identical** to its scalar fallback. The differential
//! suites (`tests/integration_kernels_diff.rs`, the primitive proptests
//! below) hold with the `simd` feature on or off.
//!
//! ## Dispatch rules
//!
//! [`ops`] resolves one [`SimdOps`] table for the whole process and caches
//! it (`OnceLock`, first use — e.g. serve-runtime startup or the first
//! batched kernel call):
//!
//! * `simd` feature **off** (the default): the scalar table, always.
//! * `x86_64` + `simd`: AVX2 kernels when `is_x86_feature_detected!("avx2")`
//!   reports support at runtime, scalar otherwise — binaries built with the
//!   feature still run on pre-AVX2 hardware.
//! * `aarch64` + `simd`: NEON kernels (baseline on AArch64, re-checked via
//!   `is_aarch64_feature_detected!`).
//! * `DART_SIMD=off` (or `scalar`/`0`) forces the scalar table even when the
//!   feature is enabled — the debugging escape hatch. Any other value except
//!   `auto`/empty panics, matching the strict `DART_NUM_THREADS` parsing.
//!
//! [`scalar_ops`] always returns the scalar table: the row-at-a-time
//! reference paths (`query_row_into`, `encode_row`) and the
//! `*_scalar` batch twins are written against it so the differential
//! suites keep a true scalar reference even with the feature enabled.

pub mod scalar;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2;
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod neon;

use std::sync::OnceLock;

/// Which kernel family [`ops`] resolved to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar tiles (the mandatory fallback and reference).
    Scalar,
    /// 8-lane f32 AVX2 kernels (`std::arch::x86_64`).
    Avx2,
    /// 4-lane f32 NEON kernels (`std::arch::aarch64`).
    Neon,
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        })
    }
}

/// Signature of an argmin scan over a flat `K x dim` centroid block.
type NearestFlatFn = fn(&[f32], &[f32], usize) -> (usize, f32);

/// A resolved table of kernel primitives. The batch kernels fetch one table
/// per call ([`ops`] or [`scalar_ops`]) and run every inner loop through it,
/// so dispatch costs one indirect call per *slice*, not per element.
///
/// Contracts shared by all implementations (scalar semantics are
/// definitive; SIMD implementations must match them bit for bit):
///
/// * `init_row(dst, src)` — `dst[j] = 0.0 + src[j]` (NOT a copy: `0.0 + x`
///   normalizes `-0.0` to `+0.0` exactly like the scalar accumulators).
/// * `add_assign(dst, src)` — `dst[j] += src[j]`.
/// * `gather_init(dst, row, idx)` — `dst[j] = 0.0 + row[idx[j]]`.
/// * `gather_add(dst, row, idx)` — `dst[j] += row[idx[j]]`.
/// * `nearest_flat(point, centroids, dim)` — index + squared distance of
///   the nearest row of a flat `K x dim` block, scanning rows in order
///   with strict `<` (first minimum wins) and per-row accumulation order
///   `d = 0, 1, …` — [`crate::kmeans::nearest_centroid_flat`] exactly.
/// * `i8_scale_add(dst, src, scale)` — `dst[j] += src[j] as f32 * scale`.
pub struct SimdOps {
    level: SimdLevel,
    init_row: fn(&mut [f32], &[f32]),
    add_assign: fn(&mut [f32], &[f32]),
    gather_init: fn(&mut [f32], &[f32], &[i32]),
    gather_add: fn(&mut [f32], &[f32], &[i32]),
    nearest_flat: NearestFlatFn,
    i8_scale_add: fn(&mut [f32], &[i8], f32),
}

impl SimdOps {
    /// The kernel family this table dispatches to.
    #[inline]
    pub fn level(&self) -> SimdLevel {
        self.level
    }

    // The length checks below are release-mode asserts, not debug_asserts:
    // these methods are the public safe boundary in front of kernels that
    // use unchecked vector loads, so a mismatched pair must panic — never
    // read out of bounds — in every build profile. One compare per *slice*
    // call is noise next to the per-element work behind it.

    /// `dst[j] = 0.0 + src[j]` over equal-length slices.
    #[inline]
    pub fn init_row(&self, dst: &mut [f32], src: &[f32]) {
        assert_eq!(dst.len(), src.len(), "init_row slice length mismatch");
        (self.init_row)(dst, src)
    }

    /// `dst[j] += src[j]` over equal-length slices.
    #[inline]
    pub fn add_assign(&self, dst: &mut [f32], src: &[f32]) {
        assert_eq!(dst.len(), src.len(), "add_assign slice length mismatch");
        (self.add_assign)(dst, src)
    }

    /// `dst[j] = 0.0 + row[idx[j]]`; every index must be within `row`
    /// (enforced by the implementations — the AVX2 hardware gather
    /// validates up front, the scalar/NEON lane loads are bounds-checked).
    #[inline]
    pub fn gather_init(&self, dst: &mut [f32], row: &[f32], idx: &[i32]) {
        assert_eq!(dst.len(), idx.len(), "gather_init index length mismatch");
        (self.gather_init)(dst, row, idx)
    }

    /// `dst[j] += row[idx[j]]`; same index contract as [`Self::gather_init`].
    #[inline]
    pub fn gather_add(&self, dst: &mut [f32], row: &[f32], idx: &[i32]) {
        assert_eq!(dst.len(), idx.len(), "gather_add index length mismatch");
        (self.gather_add)(dst, row, idx)
    }

    /// Nearest row of a flat `K x dim` centroid block (see struct docs).
    #[inline]
    pub fn nearest_flat(&self, point: &[f32], centroids: &[f32], dim: usize) -> (usize, f32) {
        assert!(dim > 0, "nearest_flat over zero-dim subspace");
        assert_eq!(point.len(), dim, "nearest_flat point length mismatch");
        assert_eq!(centroids.len() % dim, 0, "nearest_flat ragged centroid block");
        (self.nearest_flat)(point, centroids, dim)
    }

    /// `dst[j] += src[j] as f32 * scale` over equal-length slices.
    #[inline]
    pub fn i8_scale_add(&self, dst: &mut [f32], src: &[i8], scale: f32) {
        assert_eq!(dst.len(), src.len(), "i8_scale_add slice length mismatch");
        (self.i8_scale_add)(dst, src, scale)
    }
}

static SCALAR_OPS: SimdOps = SimdOps {
    level: SimdLevel::Scalar,
    init_row: scalar::init_row,
    add_assign: scalar::add_assign,
    gather_init: scalar::gather_init,
    gather_add: scalar::gather_add,
    nearest_flat: scalar::nearest_flat,
    i8_scale_add: scalar::i8_scale_add,
};

/// The scalar kernel table — the mandatory fallback and the reference the
/// differential suites compare against. Always available, feature or not.
#[inline]
pub fn scalar_ops() -> &'static SimdOps {
    &SCALAR_OPS
}

/// The process-wide dispatched kernel table: detected once on first use
/// (see module docs for the rules) and cached for every later call.
#[inline]
pub fn ops() -> &'static SimdOps {
    static OPS: OnceLock<&'static SimdOps> = OnceLock::new();
    OPS.get_or_init(detect)
}

/// The kernel family the process-wide dispatch resolved to (for benchmark
/// and startup banners).
pub fn active_level() -> SimdLevel {
    ops().level()
}

/// `DART_SIMD` override: `true` = forced scalar. Empty/`auto` = autodetect;
/// anything else is a hard error (same strictness as `DART_NUM_THREADS`).
fn forced_scalar() -> bool {
    match std::env::var("DART_SIMD") {
        Err(_) => false,
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => false,
            "off" | "scalar" | "0" => true,
            other => panic!("DART_SIMD must be `auto`, `off`, `scalar`, or `0`, got `{other}`"),
        },
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn detect() -> &'static SimdOps {
    static AVX2_OPS: SimdOps = SimdOps {
        level: SimdLevel::Avx2,
        init_row: avx2::init_row,
        add_assign: avx2::add_assign,
        gather_init: avx2::gather_init,
        gather_add: avx2::gather_add,
        nearest_flat: avx2::nearest_flat,
        i8_scale_add: avx2::i8_scale_add,
    };
    if !forced_scalar() && std::arch::is_x86_feature_detected!("avx2") {
        &AVX2_OPS
    } else {
        &SCALAR_OPS
    }
}

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
fn detect() -> &'static SimdOps {
    static NEON_OPS: SimdOps = SimdOps {
        level: SimdLevel::Neon,
        init_row: neon::init_row,
        add_assign: neon::add_assign,
        gather_init: neon::gather_init,
        gather_add: neon::gather_add,
        // No gather instruction pays for a vectorized argmin scan on NEON;
        // the distance loop stays on the scalar reference there.
        nearest_flat: scalar::nearest_flat,
        i8_scale_add: neon::i8_scale_add,
    };
    if !forced_scalar() && std::arch::is_aarch64_feature_detected!("neon") {
        &NEON_OPS
    } else {
        &SCALAR_OPS
    }
}

#[cfg(not(all(feature = "simd", any(target_arch = "x86_64", target_arch = "aarch64"))))]
fn detect() -> &'static SimdOps {
    // Still honor (and validate) the env override so behavior is uniform.
    let _ = forced_scalar();
    &SCALAR_OPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic pseudo-random f32 including negative zero and large
    /// magnitudes (bit-exactness must not depend on "nice" values).
    fn val(seed: u64, i: usize) -> f32 {
        let h = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let m = (h >> 40) as i32 - (1 << 23);
        match h % 37 {
            0 => -0.0,
            1 => 0.0,
            _ => m as f32 * 1.73e-3,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every dispatched primitive is bit-identical to the scalar table
        /// at every slice length (covering sub-lane, exact-lane, and
        /// non-multiple-of-lane widths for both 8-lane AVX2 and 4-lane
        /// NEON).
        #[test]
        fn dispatched_primitives_match_scalar(seed in 0u64..10_000, n in 0usize..41) {
            let d = ops();
            let s = scalar_ops();
            let src: Vec<f32> = (0..n).map(|i| val(seed, i)).collect();
            let acc: Vec<f32> = (0..n).map(|i| val(seed ^ 0xACC, i)).collect();

            let mut a = acc.clone();
            let mut b = acc.clone();
            d.init_row(&mut a, &src);
            s.init_row(&mut b, &src);
            prop_assert_eq!(bits(&a), bits(&b), "init_row");

            let mut a = acc.clone();
            let mut b = acc.clone();
            d.add_assign(&mut a, &src);
            s.add_assign(&mut b, &src);
            prop_assert_eq!(bits(&a), bits(&b), "add_assign");

            // Gather from a 64-entry table with wrapped indices.
            let row: Vec<f32> = (0..64).map(|i| val(seed ^ 0x70, i)).collect();
            let idx: Vec<i32> = (0..n).map(|i| ((seed as usize + i * 7) % 64) as i32).collect();
            let mut a = acc.clone();
            let mut b = acc.clone();
            d.gather_init(&mut a, &row, &idx);
            s.gather_init(&mut b, &row, &idx);
            prop_assert_eq!(bits(&a), bits(&b), "gather_init");

            let mut a = acc.clone();
            let mut b = acc.clone();
            d.gather_add(&mut a, &row, &idx);
            s.gather_add(&mut b, &row, &idx);
            prop_assert_eq!(bits(&a), bits(&b), "gather_add");

            let mut a = acc.clone();
            let mut b = acc;
            let i8s: Vec<i8> = (0..n).map(|i| (val(seed ^ 0x18, i) as i64 % 128) as i8).collect();
            let scale = val(seed ^ 0x5C, 0).abs().max(1e-6);
            d.i8_scale_add(&mut a, &i8s, scale);
            s.i8_scale_add(&mut b, &i8s, scale);
            prop_assert_eq!(bits(&a), bits(&b), "i8_scale_add");
        }

        /// Dispatched argmin matches the scalar scan exactly — same index
        /// (first-minimum tie-break included) and same distance bits — for
        /// centroid counts straddling the 8-lane AVX2 block.
        #[test]
        fn dispatched_nearest_flat_matches_scalar(
            seed in 0u64..10_000,
            k in 1usize..21,
            dim in 1usize..9,
            dup in proptest::bool::ANY,
        ) {
            let mut cents: Vec<f32> = (0..k * dim).map(|i| val(seed, i)).collect();
            if dup && k > 1 {
                // Force exact duplicate rows so the first-wins tie-break is
                // actually exercised.
                let (head, tail) = cents.split_at_mut(dim);
                tail[(k - 2) * dim..].copy_from_slice(head);
            }
            let point: Vec<f32> = (0..dim).map(|i| val(seed ^ 0xF0, i)).collect();
            let (di, dd) = ops().nearest_flat(&point, &cents, dim);
            let (si, sd) = scalar_ops().nearest_flat(&point, &cents, dim);
            prop_assert_eq!(di, si, "argmin index");
            prop_assert_eq!(dd.to_bits(), sd.to_bits(), "argmin distance bits");
        }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|f| f.to_bits()).collect()
    }

    #[test]
    fn scalar_table_reports_scalar_level() {
        assert_eq!(scalar_ops().level(), SimdLevel::Scalar);
    }

    #[cfg(not(feature = "simd"))]
    #[test]
    fn feature_off_dispatches_scalar() {
        assert_eq!(ops().level(), SimdLevel::Scalar);
        assert!(std::ptr::eq(ops(), scalar_ops()));
    }

    /// With the feature on, the AVX2 kernels are exercised directly
    /// (bypassing the cached dispatch, which `DART_SIMD=off` may have
    /// pinned to scalar) whenever the host supports them.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn avx2_kernels_match_scalar_directly() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            eprintln!("skipping: host has no AVX2");
            return;
        }
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 33] {
            let src: Vec<f32> = (0..n).map(|i| val(0xA5, i)).collect();
            let acc: Vec<f32> = (0..n).map(|i| val(0x5A, i)).collect();
            let row: Vec<f32> = (0..40).map(|i| val(0x70, i)).collect();
            let idx: Vec<i32> = (0..n).map(|i| ((i * 11) % 40) as i32).collect();
            let i8s: Vec<i8> = (0..n).map(|i| (i as i8).wrapping_mul(37)).collect();

            let mut a = acc.clone();
            let mut b = acc.clone();
            avx2::init_row(&mut a, &src);
            scalar::init_row(&mut b, &src);
            assert_eq!(bits(&a), bits(&b), "init_row n={n}");

            let mut a = acc.clone();
            let mut b = acc.clone();
            avx2::add_assign(&mut a, &src);
            scalar::add_assign(&mut b, &src);
            assert_eq!(bits(&a), bits(&b), "add_assign n={n}");

            let mut a = acc.clone();
            let mut b = acc.clone();
            avx2::gather_init(&mut a, &row, &idx);
            scalar::gather_init(&mut b, &row, &idx);
            assert_eq!(bits(&a), bits(&b), "gather_init n={n}");

            let mut a = acc.clone();
            let mut b = acc.clone();
            avx2::gather_add(&mut a, &row, &idx);
            scalar::gather_add(&mut b, &row, &idx);
            assert_eq!(bits(&a), bits(&b), "gather_add n={n}");

            let mut a = acc.clone();
            let mut b = acc.clone();
            avx2::i8_scale_add(&mut a, &i8s, 0.0173);
            scalar::i8_scale_add(&mut b, &i8s, 0.0173);
            assert_eq!(bits(&a), bits(&b), "i8_scale_add n={n}");

            if n > 0 {
                let dim = 5usize;
                let cents: Vec<f32> = (0..n * dim).map(|i| val(0xCE, i)).collect();
                let point: Vec<f32> = (0..dim).map(|i| val(0xBD, i)).collect();
                let got = avx2::nearest_flat(&point, &cents, dim);
                let want = scalar::nearest_flat(&point, &cents, dim);
                assert_eq!(got.0, want.0, "argmin index k={n}");
                assert_eq!(got.1.to_bits(), want.1.to_bits(), "argmin bits k={n}");
            }
        }
    }
}
