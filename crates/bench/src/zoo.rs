//! Scale-dependent model-zoo construction: teacher, students, DART tables,
//! and the Voyager-like LSTM, per workload.

use dart_core::config::{PredictorConfig, TabularConfig};
use dart_core::pipeline::{run_pipeline, PipelineArtifacts, PipelineConfig};
use dart_core::DistillConfig;
use dart_nn::model::{LstmConfig, LstmPredictor, ModelConfig};
use dart_nn::optim::AdamConfig;
use dart_nn::train::{train_bce, TrainConfig};
use dart_trace::PreprocessConfig;

use crate::context::{PreparedWorkload, Scale};

/// Teacher architecture at a given scale.
pub fn teacher_config(scale: Scale, pre: &PreprocessConfig) -> ModelConfig {
    match scale {
        Scale::Quick => ModelConfig {
            input_dim: pre.input_dim(),
            dim: 64,
            heads: 4,
            layers: 2,
            ffn_dim: 256,
            output_dim: pre.output_dim(),
            seq_len: pre.seq_len,
        },
        Scale::Full => ModelConfig::teacher(pre.input_dim(), pre.output_dim(), pre.seq_len),
    }
}

/// Student architecture for a DART variant.
pub fn student_config(variant: &PredictorConfig, pre: &PreprocessConfig) -> ModelConfig {
    variant.to_model_config(pre.input_dim(), pre.output_dim(), pre.seq_len)
}

/// Training loop settings at a given scale.
pub fn train_config(scale: Scale, epochs_quick: usize, epochs_full: usize) -> TrainConfig {
    let epochs = match scale {
        Scale::Quick => epochs_quick,
        Scale::Full => epochs_full,
    };
    TrainConfig {
        epochs,
        batch_size: 64,
        adam: AdamConfig { lr: 1e-3, ..Default::default() },
        seed: 0xBEEF,
        verbose: false,
        ..Default::default()
    }
}

/// Tabularization settings for a DART variant at a given scale.
pub fn tabular_config(scale: Scale, variant: &PredictorConfig) -> TabularConfig {
    let mut cfg = TabularConfig::from_predictor(variant);
    cfg.fine_tune_epochs = match scale {
        Scale::Quick => 4,
        Scale::Full => 8,
    };
    cfg
}

/// The pipeline configuration for one DART variant.
pub fn pipeline_config(
    scale: Scale,
    pre: &PreprocessConfig,
    variant: &PredictorConfig,
    with_no_kd: bool,
) -> PipelineConfig {
    PipelineConfig {
        teacher: teacher_config(scale, pre),
        student: student_config(variant, pre),
        teacher_train: train_config(scale, 3, 8),
        distill: DistillConfig { train: train_config(scale, 5, 12), ..Default::default() },
        tabular: tabular_config(scale, variant),
        train_student_without_kd: with_no_kd,
        seed: 0x7EAC,
    }
}

/// Run the full pipeline for one workload and DART variant.
pub fn train_dart(
    prepared: &PreparedWorkload,
    pre: &PreprocessConfig,
    scale: Scale,
    variant: &PredictorConfig,
    with_no_kd: bool,
) -> PipelineArtifacts {
    let cfg = pipeline_config(scale, pre, variant, with_no_kd);
    run_pipeline(&prepared.train, &prepared.test, &cfg)
}

/// The three DART variants of Table VIII.
pub fn dart_variants() -> Vec<(&'static str, PredictorConfig)> {
    vec![
        ("DART-S", PredictorConfig::dart_s()),
        ("DART", PredictorConfig::dart()),
        ("DART-L", PredictorConfig::dart_l()),
    ]
}

/// Train the Voyager-like LSTM predictor on a prepared workload.
pub fn train_voyager(
    prepared: &PreparedWorkload,
    pre: &PreprocessConfig,
    scale: Scale,
) -> LstmPredictor {
    let hidden = match scale {
        Scale::Quick => 32,
        Scale::Full => 128,
    };
    let cfg = LstmConfig {
        input_dim: pre.input_dim(),
        hidden,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let mut model = LstmPredictor::new(cfg, 0x70A6).expect("valid LSTM config");
    let tcfg = train_config(scale, 3, 8);
    train_bce(&mut model, &prepared.train, &tcfg);
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_valid() {
        let pre = Scale::Quick.preprocess();
        assert!(teacher_config(Scale::Quick, &pre).validate().is_ok());
        assert!(teacher_config(Scale::Full, &PreprocessConfig::default()).validate().is_ok());
        for (_, v) in dart_variants() {
            assert!(student_config(&v, &pre).validate().is_ok());
        }
    }

    #[test]
    fn variants_match_table_viii() {
        let v = dart_variants();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].1, PredictorConfig::dart_s());
        assert_eq!(v[1].1, PredictorConfig::dart());
        assert_eq!(v[2].1, PredictorConfig::dart_l());
    }
}
