//! # dart-telemetry — live observability for the DART serving stack
//!
//! The paper's claim is a *serving-latency budget*; a budget you can only
//! check after shutdown is not a budget. This crate is the measurement
//! substrate the runtime reports through **while it serves**:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic metric cells, cheap enough
//!   to sit on kernel entry points and queue hot paths.
//! * [`Histogram`] — the log2-bucketed latency histogram (promoted out of
//!   `dart-serve`'s shard internals): O(1) memory, mergeable,
//!   percentile/mean queries. [`AtomicHistogram`] is its shareable twin
//!   with atomic-bucket recording for concurrent writers.
//! * [`MetricsRegistry`] — a process-wide (or per-component) registry of
//!   named cells with a Prometheus-style plaintext [`MetricsRegistry::render`].
//! * [`Exposition`] — the shared plaintext formatter (`# HELP`/`# TYPE`
//!   lines, label escaping, cumulative histogram buckets) used by the
//!   registry and by `dart-serve`'s `ServeStats` exposition.
//! * [`SpanRing`] / [`SpanRecord`] — a bounded ring buffer of recent
//!   request-lifecycle spans (queue-wait → coalesce → kernel → sink) for
//!   debugging latency outliers without unbounded memory.
//! * [`lockcheck`] — the serving stack's mutex facade: `std::sync`
//!   re-exports by default, order-tracked mutexes that panic on
//!   lock-order cycles under the `lockcheck` cargo feature.
//!
//! Everything here is std-only and allocation-free on the record paths;
//! the only locks are in the registry's *registration* path and the span
//! ring (both off the per-request hot path).

pub mod cell;
pub mod expo;
pub mod hist;
pub mod lockcheck;
pub mod registry;
pub mod span;

pub use cell::{Counter, Gauge};
pub use expo::{Exposition, MetricKind};
pub use hist::{AtomicHistogram, Histogram, BUCKETS};
pub use registry::{global, MetricsRegistry};
pub use span::{SpanRecord, SpanRing};
