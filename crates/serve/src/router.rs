//! Stream-to-shard routing.

/// Routes stream ids to shards by hash, so a stream's history state lives on
/// exactly one shard (thread-local, no cross-shard locking) and per-stream
/// request order is preserved.
#[derive(Clone, Copy, Debug)]
pub struct StreamRouter {
    shards: usize,
}

impl StreamRouter {
    /// Router over `shards` shards (`shards >= 1`).
    pub fn new(shards: usize) -> StreamRouter {
        assert!(shards >= 1, "need at least one shard");
        StreamRouter { shards }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `stream_id`.
    ///
    /// Uses a SplitMix64 finalizer so adjacent stream ids spread across
    /// shards instead of landing modulo-adjacent.
    pub fn shard_of(&self, stream_id: u64) -> usize {
        let mut z = stream_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let router = StreamRouter::new(4);
        for id in 0..1000u64 {
            let s = router.shard_of(id);
            assert!(s < 4);
            assert_eq!(s, router.shard_of(id));
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let router = StreamRouter::new(1);
        for id in [0u64, 7, u64::MAX] {
            assert_eq!(router.shard_of(id), 0);
        }
    }

    #[test]
    fn spreads_sequential_ids() {
        let router = StreamRouter::new(8);
        let mut counts = [0usize; 8];
        for id in 0..800u64 {
            counts[router.shard_of(id)] += 1;
        }
        // Every shard should see a healthy share of 800 sequential ids.
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 40, "shard {s} starved: {c}/800");
        }
    }
}
