//! The LLC prefetcher interface and the latency-modeling prefetch queue.

use std::collections::VecDeque;

/// One LLC demand access as seen by a prefetcher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LlcAccess {
    /// Index of this access in the LLC demand stream (0-based). NN-based
    /// prefetchers use it to look up batch-precomputed predictions.
    pub seq: usize,
    /// Retired-instruction index.
    pub instr_id: u64,
    /// Program counter of the triggering load.
    pub pc: u64,
    /// Byte address.
    pub addr: u64,
    /// Cache-block address (`addr >> 6`).
    pub block: u64,
    /// Whether the access hit in the LLC.
    pub hit: bool,
}

/// An LLC prefetcher. Implementations live in `dart-prefetch`.
pub trait Prefetcher {
    /// Display name (used in experiment tables).
    fn name(&self) -> &str;

    /// Inference latency in cycles: prefetches become visible to the memory
    /// system this long after the triggering access.
    fn latency(&self) -> u64;

    /// Observe an LLC demand access and optionally emit block addresses to
    /// prefetch.
    fn on_access(&mut self, access: &LlcAccess) -> Vec<u64>;

    /// Metadata/table storage of the prefetcher, in bytes.
    fn storage_bytes(&self) -> u64 {
        0
    }
}

/// The no-op baseline prefetcher.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullPrefetcher;

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &str {
        "none"
    }

    fn latency(&self) -> u64 {
        0
    }

    fn on_access(&mut self, _access: &LlcAccess) -> Vec<u64> {
        Vec::new()
    }
}

/// A prefetch waiting for its predictor to "finish inference".
#[derive(Clone, Copy, Debug)]
pub struct PendingPrefetch {
    /// Block to prefetch.
    pub block: u64,
    /// Cycle at which the request may be issued to the memory system.
    pub ready_at: u64,
}

/// FIFO of prefetches delayed by inference latency.
///
/// `push` stamps requests with `now + latency`; `pop_ready` releases those
/// whose stamp has passed. A bounded capacity models the prefetch queue of a
/// real controller — overflow drops the oldest entries (counted).
#[derive(Clone, Debug)]
pub struct PrefetchQueue {
    queue: VecDeque<PendingPrefetch>,
    capacity: usize,
    /// Requests dropped due to queue overflow.
    pub dropped_overflow: u64,
}

impl PrefetchQueue {
    /// New queue holding at most `capacity` pending prefetches.
    pub fn new(capacity: usize) -> PrefetchQueue {
        PrefetchQueue { queue: VecDeque::new(), capacity: capacity.max(1), dropped_overflow: 0 }
    }

    /// Enqueue a prediction made at `now` by a predictor with `latency`.
    pub fn push(&mut self, block: u64, now: u64, latency: u64) {
        if self.queue.len() == self.capacity {
            self.queue.pop_front();
            self.dropped_overflow += 1;
        }
        self.queue.push_back(PendingPrefetch { block, ready_at: now + latency });
    }

    /// Remove and return all requests ready at `now` (FIFO order).
    pub fn pop_ready(&mut self, now: u64) -> Vec<PendingPrefetch> {
        let mut out = Vec::new();
        while let Some(front) = self.queue.front() {
            if front.ready_at <= now {
                out.push(self.queue.pop_front().unwrap());
            } else {
                break;
            }
        }
        out
    }

    /// Pending request count.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_respects_latency() {
        let mut q = PrefetchQueue::new(8);
        q.push(100, 1000, 50);
        assert!(q.pop_ready(1049).is_empty());
        let ready = q.pop_ready(1050);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].block, 100);
    }

    #[test]
    fn queue_preserves_fifo_order() {
        let mut q = PrefetchQueue::new(8);
        q.push(1, 0, 10);
        q.push(2, 1, 10);
        q.push(3, 2, 10);
        let ready = q.pop_ready(100);
        let blocks: Vec<u64> = ready.iter().map(|p| p.block).collect();
        assert_eq!(blocks, vec![1, 2, 3]);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut q = PrefetchQueue::new(2);
        q.push(1, 0, 0);
        q.push(2, 0, 0);
        q.push(3, 0, 0);
        assert_eq!(q.dropped_overflow, 1);
        let blocks: Vec<u64> = q.pop_ready(0).iter().map(|p| p.block).collect();
        assert_eq!(blocks, vec![2, 3]);
    }

    #[test]
    fn partial_release() {
        let mut q = PrefetchQueue::new(8);
        q.push(1, 0, 10); // ready at 10
        q.push(2, 0, 90); // ready at 90
        let first = q.pop_ready(50);
        assert_eq!(first.len(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn null_prefetcher_is_silent() {
        let mut p = NullPrefetcher;
        let acc = LlcAccess { seq: 0, instr_id: 0, pc: 0, addr: 0, block: 0, hit: false };
        assert!(p.on_access(&acc).is_empty());
        assert_eq!(p.latency(), 0);
        assert_eq!(p.storage_bytes(), 0);
    }
}
