//! Request/response types of the serving runtime.

use serde::{Deserialize, Serialize};

/// Cache-block shift (64-byte blocks), re-exported from `dart-core` —
/// the same definition `dart-trace` preprocessing uses, so the serving
/// path's block arithmetic cannot drift from the training labels (it
/// used to be a duplicated constant tied to trace only by a comment).
pub use dart_core::BLOCK_BITS;

/// One memory access from one client stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchRequest {
    /// Client stream identifier (e.g. a hardware context or user session).
    pub stream_id: u64,
    /// Program counter of the access.
    pub pc: u64,
    /// Byte address of the access.
    pub addr: u64,
}

impl PrefetchRequest {
    /// Cache-block address (`addr >> 6`).
    pub fn block(&self) -> u64 {
        self.addr >> BLOCK_BITS
    }
}

/// The runtime's answer to one request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PrefetchResponse {
    /// Stream the prediction belongs to.
    pub stream_id: u64,
    /// Per-stream sequence number (0-based, contiguous): response `i` is
    /// the answer to the stream's `i`-th submitted request.
    pub seq: u64,
    /// Shard that served the request (for misrouting checks).
    pub shard: usize,
    /// Predicted prefetch targets as block addresses. Empty while the
    /// stream's history is still shorter than the model's sequence length,
    /// or when no bitmap bit clears the threshold.
    pub prefetch_blocks: Vec<u64>,
    /// Queue + inference latency observed by the runtime, in nanoseconds.
    pub latency_ns: u64,
    /// `None` for a normally served request. `Some(reason)` when the
    /// runtime **failed** the request instead of predicting it: its shard
    /// worker panicked while serving the batch, the request was still
    /// queued when the worker died or the queue shut down, or it was
    /// submitted to a shard that had already died. Failed responses carry
    /// no prefetches and `seq == u64::MAX` (the per-stream sequence number
    /// is assigned during serving, which never happened).
    pub error: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_shifts_address() {
        let req = PrefetchRequest { stream_id: 1, pc: 0x400, addr: 0x1000 };
        assert_eq!(req.block(), 0x1000 >> 6);
    }
}
