//! Prefetcher shootout: BO vs ISB vs DART on one synthetic workload,
//! reporting accuracy, coverage, and IPC improvement.
//!
//! ```sh
//! cargo run --release --example prefetcher_shootout [workload]
//! # workload: bwaves | milc | leslie3d | libquantum | gcc | mcf | lbm | wrf
//! ```

use dart::core::config::{PredictorConfig, TabularConfig};
use dart::core::pipeline::{run_pipeline, PipelineConfig};
use dart::core::DistillConfig;
use dart::nn::train::TrainConfig;
use dart::prefetch::{BestOffset, DartPrefetcher, Isb};
use dart::sim::{NullPrefetcher, Prefetcher, SimConfig, Simulator};
use dart::trace::{build_dataset, workload_by_name, PreprocessConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "libquantum".into());
    let workload = workload_by_name(&name).expect("unknown workload; try e.g. `mcf`");
    println!("workload: {}", workload.name);

    let trace = workload.generate(30_000, 1);
    let sim = Simulator::new(SimConfig::table_iii());
    let base = sim.run(&trace, &mut NullPrefetcher, true);
    let llc = base.llc_trace.clone().unwrap();

    // Train a DART predictor on the first 60% of the LLC stream.
    let pre = PreprocessConfig {
        seq_len: 8,
        addr_segments: 5,
        seg_bits: 6,
        pc_segments: 1,
        delta_range: 32,
        lookforward: 20,
    };
    let split = llc.len() * 6 / 10;
    let train = build_dataset(&llc[..split], &pre, 4);
    let test = build_dataset(&llc[split..], &pre, 4);
    let variant = PredictorConfig::dart();
    let cfg = PipelineConfig {
        teacher: dart::nn::model::ModelConfig {
            input_dim: pre.input_dim(),
            dim: 64,
            heads: 4,
            layers: 2,
            ffn_dim: 256,
            output_dim: pre.output_dim(),
            seq_len: pre.seq_len,
        },
        student: variant.to_model_config(pre.input_dim(), pre.output_dim(), pre.seq_len),
        teacher_train: TrainConfig { epochs: 3, ..Default::default() },
        distill: DistillConfig {
            train: TrainConfig { epochs: 5, ..Default::default() },
            ..Default::default()
        },
        tabular: TabularConfig::from_predictor(&variant),
        train_student_without_kd: false,
        seed: 3,
    };
    eprintln!("training DART (teacher -> student -> tables)...");
    let artifacts = run_pipeline(&train, &test, &cfg);
    eprintln!("DART F1 on held-out stream: {:.3}", artifacts.f1.dart);

    let mut dart_pf = DartPrefetcher::new("DART", artifacts.tabular, pre, &variant, 0.5, 8);
    let mut bo = BestOffset::new();
    let mut isb = Isb::new();

    println!(
        "\n{:<6} {:>9} {:>9} {:>8} {:>10} {:>9}",
        "pf", "accuracy", "coverage", "IPC+%", "storage", "latency"
    );
    let report = |name: &str, pf: &mut dyn Prefetcher| {
        let r = sim.run(&trace, pf, false);
        println!(
            "{:<6} {:>8.1}% {:>8.1}% {:>7.1}% {:>10} {:>9}",
            name,
            r.prefetch_accuracy() * 100.0,
            r.prefetch_coverage() * 100.0,
            r.ipc_improvement_pct(&base),
            pf.storage_bytes(),
            pf.latency(),
        );
    };
    report("BO", &mut bo);
    report("ISB", &mut isb);
    report("DART", &mut dart_pf);
}
