//! Table VII — F1 of the tabularized predictor with and without layer
//! fine-tuning, per workload (plus the student reference).

use dart_bench::zoo::{tabular_config, train_dart};
use dart_bench::{print_table, record_json, ExperimentContext, Table};
use dart_core::config::PredictorConfig;
use dart_core::eval::evaluate_tabular_f1;
use dart_core::tabularize::tabularize;
use dart_trace::spec_workloads;

/// Paper Table VII: (app, DART w/o FT, DART).
const PAPER: [(&str, f64, f64); 8] = [
    ("410.bwaves", 0.679, 0.790),
    ("433.milc", 0.416, 0.480),
    ("437.leslie3d", 0.541, 0.544),
    ("462.libquantum", 0.991, 0.991),
    ("602.gcc", 0.946, 0.947),
    ("605.mcf", 0.655, 0.655),
    ("619.lbm", 0.617, 0.638),
    ("621.wrf", 0.443, 0.543),
];

fn main() {
    let ctx = ExperimentContext::from_env();
    let variant = PredictorConfig::dart();
    let mut t = Table::new(&[
        "Application",
        "w/o FT p.",
        "w/o FT ours",
        "DART p.",
        "DART ours",
        "Student ours",
    ]);
    let mut records = Vec::new();
    let mut sums = [0.0f64; 3];
    let workloads: Vec<_> =
        spec_workloads().into_iter().take(dart_bench::prefetch_eval::workload_limit()).collect();
    for (wi, workload) in workloads.iter().enumerate() {
        eprintln!("[table7] {} ({}/{})", workload.name, wi + 1, workloads.len());
        let prepared = ctx.prepare(workload, 0x7AB7 + wi as u64 * 13);
        // The pipeline gives student + DART-with-FT; re-tabularize the same
        // student without fine-tuning for the ablation.
        let artifacts = train_dart(&prepared, &ctx.pre, ctx.scale, &variant, false);
        let no_ft_cfg = tabular_config(ctx.scale, &variant).without_fine_tuning();
        let (tab_no_ft, _) = tabularize(&artifacts.student, &prepared.train.inputs, &no_ft_cfg);
        let f1_no_ft = evaluate_tabular_f1(&tab_no_ft, &prepared.test, 256);
        let paper = PAPER[wi];
        t.row(vec![
            workload.name.clone(),
            format!("{:.3}", paper.1),
            format!("{f1_no_ft:.3}"),
            format!("{:.3}", paper.2),
            format!("{:.3}", artifacts.f1.dart),
            format!("{:.3}", artifacts.f1.student),
        ]);
        sums[0] += f1_no_ft;
        sums[1] += artifacts.f1.dart;
        sums[2] += artifacts.f1.student;
        records.push(serde_json::json!({
            "app": workload.name,
            "paper": {"dart_no_ft": paper.1, "dart": paper.2},
            "ours": {
                "dart_no_ft": f1_no_ft,
                "dart": artifacts.f1.dart,
                "student": artifacts.f1.student,
            },
        }));
    }
    let n = workloads.len() as f64;
    t.row(vec![
        "Mean".into(),
        "0.661".into(),
        format!("{:.3}", sums[0] / n),
        "0.699".into(),
        format!("{:.3}", sums[1] / n),
        format!("{:.3}", sums[2] / n),
    ]);
    print_table("Table VII: DART F1 with and without fine-tuning", &t);
    println!(
        "\nShape check (paper): fine-tuning lifts mean F1 (paper: +5.75% relative) \
         and DART lands somewhat below the student it approximates."
    );
    record_json("table7", &serde_json::Value::Array(records));
}
