//! TransFetch-style preprocessing (paper §VI-A): segmented address inputs
//! and delta-bitmap labels.
//!
//! * **Segmented address input**: a block address is split into `S` segments
//!   of `c` bits each; each segment is normalized to `[0, 1]`. The PC is
//!   segmented the same way, so one access becomes a
//!   `addr_segments + pc_segments`-dimensional token and a history of `T`
//!   accesses becomes a `T x D_I` matrix.
//! * **Delta bitmap labels**: bit `b` of the `2R`-wide label is set iff the
//!   block delta it encodes (in `[-R, -1] ∪ [1, R]`) occurs between the
//!   current access and any of the next `lookforward` accesses — enabling
//!   multiple simultaneous predictions (variable prefetch degree).

use dart_nn::matrix::Matrix;
use dart_nn::train::Dataset;
use serde::{Deserialize, Serialize};

use crate::record::TraceRecord;

/// Preprocessing hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// History length `T` (tokens per sample).
    pub seq_len: usize,
    /// Number of block-address segments `S`.
    pub addr_segments: usize,
    /// Bits per segment `c`.
    pub seg_bits: u32,
    /// Number of PC segments.
    pub pc_segments: usize,
    /// Delta range `R`: predictable deltas are `[-R, R] \ {0}`.
    pub delta_range: usize,
    /// Look-forward window (accesses) for label construction.
    pub lookforward: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            seq_len: 16,
            addr_segments: 6,
            seg_bits: 6,
            pc_segments: 2,
            delta_range: 64,
            lookforward: 16,
        }
    }
}

impl PreprocessConfig {
    /// Token feature dimension `D_I = addr_segments + pc_segments`.
    pub fn input_dim(&self) -> usize {
        self.addr_segments + self.pc_segments
    }

    /// Label dimension `D_O = 2R`.
    pub fn output_dim(&self) -> usize {
        2 * self.delta_range
    }

    /// Map a block delta to its bitmap bit, if in range.
    /// Negative deltas occupy bits `[0, R)`, positive `[R, 2R)`.
    #[inline]
    pub fn delta_to_bit(&self, delta: i64) -> Option<usize> {
        let r = self.delta_range as i64;
        if delta >= 1 && delta <= r {
            Some((r + delta - 1) as usize)
        } else if delta <= -1 && delta >= -r {
            Some((delta + r) as usize)
        } else {
            None
        }
    }

    /// Inverse of [`Self::delta_to_bit`].
    #[inline]
    pub fn bit_to_delta(&self, bit: usize) -> i64 {
        let r = self.delta_range as i64;
        let b = bit as i64;
        if b < r {
            b - r
        } else {
            b - r + 1
        }
    }

    /// The DART emission rule shared by `DartPrefetcher` and the
    /// `dart-serve` runtime: rank bitmap probabilities at or above
    /// `threshold`, take the strongest `max_degree` bits, and map each to a
    /// prefetch block address relative to `anchor_block` (dropping
    /// non-positive targets). `candidates` is caller-owned scratch.
    pub fn decode_bitmap_into(
        &self,
        probs: &[f32],
        anchor_block: u64,
        threshold: f32,
        max_degree: usize,
        candidates: &mut Vec<(f32, usize)>,
    ) -> Vec<u64> {
        candidates.clear();
        candidates.extend(
            probs.iter().enumerate().filter(|&(_, &p)| p >= threshold).map(|(bit, &p)| (p, bit)),
        );
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        candidates
            .iter()
            .take(max_degree.max(1))
            .filter_map(|&(_, bit)| {
                let target = anchor_block as i64 + self.bit_to_delta(bit);
                (target > 0).then_some(target as u64)
            })
            .collect()
    }

    /// Write one token's features (segmented block + PC) into `out`.
    ///
    /// `block` is a cache-block address (`addr >> 6`).
    pub fn write_token_features(&self, block: u64, pc: u64, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.input_dim());
        let denom = ((1u64 << self.seg_bits) - 1).max(1) as f32;
        let mask = (1u64 << self.seg_bits) - 1;
        let (addr_out, pc_out) = out.split_at_mut(self.addr_segments);
        for (s, slot) in addr_out.iter_mut().enumerate() {
            let seg = (block >> (s as u32 * self.seg_bits)) & mask;
            *slot = seg as f32 / denom;
        }
        for (s, slot) in pc_out.iter_mut().enumerate() {
            let seg = (pc >> (s as u32 * self.seg_bits)) & mask;
            *slot = seg as f32 / denom;
        }
    }
}

/// Build a supervised dataset from a trace.
///
/// Sample `i` covers accesses `[i, i + T)` as input and labels deltas from
/// access `i + T - 1` (the "current" access) to the next `lookforward`
/// accesses. `stride` controls sampling density (1 = every position).
pub fn build_dataset(trace: &[TraceRecord], cfg: &PreprocessConfig, stride: usize) -> Dataset {
    let t = cfg.seq_len;
    let di = cfg.input_dim();
    let d_o = cfg.output_dim();
    let stride = stride.max(1);
    if trace.len() < t + 1 {
        return Dataset::new(Matrix::zeros(0, di), Matrix::zeros(0, d_o), t);
    }
    let last_start = trace.len() - t - 1;
    let num_samples = last_start / stride + 1;

    let mut inputs = Matrix::zeros(num_samples * t, di);
    let mut targets = Matrix::zeros(num_samples, d_o);
    for (sample, start) in (0..=last_start).step_by(stride).enumerate() {
        for tok in 0..t {
            let rec = &trace[start + tok];
            cfg.write_token_features(rec.block(), rec.pc, inputs.row_mut(sample * t + tok));
        }
        let current = trace[start + t - 1].block() as i64;
        let horizon = (start + t - 1 + cfg.lookforward).min(trace.len() - 1);
        for rec in &trace[start + t..=horizon] {
            if let Some(bit) = cfg.delta_to_bit(rec.block() as i64 - current) {
                targets.set(sample, bit, 1.0);
            }
        }
    }
    Dataset::new(inputs, targets, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(addr: u64) -> TraceRecord {
        TraceRecord { instr_id: 0, pc: 0x400100, addr }
    }

    #[test]
    fn delta_bit_roundtrip() {
        let cfg = PreprocessConfig::default();
        for d in [-64i64, -1, 1, 64] {
            let bit = cfg.delta_to_bit(d).unwrap();
            assert_eq!(cfg.bit_to_delta(bit), d, "delta {d}");
        }
        assert_eq!(cfg.delta_to_bit(0), None);
        assert_eq!(cfg.delta_to_bit(65), None);
        assert_eq!(cfg.delta_to_bit(-65), None);
    }

    #[test]
    fn all_bits_map_to_distinct_deltas() {
        let cfg = PreprocessConfig { delta_range: 8, ..Default::default() };
        let mut seen = std::collections::HashSet::new();
        for bit in 0..cfg.output_dim() {
            let d = cfg.bit_to_delta(bit);
            assert_ne!(d, 0);
            assert!(d.abs() <= 8);
            assert!(seen.insert(d), "duplicate delta {d}");
            assert_eq!(cfg.delta_to_bit(d), Some(bit));
        }
    }

    #[test]
    fn token_features_in_unit_range() {
        let cfg = PreprocessConfig::default();
        let mut out = vec![0.0f32; cfg.input_dim()];
        cfg.write_token_features(u64::MAX >> 6, u64::MAX, &mut out);
        assert!(out.iter().all(|&v| (0.0..=1.0).contains(&v)));
        cfg.write_token_features(0, 0, &mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn segments_decompose_address() {
        let cfg = PreprocessConfig {
            addr_segments: 3,
            seg_bits: 4,
            pc_segments: 0,
            ..Default::default()
        };
        let mut out = vec![0.0f32; 3];
        // block = 0xABC -> segments (low first): C, B, A
        cfg.write_token_features(0xABC, 0, &mut out);
        assert!((out[0] - 12.0 / 15.0).abs() < 1e-6);
        assert!((out[1] - 11.0 / 15.0).abs() < 1e-6);
        assert!((out[2] - 10.0 / 15.0).abs() < 1e-6);
    }

    #[test]
    fn dataset_labels_future_deltas() {
        let cfg =
            PreprocessConfig { seq_len: 2, delta_range: 4, lookforward: 2, ..Default::default() };
        // Blocks: 10, 11, 12, 14 (addresses are blocks << 6).
        let trace: Vec<TraceRecord> = [10u64, 11, 12, 14].iter().map(|&b| rec(b << 6)).collect();
        let ds = build_dataset(&trace, &cfg, 1);
        // Samples start at 0 and 1.
        assert_eq!(ds.len(), 2);
        // Sample 0: history blocks [10, 11]; future (window 2): 12, 14 ->
        // deltas +1 and +3 relative to 11.
        let row = ds.targets.row(0);
        assert_eq!(row[cfg.delta_to_bit(1).unwrap()], 1.0);
        assert_eq!(row[cfg.delta_to_bit(3).unwrap()], 1.0);
        assert_eq!(row.iter().sum::<f32>(), 2.0);
        // Sample 1: history [11, 12]; future: 14 -> delta +2.
        let row = ds.targets.row(1);
        assert_eq!(row[cfg.delta_to_bit(2).unwrap()], 1.0);
        assert_eq!(row.iter().sum::<f32>(), 1.0);
    }

    #[test]
    fn dataset_respects_stride() {
        let cfg = PreprocessConfig { seq_len: 2, lookforward: 1, ..Default::default() };
        let trace: Vec<TraceRecord> = (0..20).map(|b| rec(b << 6)).collect();
        let dense = build_dataset(&trace, &cfg, 1);
        let sparse = build_dataset(&trace, &cfg, 4);
        assert!(sparse.len() < dense.len());
        assert!(sparse.len() >= dense.len() / 4);
    }

    #[test]
    fn short_trace_yields_empty_dataset() {
        let cfg = PreprocessConfig { seq_len: 8, ..Default::default() };
        let trace: Vec<TraceRecord> = (0..4).map(|b| rec(b << 6)).collect();
        let ds = build_dataset(&trace, &cfg, 1);
        assert!(ds.is_empty());
    }

    #[test]
    fn out_of_range_deltas_do_not_set_bits() {
        let cfg =
            PreprocessConfig { seq_len: 2, delta_range: 2, lookforward: 1, ..Default::default() };
        // Jump of +100 blocks: outside the range, label must be empty.
        let trace: Vec<TraceRecord> = [10u64, 11, 111].iter().map(|&b| rec(b << 6)).collect();
        let ds = build_dataset(&trace, &cfg, 1);
        assert_eq!(ds.targets.row(0).iter().sum::<f32>(), 0.0);
    }
}
