//! Golden-fixture regression test: a small trained `TabularModel`
//! (deterministic seeds, no fine-tuning) is serialized to JSON under
//! `tests/fixtures/`, together with its predictions on a fixed synthetic
//! trace. Future layout or serialization refactors must keep loading the
//! fixture and reproducing those predictions — this is the backstop that
//! caught-in-review changes to `TableArena`/`CodebookArena`/`HashTree`
//! serialization cannot silently slip past.
//!
//! Regenerate (after an *intentional* format change) with:
//!
//! ```sh
//! DART_REGEN_FIXTURES=1 cargo test --test integration_golden
//! ```

use dart::core::config::TabularConfig;
use dart::core::tabularize::tabularize;
use dart::core::TabularModel;
use dart::nn::matrix::Matrix;
use dart::nn::model::{AccessPredictor, ModelConfig};
use dart::trace::PreprocessConfig;

const MODEL_FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/tabular_model.json");
const PREDICTIONS_FIXTURE: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/tabular_model_predictions.json");

fn golden_pre() -> PreprocessConfig {
    PreprocessConfig {
        seq_len: 4,
        addr_segments: 3,
        seg_bits: 4,
        pc_segments: 1,
        delta_range: 4,
        lookforward: 4,
    }
}

/// The fixed synthetic trace: pure arithmetic in `(row, col)`, so the
/// inputs need no storage and no RNG compatibility guarantees.
fn golden_inputs(pre: &PreprocessConfig, samples: usize) -> Matrix {
    Matrix::from_fn(samples * pre.seq_len, pre.input_dim(), |r, c| {
        ((r * 37 + c * 11) % 23) as f32 / 23.0
    })
}

fn build_golden_model() -> TabularModel {
    let pre = golden_pre();
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 8,
        heads: 2,
        layers: 1,
        ffn_dim: 16,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let student = AccessPredictor::new(cfg, 0x601D).expect("valid golden config");
    let train = golden_inputs(&pre, 50);
    let tab_cfg =
        TabularConfig { k: 8, c: 2, fine_tune_epochs: 0, seed: 0x601D, ..Default::default() };
    tabularize(&student, &train, &tab_cfg).0
}

#[test]
fn golden_model_predictions_match_fixture() {
    let pre = golden_pre();
    let inputs = golden_inputs(&pre, 12);

    if std::env::var("DART_REGEN_FIXTURES").is_ok() {
        let model = build_golden_model();
        let probs = model.predict_batch(&inputs);
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures")).unwrap();
        std::fs::write(MODEL_FIXTURE, model.to_json()).unwrap();
        std::fs::write(PREDICTIONS_FIXTURE, serde_json::to_string(&probs).unwrap()).unwrap();
        return;
    }

    let json = std::fs::read_to_string(MODEL_FIXTURE)
        .expect("fixture missing — regenerate with DART_REGEN_FIXTURES=1");
    let model = TabularModel::from_json(&json).expect("fixture must deserialize");
    let probs = model.predict_batch(&inputs);

    let expected: Matrix =
        serde_json::from_str(&std::fs::read_to_string(PREDICTIONS_FIXTURE).unwrap())
            .expect("prediction fixture must deserialize");
    assert_eq!(probs.shape(), expected.shape(), "prediction shape drifted");
    // f32 values survive the JSON round trip exactly (printed as shortest
    // roundtrip f64), and the kernels are deterministic in both debug and
    // release. Compare raw bits, not f32 `==`: `==` would let a +0.0/-0.0
    // flip (or a NaN) slip through the bit-exactness guarantee.
    for (i, (got, want)) in probs.as_slice().iter().zip(expected.as_slice()).enumerate() {
        assert_eq!(got.to_bits(), want.to_bits(), "prediction entry {i} drifted: {got} vs {want}");
    }
}

/// The serialized model itself round-trips exactly: guards accidental
/// lossy serde on the arena/codebook/hash-tree types.
#[test]
fn golden_model_json_roundtrip_is_stable() {
    let json = match std::fs::read_to_string(MODEL_FIXTURE) {
        Ok(j) => j,
        // Regeneration run: the other test writes the fixture.
        Err(_) if std::env::var("DART_REGEN_FIXTURES").is_ok() => return,
        Err(e) => panic!("fixture missing ({e}) — regenerate with DART_REGEN_FIXTURES=1"),
    };
    let model = TabularModel::from_json(&json).unwrap();
    let reserialized = model.to_json();
    let again = TabularModel::from_json(&reserialized).unwrap();
    // Two serialize->deserialize trips agree on every prediction.
    let pre = golden_pre();
    let inputs = golden_inputs(&pre, 3);
    assert_eq!(model.predict_batch(&inputs), again.predict_batch(&inputs));
}
