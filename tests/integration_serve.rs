//! Cross-crate properties of the batched prediction path and the serving
//! runtime: `predict_batch` must equal row-by-row `forward_probs`
//! bit-for-bit, for any batch composition.

use dart::core::config::TabularConfig;
use dart::core::tabularize::tabularize;
use dart::core::TabularModel;
use dart::nn::init::InitRng;
use dart::nn::matrix::Matrix;
use dart::nn::model::{AccessPredictor, ModelConfig};
use dart::pq::EncoderKind;
use dart::trace::PreprocessConfig;
use proptest::prelude::*;

fn tiny_model(seed: u64, encoder: EncoderKind) -> (TabularModel, PreprocessConfig) {
    let pre = PreprocessConfig {
        seq_len: 4,
        addr_segments: 3,
        seg_bits: 4,
        pc_segments: 1,
        delta_range: 4,
        lookforward: 4,
    };
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 8,
        heads: 2,
        layers: 1,
        ffn_dim: 16,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let student = AccessPredictor::new(cfg, seed).unwrap();
    let mut rng = InitRng::new(seed.wrapping_add(1));
    let x = Matrix::from_fn(40 * 4, pre.input_dim(), |_, _| rng.next_f32());
    let tab_cfg = TabularConfig { k: 8, c: 2, encoder, fine_tune_epochs: 0, ..Default::default() };
    let (model, _) = tabularize(&student, &x, &tab_cfg);
    (model, pre)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `predict_batch` on a stacked matrix equals calling `forward_probs`
    /// sample-by-sample, bit for bit, regardless of batch size.
    #[test]
    fn predict_batch_equals_row_by_row(
        seed in 0u64..50,
        batch in 1usize..9,
        tree in proptest::bool::ANY,
    ) {
        let encoder = if tree { EncoderKind::HashTree } else { EncoderKind::Argmin };
        let (model, pre) = tiny_model(seed, encoder);
        let t = pre.seq_len;
        let di = pre.input_dim();

        let mut rng = InitRng::new(seed ^ 0xBA7C4);
        let stacked = Matrix::from_fn(batch * t, di, |_, _| rng.next_f32());
        let batched = model.predict_batch(&stacked);
        prop_assert_eq!(batched.shape(), (batch, pre.output_dim()));

        for n in 0..batch {
            let single = model.forward_probs(&stacked.slice_rows(n * t, (n + 1) * t));
            // Bit-for-bit: the batched kernels preserve per-row accumulation
            // order exactly.
            prop_assert_eq!(
                single.row(0), batched.row(n),
                "sample {} diverged (seed {}, batch {})", n, seed, batch
            );
        }
    }

    /// Batched attention/linear kernels keep the model deterministic: the
    /// same stacked input always produces the same output.
    #[test]
    fn predict_batch_is_deterministic(seed in 0u64..50, batch in 1usize..6) {
        let (model, pre) = tiny_model(seed, EncoderKind::Argmin);
        let mut rng = InitRng::new(seed ^ 0xD00D);
        let x = Matrix::from_fn(batch * pre.seq_len, pre.input_dim(), |_, _| rng.next_f32());
        prop_assert_eq!(model.predict_batch(&x), model.predict_batch(&x));
    }
}

#[test]
#[should_panic(expected = "not divisible")]
fn predict_batch_rejects_ragged_input() {
    let (model, pre) = tiny_model(1, EncoderKind::Argmin);
    let x = Matrix::zeros(pre.seq_len + 1, pre.input_dim());
    let _ = model.predict_batch(&x);
}
