//! Per-kernel invocation/row counters (`telemetry` feature).
//!
//! Each hot kernel calls [`profile_kernel`] once per batch with its name
//! and the number of rows it processed. With the `telemetry` feature the
//! counts land in the process-wide [`dart_telemetry::global()`] registry
//! as two counter families:
//!
//! * `dart_pq_kernel_invocations_total{kernel="..."}` — batch calls,
//! * `dart_pq_kernel_rows_total{kernel="..."}` — rows processed.
//!
//! Without the feature [`profile_kernel`] is an empty `#[inline(always)]`
//! function, so the hook costs nothing on the default build — callers
//! never need a `cfg` at the call site.
//!
//! Kernel names are a closed set so the cells can live in a fixed-size
//! array resolved without hashing on the hot path: `encode_batch`
//! (quantizer encoding), `aggregate_codes` (linear-table aggregation),
//! `attention_query` (attention QKV lookups), `int8_query` (quantized
//! int8 linear-table queries).

/// Record one kernel invocation that processed `rows` rows.
///
/// `name` must be one of the catalog names above; unknown names are
/// ignored rather than panicking so the hook can never take down a
/// kernel. No-op without the `telemetry` feature.
#[cfg(feature = "telemetry")]
pub fn profile_kernel(name: &'static str, rows: u64) {
    imp::record(name, rows);
}

/// Record one kernel invocation (no-op: `telemetry` feature is off).
#[cfg(not(feature = "telemetry"))]
#[inline(always)]
pub fn profile_kernel(_name: &'static str, _rows: u64) {}

#[cfg(feature = "telemetry")]
mod imp {
    use std::sync::{Arc, OnceLock};

    use dart_telemetry::Counter;

    /// The closed kernel-name catalog, in exposition order.
    pub(super) const KERNELS: [&str; 4] =
        ["encode_batch", "aggregate_codes", "attention_query", "int8_query"];

    struct Cells {
        invocations: [Arc<Counter>; 4],
        rows: [Arc<Counter>; 4],
    }

    fn cells() -> &'static Cells {
        static CELLS: OnceLock<Cells> = OnceLock::new();
        CELLS.get_or_init(|| {
            let reg = dart_telemetry::global();
            Cells {
                invocations: KERNELS.map(|k| {
                    reg.counter(
                        "dart_pq_kernel_invocations_total",
                        "Batched tabularization-kernel calls.",
                        &[("kernel", k)],
                    )
                }),
                rows: KERNELS.map(|k| {
                    reg.counter(
                        "dart_pq_kernel_rows_total",
                        "Rows processed by tabularization kernels.",
                        &[("kernel", k)],
                    )
                }),
            }
        })
    }

    pub(super) fn record(name: &'static str, rows: u64) {
        let Some(i) = KERNELS.iter().position(|k| *k == name) else { return };
        let c = cells();
        c.invocations[i].inc();
        c.rows[i].add(rows);
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn kernel_counters_land_in_the_global_registry() {
        // Other tests in this binary drive kernels through the same
        // process-global registry concurrently, so assert on deltas of
        // the shared cells, not absolute rendered values.
        let reg = dart_telemetry::global();
        let rows = reg.counter(
            "dart_pq_kernel_rows_total",
            "Rows processed by tabularization kernels.",
            &[("kernel", "encode_batch")],
        );
        let before = rows.get();
        profile_kernel("encode_batch", 5);
        profile_kernel("encode_batch", 3);
        profile_kernel("not_a_kernel", 99);
        assert!(rows.get() >= before + 8);
        let doc = reg.render();
        assert!(doc.contains("# TYPE dart_pq_kernel_invocations_total counter"));
        assert!(doc.contains("dart_pq_kernel_rows_total{kernel=\"encode_batch\"}"));
        assert!(!doc.contains("not_a_kernel"));
    }
}
