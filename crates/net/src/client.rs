//! A small blocking client for the wire protocol — what the TCP load
//! generator and the integration tests speak to the server with.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{
    encode_request, Frame, FrameDecoder, NackFrame, RequestFrame, ResponseFrame, REQUEST_LEN,
};

/// What the server answers with: exactly one of these per sent request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientEvent {
    /// Served (or failed by the runtime — see
    /// [`ResponseFrame::failed`]); the request was accepted.
    Response(ResponseFrame),
    /// Refused: the request never entered the system and will get no
    /// response. Retry is the client's decision.
    Nack(NackFrame),
}

/// One blocking connection to a [`crate::NetServer`]. Requests are
/// buffered locally; [`NetClient::flush`] (called implicitly by
/// [`NetClient::recv_event`]) pushes them out in one write.
pub struct NetClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    send_buf: Vec<u8>,
    read_buf: Vec<u8>,
}

impl NetClient {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            decoder: FrameDecoder::new(),
            send_buf: Vec::new(),
            read_buf: vec![0u8; 16 * 1024],
        })
    }

    /// Bound how long [`NetClient::recv_event`] blocks (`None` = forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Queue one request frame (buffered until the next flush).
    pub fn send_request(&mut self, stream: u32, pc: u64, addr: u64) {
        self.send_buf.reserve(REQUEST_LEN);
        encode_request(&RequestFrame { stream, pc, addr }, &mut self.send_buf);
    }

    /// Push every queued request into the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.send_buf.is_empty() {
            self.stream.write_all(&self.send_buf)?;
            self.send_buf.clear();
        }
        Ok(())
    }

    /// Flush, then block until the server's next answer arrives.
    ///
    /// Errors surface the socket failure (including read timeouts, as
    /// `WouldBlock`/`TimedOut` per platform); a server that violates the
    /// protocol (bad frame, or a request-kind frame) is `InvalidData`.
    pub fn recv_event(&mut self) -> io::Result<ClientEvent> {
        self.flush()?;
        loop {
            match self.decoder.next() {
                Ok(Some(Frame::Response(r))) => return Ok(ClientEvent::Response(r)),
                Ok(Some(Frame::Nack(n))) => return Ok(ClientEvent::Nack(n)),
                Ok(Some(Frame::Request(_))) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "server sent a request frame",
                    ));
                }
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            }
            let n = self.stream.read(&mut self.read_buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.decoder.extend(&self.read_buf[..n]);
        }
    }
}

/// Scrape `GET /metrics` from a server over plain HTTP and return the
/// body (the exposition document).
pub fn fetch_metrics(addr: impl ToSocketAddrs) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: dart\r\nConnection: close\r\n\r\n")?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "no HTTP header terminator"));
    };
    if !head.starts_with("HTTP/1.1 200") {
        let status = head.lines().next().unwrap_or("").to_string();
        return Err(io::Error::new(io::ErrorKind::InvalidData, format!("scrape failed: {status}")));
    }
    Ok(body.to_string())
}
