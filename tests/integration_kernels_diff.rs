//! Differential suite for the flat-arena tiled batch kernels.
//!
//! The tiled kernels (`ProductQuantizer::encode_batch_into`,
//! `LinearTable`/`FusedFfnTable::query_batch_into`,
//! `AttentionTable::query_batch`, `TabularModel::predict_batch`) process a
//! block of rows per sub-table pass over one contiguous arena. Their
//! contract is **bit-for-bit** equality with the straightforward scalar
//! reference (`encode_row`, `query_row_into`, per-sample `query` /
//! `forward_probs`): per-`(row, output)` accumulation runs in the same
//! subspace order, so no ULP tolerance is needed — every assertion below is
//! exact. Batch sizes deliberately straddle the tile boundaries (empty, 1,
//! tile - 1, tile, tile + 1, several tiles, non-multiples).
//!
//! With the `simd` cargo feature enabled, the batch kernels dispatch to
//! AVX2/NEON tiles; the row-at-a-time references and the `*_scalar` batch
//! twins stay pinned to the scalar kernels, so **the same assertions become
//! the simd-vs-scalar differential** (CI runs this suite with the feature
//! on and off, debug and release). Output widths straddle the 8-lane AVX2
//! and 4-lane NEON vectors, so both the vector body and the ragged tail of
//! every SIMD loop are covered.

use dart::core::config::TabularConfig;
use dart::core::tabularize::tabularize;
use dart::core::TabularModel;
use dart::nn::init::InitRng;
use dart::nn::matrix::Matrix;
use dart::nn::model::{AccessPredictor, ModelConfig};
use dart::pq::{
    AttentionTable, AttentionTableConfig, EncoderKind, FusedFfnTable, LinearTable,
    ProductQuantizer, QuantizedLinearTable, AGG_TILE_ROWS, ATTN_TILE_SAMPLES, ENCODE_TILE_ROWS,
};
use dart::trace::PreprocessConfig;
use proptest::prelude::*;

fn rand_matrix(r: usize, c: usize, seed: u64) -> Matrix {
    let mut rng = InitRng::new(seed);
    Matrix::from_fn(r, c, |_, _| rng.normal())
}

/// Batch sizes that exercise both tile boundaries: empty, one row, one
/// under/at/over each tile size, and a non-multiple several tiles long.
fn boundary_batches() -> Vec<usize> {
    vec![
        0,
        1,
        AGG_TILE_ROWS - 1,
        AGG_TILE_ROWS,
        AGG_TILE_ROWS + 3,
        ENCODE_TILE_ROWS - 1,
        ENCODE_TILE_ROWS,
        ENCODE_TILE_ROWS + 5,
        2 * ENCODE_TILE_ROWS + 7,
    ]
}

fn encoder_of(tree: bool) -> EncoderKind {
    if tree {
        EncoderKind::HashTree
    } else {
        EncoderKind::Argmin
    }
}

/// Bit-exact view of a Matrix (`f32 ==` would hide -0.0 vs 0.0 and NaN;
/// the simd-vs-scalar contract is on the bits).
fn bits_of(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|f| f.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tiled batch encoding equals per-row scalar encoding for every code.
    #[test]
    fn encode_batch_matches_per_row(
        seed in 0u64..5_000,
        k in 1usize..24,
        c in 1usize..5,
        dim in 2usize..10,
        size_idx in 0usize..9,
        tree in proptest::bool::ANY,
    ) {
        let rows = boundary_batches()[size_idx];
        let train = rand_matrix(60, dim, seed);
        let pq = ProductQuantizer::fit(&train, c, k, encoder_of(tree), seed);
        let x = rand_matrix(rows, dim, seed ^ 0xE0C0);
        let mut codes = vec![0usize; rows * pq.num_subspaces()];
        pq.encode_batch_into(&x, &mut codes);
        for r in 0..rows {
            let reference = pq.encode_row(x.row(r));
            prop_assert_eq!(
                &codes[r * pq.num_subspaces()..(r + 1) * pq.num_subspaces()],
                &reference[..],
                "row {} codes diverged (rows {})", r, rows
            );
        }
        // The dispatched batch encode (SIMD argmin under --features simd)
        // must equal the scalar-tile batch encode exactly.
        let mut scalar_codes = vec![0usize; rows * pq.num_subspaces()];
        pq.encode_batch_scalar_into(&x, &mut scalar_codes);
        prop_assert_eq!(codes, scalar_codes, "simd vs scalar encode diverged");
    }

    /// Tiled linear-table batch query equals the scalar single-row query
    /// bit for bit at every batch size.
    #[test]
    fn linear_query_batch_matches_row_scalar(
        seed in 0u64..5_000,
        k in 2usize..32,
        c in 1usize..4,
        // 1..20 output columns: straddles the 4-lane NEON and 8-lane AVX2
        // widths (sub-lane, exact multiples, and ragged tails).
        dout in 1usize..20,
        size_idx in 0usize..9,
        tree in proptest::bool::ANY,
    ) {
        let rows = boundary_batches()[size_idx];
        let din = 6usize;
        let train = rand_matrix(80, din, seed);
        let w = rand_matrix(dout, din, seed ^ 0x11);
        let b: Vec<f32> = (0..dout).map(|o| o as f32 * 0.25 - 0.5).collect();
        let table = LinearTable::fit(&train, &w, &b, c, k, encoder_of(tree), seed);
        let x = rand_matrix(rows, din, seed ^ 0x22);

        let batch = table.query(&x);
        prop_assert_eq!(batch.shape(), (rows, dout));
        let mut single = vec![0.0f32; dout];
        for r in 0..rows {
            table.query_row_into(x.row(r), &mut single);
            prop_assert_eq!(&single[..], batch.row(r), "row {} of {}", r, rows);
        }

        // query_batch_into into a caller buffer is the same kernel.
        let mut out = Matrix::zeros(rows, dout);
        table.query_batch_into(&x, &mut out);
        prop_assert_eq!(out.as_slice(), batch.as_slice());

        // The dispatched aggregation (SIMD under --features simd) must
        // equal the scalar-tile aggregation bit for bit.
        let mut scalar_out = Matrix::zeros(rows, dout);
        table.query_batch_scalar_into(&x, &mut scalar_out);
        prop_assert_eq!(
            bits_of(&scalar_out), bits_of(&batch),
            "simd vs scalar aggregation diverged (dout {})", dout
        );
    }

    /// Tiled fused-FFN batch query equals its scalar single-row query.
    #[test]
    fn fused_query_batch_matches_row_scalar(
        seed in 0u64..5_000,
        k in 2usize..16,
        c in 1usize..4,
        size_idx in 0usize..9,
        tree in proptest::bool::ANY,
    ) {
        let rows = boundary_batches()[size_idx];
        let (din, dh, dout) = (6usize, 10usize, 4usize);
        let train = rand_matrix(70, din, seed);
        let wh = rand_matrix(dh, din, seed ^ 0x33);
        let bh = vec![0.05f32; dh];
        let wo = rand_matrix(dout, dh, seed ^ 0x44);
        let bo = vec![-0.1f32; dout];
        let fused =
            FusedFfnTable::fit(&train, &wh, &bh, &wo, &bo, c, k, encoder_of(tree), seed);
        let x = rand_matrix(rows, din, seed ^ 0x55);

        let batch = fused.query(&x);
        prop_assert_eq!(batch.shape(), (rows, dout));
        let mut single = vec![0.0f32; dout];
        for r in 0..rows {
            fused.query_row_into(x.row(r), &mut single);
            prop_assert_eq!(&single[..], batch.row(r), "row {} of {}", r, rows);
        }

        let mut scalar_out = Matrix::zeros(rows, dout);
        fused.query_batch_scalar_into(&x, &mut scalar_out);
        prop_assert_eq!(bits_of(&scalar_out), bits_of(&batch), "fused simd vs scalar diverged");
    }

    /// Sample-tiled batched attention equals querying each sample alone.
    #[test]
    fn attention_query_batch_matches_per_sample(
        seed in 0u64..5_000,
        k in 2usize..16,
        samples_idx in 0usize..6,
        tree in proptest::bool::ANY,
    ) {
        // Straddle the attention tile (samples, not rows).
        let batches =
            [0, 1, ATTN_TILE_SAMPLES - 1, ATTN_TILE_SAMPLES, ATTN_TILE_SAMPLES + 1,
             2 * ATTN_TILE_SAMPLES + 3];
        let samples = batches[samples_idx];
        let (t, dk) = (4usize, 6usize);
        let q = rand_matrix(30 * t, dk, seed ^ 0x66);
        let kk = rand_matrix(30 * t, dk, seed ^ 0x77);
        let v = rand_matrix(30 * t, dk, seed ^ 0x88);
        let cfg = AttentionTableConfig {
            k,
            ck: 2,
            ct: 2,
            encoder: encoder_of(tree),
            ..Default::default()
        };
        let table = AttentionTable::fit(&q, &kk, &v, t, &cfg);

        let qs = rand_matrix(samples * t, dk, seed ^ 0x99);
        let ks = rand_matrix(samples * t, dk, seed ^ 0xAA);
        let vs = rand_matrix(samples * t, dk, seed ^ 0xBB);
        let batch = table.query_batch(&qs, &ks, &vs);
        prop_assert_eq!(batch.shape(), (samples * t, dk));
        for n in 0..samples {
            let single = table.query(
                &qs.slice_rows(n * t, (n + 1) * t),
                &ks.slice_rows(n * t, (n + 1) * t),
                &vs.slice_rows(n * t, (n + 1) * t),
            );
            for step in 0..t {
                prop_assert_eq!(
                    single.row(step), batch.row(n * t + step),
                    "sample {} step {} diverged", n, step
                );
            }
        }

        let scalar = table.query_batch_scalar(&qs, &ks, &vs);
        prop_assert_eq!(
            bits_of(&scalar), bits_of(&batch), "attention simd vs scalar diverged"
        );
    }

    /// The int8 table's dispatched batch query (SIMD dequantize-accumulate
    /// under --features simd) equals its scalar batch twin and the scalar
    /// row-at-a-time path, across output widths straddling the vector
    /// lanes.
    #[test]
    fn int8_query_matches_scalar_paths(
        seed in 0u64..5_000,
        k in 2usize..32,
        c in 1usize..4,
        dout in 1usize..20,
        size_idx in 0usize..9,
    ) {
        let rows = boundary_batches()[size_idx];
        let din = 6usize;
        let train = rand_matrix(80, din, seed);
        let w = rand_matrix(dout, din, seed ^ 0x11);
        let b: Vec<f32> = (0..dout).map(|o| o as f32 * 0.125 - 0.25).collect();
        let table = LinearTable::fit(&train, &w, &b, c, k, EncoderKind::Argmin, seed);
        let q8 = QuantizedLinearTable::from_table(&table);
        let x = rand_matrix(rows, din, seed ^ 0x22);

        let batch = q8.query(&x);
        prop_assert_eq!(batch.shape(), (rows, dout));
        prop_assert_eq!(
            bits_of(&q8.query_scalar(&x)), bits_of(&batch), "int8 simd vs scalar diverged"
        );
        let mut single = vec![0.0f32; dout];
        for r in 0..rows {
            q8.query_row_into(x.row(r), &mut single);
            prop_assert_eq!(&single[..], batch.row(r), "int8 row {} of {}", r, rows);
        }
    }
}

/// Attention shapes wide enough to fill whole 8-lane vectors in BOTH
/// gather stages (QK lanes = seq_len = 12, QKV lanes = head dim = 16) plus
/// ragged tails — the proptest above keeps t/dk small for fit speed, so
/// this pins the full-vector path deterministically.
#[test]
fn attention_simd_paths_agree_at_vector_filling_shapes() {
    let (t, dk) = (12usize, 16usize);
    let q = rand_matrix(20 * t, dk, 0x1001);
    let kk = rand_matrix(20 * t, dk, 0x1002);
    let v = rand_matrix(20 * t, dk, 0x1003);
    for encoder in [EncoderKind::Argmin, EncoderKind::HashTree] {
        let cfg = AttentionTableConfig { k: 8, ck: 3, ct: 3, encoder, ..Default::default() };
        let table = AttentionTable::fit(&q, &kk, &v, t, &cfg);
        let qs = rand_matrix(5 * t, dk, 0x2001);
        let ks = rand_matrix(5 * t, dk, 0x2002);
        let vs = rand_matrix(5 * t, dk, 0x2003);
        let batch = table.query_batch(&qs, &ks, &vs);
        let scalar = table.query_batch_scalar(&qs, &ks, &vs);
        assert_eq!(bits_of(&batch), bits_of(&scalar), "encoder {encoder:?}");
    }
}

/// End-to-end: `predict_batch` over a batch wider than every tile equals
/// per-sample `forward_probs`, bit for bit (the serving batch-64 shape).
#[test]
fn predict_batch_matches_per_sample_beyond_tile_sizes() {
    let pre = PreprocessConfig {
        seq_len: 4,
        addr_segments: 3,
        seg_bits: 4,
        pc_segments: 1,
        delta_range: 4,
        lookforward: 4,
    };
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 8,
        heads: 2,
        layers: 1,
        ffn_dim: 16,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let student = AccessPredictor::new(cfg, 0xD1FF).unwrap();
    let mut rng = InitRng::new(0xD1FF + 1);
    let x = Matrix::from_fn(40 * pre.seq_len, pre.input_dim(), |_, _| rng.next_f32());
    let tab_cfg = TabularConfig { k: 8, c: 2, fine_tune_epochs: 0, ..Default::default() };
    let (model, _): (TabularModel, _) = tabularize(&student, &x, &tab_cfg);

    // 64 samples x 4 tokens = 256 rows: several AGG (32) and ENCODE (64)
    // tiles plus a ragged tail at every kernel.
    for batch in [64usize, 33, 17] {
        let stacked = Matrix::from_fn(batch * pre.seq_len, pre.input_dim(), |r, c| {
            ((r * 31 + c * 7) % 17) as f32 * 0.0625
        });
        let batched = model.predict_batch(&stacked);
        assert_eq!(batched.shape(), (batch, pre.output_dim()));
        for n in 0..batch {
            let single =
                model.forward_probs(&stacked.slice_rows(n * pre.seq_len, (n + 1) * pre.seq_len));
            assert_eq!(single.row(0), batched.row(n), "sample {n} of batch {batch}");
        }
    }
}

/// The empty batch is a no-op at every layer of the stack.
#[test]
fn empty_batch_is_a_noop() {
    let train = rand_matrix(50, 6, 3);
    let w = rand_matrix(4, 6, 5);
    let b = vec![0.0f32; 4];
    let table = LinearTable::fit(&train, &w, &b, 2, 8, EncoderKind::Argmin, 7);
    let empty = Matrix::zeros(0, 6);
    let out = table.query(&empty);
    assert_eq!(out.shape(), (0, 4));
    let mut codes = vec![];
    table.quantizer().encode_batch_into(&empty, &mut codes);
    assert!(codes.is_empty());
}
