//! End-to-end DART deployment walkthrough (paper Fig. 2 + Fig. 3):
//!
//! 1. design constraints -> table configurator -> student architecture,
//! 2. attention teacher -> knowledge distillation -> student,
//! 3. layer-wise tabularization with fine-tuning -> hierarchy of tables,
//! 4. the tables go behind the LLC as a prefetcher; compare against BO and
//!    against the idealized zero-latency version of the same predictor.
//!
//! ```sh
//! cargo run --release --example end_to_end_dart
//! ```

use dart::core::config::{DesignConstraints, TabularConfig};
use dart::core::configurator::TableConfigurator;
use dart::core::pipeline::{run_pipeline, PipelineConfig};
use dart::core::DistillConfig;
use dart::nn::model::ModelConfig;
use dart::nn::train::TrainConfig;
use dart::prefetch::{BestOffset, DartPrefetcher};
use dart::sim::{NullPrefetcher, Prefetcher, SimConfig, Simulator};
use dart::trace::{build_dataset, workload_by_name, PreprocessConfig};

fn main() {
    // --- 1. Size the predictor for a 100-cycle / 1 MB budget --------------
    let constraints = DesignConstraints::dart();
    let configurator = TableConfigurator::default();
    let (variant, cost) = configurator.configure(&constraints).expect("feasible");
    println!(
        "configurator: tau={} cyc, s={} B -> (L={}, D={}, H={}, K={}, C={}) \
         [latency {} cyc, storage {} B]",
        constraints.latency_cycles,
        constraints.storage_bytes,
        variant.layers,
        variant.dim,
        variant.heads,
        variant.k,
        variant.c,
        cost.latency_cycles,
        cost.storage_bytes
    );

    // --- 2+3. Train, distill, tabularize ----------------------------------
    let workload = workload_by_name("gcc").expect("workload");
    let trace = workload.generate(30_000, 11);
    let sim = Simulator::new(SimConfig::table_iii());
    let base = sim.run(&trace, &mut NullPrefetcher, true);
    let llc = base.llc_trace.clone().unwrap();
    let pre = PreprocessConfig {
        seq_len: 8,
        addr_segments: 5,
        seg_bits: 6,
        pc_segments: 1,
        delta_range: 32,
        lookforward: 20,
    };
    let split = llc.len() * 6 / 10;
    let train = build_dataset(&llc[..split], &pre, 4);
    let test = build_dataset(&llc[split..], &pre, 4);

    let cfg = PipelineConfig {
        teacher: ModelConfig {
            input_dim: pre.input_dim(),
            dim: 64,
            heads: 4,
            layers: 2,
            ffn_dim: 256,
            output_dim: pre.output_dim(),
            seq_len: pre.seq_len,
        },
        student: variant.to_model_config(pre.input_dim(), pre.output_dim(), pre.seq_len),
        teacher_train: TrainConfig { epochs: 3, ..Default::default() },
        distill: DistillConfig {
            train: TrainConfig { epochs: 5, ..Default::default() },
            ..Default::default()
        },
        tabular: TabularConfig::from_predictor(&variant),
        train_student_without_kd: false,
        seed: 21,
    };
    eprintln!("running attention -> distillation -> tabularization...");
    let artifacts = run_pipeline(&train, &test, &cfg);
    println!(
        "F1: teacher {:.3} | student {:.3} | DART {:.3} (measured table storage {} B)",
        artifacts.f1.teacher,
        artifacts.f1.student,
        artifacts.f1.dart,
        artifacts.tabular.storage_bytes()
    );

    // --- 4. Deploy at the LLC ----------------------------------------------
    let mut dart_pf = DartPrefetcher::new("DART", artifacts.tabular.clone(), pre, &variant, 0.5, 8);
    let mut dart_ideal = DartPrefetcher::with_latency("DART-I", artifacts.tabular, pre, 0, 0.5, 8);
    let mut bo = BestOffset::new();

    println!("\n{:<8} {:>9} {:>9} {:>8}", "pf", "accuracy", "coverage", "IPC+%");
    for (name, pf) in [
        ("BO", &mut bo as &mut dyn Prefetcher),
        ("DART", &mut dart_pf),
        ("DART-I", &mut dart_ideal),
    ] {
        let r = sim.run(&trace, pf, false);
        println!(
            "{:<8} {:>8.1}% {:>8.1}% {:>7.1}%",
            name,
            r.prefetch_accuracy() * 100.0,
            r.prefetch_coverage() * 100.0,
            r.ipc_improvement_pct(&base)
        );
    }
    println!(
        "\nDART's table latency ({} cycles) costs little next to its ideal \
         variant — the paper's core practicality argument.",
        dart::core::configurator::model_latency(&variant)
    );
}
