//! Table IV — benchmark trace statistics: unique block addresses, pages and
//! consecutive deltas of each synthetic workload's LLC stream, next to the
//! paper's SPEC numbers.

use dart_bench::{print_table, record_json, ExperimentContext, Table};
use dart_trace::TraceStats;

/// Paper Table IV values: (app, #address, #page, #delta), in thousands.
const PAPER: [(&str, f64, f64, f64); 8] = [
    ("410.bwaves", 236.5, 3.7, 14.4),
    ("433.milc", 170.7, 19.8, 15.8),
    ("437.leslie3d", 104.3, 1.7, 3.6),
    ("462.libquantum", 347.8, 5.4, 0.5),
    ("602.gcc", 195.8, 3.4, 4.9),
    ("605.mcf", 176.0, 3.7, 207.7),
    ("619.lbm", 121.8, 1.9, 1.2),
    ("621.wrf", 188.5, 3.3, 13.7),
];

fn k(x: usize) -> String {
    if x < 1000 {
        x.to_string()
    } else {
        format!("{:.1}K", x as f64 / 1e3)
    }
}

fn main() {
    let ctx = ExperimentContext::from_env();
    let mut t = Table::new(&[
        "Application",
        "#Addr (paper)",
        "#Addr (ours)",
        "#Page (paper)",
        "#Page (ours)",
        "#Delta (paper)",
        "#Delta (ours)",
    ]);
    let mut records = Vec::new();
    let prepared = ctx.prepare_all(0x7AB1E4);
    for (p, (name, pa, pp, pd)) in prepared.iter().zip(PAPER) {
        assert_eq!(p.workload.name, name);
        let stats = TraceStats::compute(&p.llc_trace);
        t.row(vec![
            name.into(),
            format!("{pa:.1}K"),
            k(stats.unique_blocks),
            format!("{pp:.1}K"),
            k(stats.unique_pages),
            format!("{pd:.1}K"),
            k(stats.unique_deltas),
        ]);
        records.push(serde_json::json!({
            "app": name,
            "paper": {"addr_k": pa, "page_k": pp, "delta_k": pd},
            "ours": {
                "addr": stats.unique_blocks,
                "page": stats.unique_pages,
                "delta": stats.unique_deltas,
                "llc_accesses": stats.accesses,
            },
        }));
    }
    print_table(
        &format!(
            "Table IV: LLC trace statistics (scale: {:?}, {} loads/workload)",
            ctx.scale,
            ctx.scale.trace_len()
        ),
        &t,
    );
    println!(
        "\nNote: absolute counts scale with trace length; the orderings the paper \
         reasons about (mcf >> others in deltas; milc >> others in pages; \
         libquantum fewest deltas) are the reproduction target."
    );
    record_json("table4", &serde_json::Value::Array(records));
}
