//! Inverted dropout: active only in training mode, identity at inference.

use crate::init::InitRng;
use crate::layers::{Layer, Param};
use crate::matrix::Matrix;

/// Inverted dropout with keep-probability scaling.
#[derive(Clone, Debug)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    rng: InitRng,
    mask: Option<Matrix>,
}

impl Dropout {
    /// New dropout layer.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Dropout {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        Dropout { p, rng: InitRng::new(seed), mask: None }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        if !train || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Matrix::zeros(x.rows(), x.cols());
        for m in mask.as_mut_slice() {
            *m = if self.rng.next_f32() < keep { scale } else { 0.0 };
        }
        let out = x.hadamard(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) => grad.hadamard(mask),
            None => grad.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_at_inference() {
        let mut d = Dropout::new(0.5, 1);
        let x = Matrix::from_fn(4, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn preserves_expectation_in_training() {
        let mut d = Dropout::new(0.3, 2);
        let x = Matrix::full(200, 50, 1.0);
        let y = d.forward(&x, true);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zeroes_fraction_close_to_p() {
        let mut d = Dropout::new(0.4, 3);
        let x = Matrix::full(100, 100, 1.0);
        let y = d.forward(&x, true);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / y.len() as f32;
        assert!((frac - 0.4).abs() < 0.03, "dropped {frac}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 4);
        let x = Matrix::full(10, 10, 2.0);
        let y = d.forward(&x, true);
        let grad = Matrix::full(10, 10, 1.0);
        let gx = d.backward(&grad);
        // Gradient flows exactly where activations flowed.
        for (yv, gv) in y.as_slice().iter().zip(gx.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn p_zero_is_identity_even_training() {
        let mut d = Dropout::new(0.0, 5);
        let x = Matrix::from_fn(3, 3, |r, c| (r + c) as f32);
        assert_eq!(d.forward(&x, true), x);
    }
}
