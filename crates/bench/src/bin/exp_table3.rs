//! Table III — simulation parameters: print our ChampSim-substitute
//! configuration next to the paper's.

use dart_bench::{print_table, record_json, Table};
use dart_sim::SimConfig;

fn main() {
    let cfg = SimConfig::table_iii();
    let mut t = Table::new(&["Parameter", "Paper (Table III)", "This repo"]);
    t.row(vec![
        "CPU".into(),
        "4 GHz, 4 cores, 4-wide OoO, 256-entry ROB".into(),
        format!("1 core simulated, {}-wide, {}-entry ROB", cfg.core.width, cfg.core.rob_size),
    ]);
    t.row(vec![
        "L1 D-cache".into(),
        "64 KB, 12-way, 5-cycle".into(),
        format!("{} KB, {}-way, {}-cycle", cfg.l1d.size_bytes >> 10, cfg.l1d.ways, cfg.l1d.latency),
    ]);
    t.row(vec![
        "L2 cache".into(),
        "1 MB, 8-way, 10-cycle".into(),
        format!("{} MB, {}-way, {}-cycle", cfg.l2.size_bytes >> 20, cfg.l2.ways, cfg.l2.latency),
    ]);
    t.row(vec![
        "LL cache".into(),
        "8 MB, 16-way, 64-entry MSHR, 20-cycle".into(),
        format!(
            "{} MB, {}-way, {}-entry MSHR, {}-cycle",
            cfg.llc.size_bytes >> 20,
            cfg.llc.ways,
            cfg.llc.mshr_entries,
            cfg.llc.latency
        ),
    ]);
    t.row(vec![
        "DRAM".into(),
        "tRP=tRCD=tCAS=12.5ns, 8 GB/s per core".into(),
        format!(
            "{}-cycle access (3 x 50 @ 4 GHz), {} cycles/line transfer",
            cfg.dram.latency, cfg.dram.cycles_per_transfer
        ),
    ]);
    print_table("Table III: simulation parameters", &t);
    record_json("table3", &serde_json::to_value(cfg).unwrap());
}
