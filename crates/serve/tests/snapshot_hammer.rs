//! Concurrent-snapshot consistency hammer: many submitter threads drive
//! the runtime while a poller calls `stats_snapshot()` in a tight loop,
//! asserting that **every** snapshot is internally consistent — the
//! whole-batch report commit means a snapshot can never observe a
//! half-counted batch, and counters only move forward between polls.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use dart_core::config::TabularConfig;
use dart_core::tabularize::tabularize;
use dart_core::TabularModel;
use dart_nn::init::InitRng;
use dart_nn::matrix::Matrix;
use dart_nn::model::{AccessPredictor, ModelConfig};
use dart_serve::{generate_requests, LoadGenConfig, ServeConfig, ServeRuntime, ServeStats};
use dart_trace::PreprocessConfig;

/// A tiny tabularized model + preprocessing pair (fast to fit).
fn tiny_setup() -> (Arc<TabularModel>, PreprocessConfig) {
    let pre = PreprocessConfig {
        seq_len: 4,
        addr_segments: 3,
        seg_bits: 4,
        pc_segments: 1,
        delta_range: 4,
        lookforward: 4,
    };
    let cfg = ModelConfig {
        input_dim: pre.input_dim(),
        dim: 8,
        heads: 2,
        layers: 1,
        ffn_dim: 16,
        output_dim: pre.output_dim(),
        seq_len: pre.seq_len,
    };
    let student = AccessPredictor::new(cfg, 3).unwrap();
    let mut rng = InitRng::new(9);
    let x = Matrix::from_fn(40 * 4, pre.input_dim(), |_, _| rng.next_f32());
    let tab_cfg = TabularConfig { k: 8, c: 2, fine_tune_epochs: 0, ..Default::default() };
    let (model, _) = tabularize(&student, &x, &tab_cfg);
    (Arc::new(model), pre)
}

/// The invariants every single snapshot must satisfy, no matter when it
/// was taken relative to in-flight batches.
fn assert_consistent(s: &ServeStats, ctx: &str) {
    assert!(
        s.predictions <= s.requests,
        "{ctx}: predictions {} > requests {}",
        s.predictions,
        s.requests
    );
    assert_eq!(
        s.latency.count(),
        s.requests,
        "{ctx}: latency histogram count {} != requests {} (torn batch commit)",
        s.latency.count(),
        s.requests
    );
    assert!(s.batches <= s.requests, "{ctx}: batches {} > requests {}", s.batches, s.requests);
    let per_shard: u64 = s.per_shard_requests.iter().sum();
    assert_eq!(
        per_shard, s.requests,
        "{ctx}: per-shard requests sum {per_shard} != total {}",
        s.requests
    );
    if s.requests > 0 {
        assert!(s.max_batch >= 1, "{ctx}: served requests but max_batch 0");
    }
}

/// Extra invariants that only hold at quiescence (workers joined): the
/// lock-free batch-size cell is recorded *after* the report commit, so
/// mid-flight snapshots may see it lag or lead by one batch — but once
/// the workers are gone the two views must agree exactly.
fn assert_quiescent(s: &ServeStats, ctx: &str) {
    assert_consistent(s, ctx);
    assert_eq!(
        s.batch_sizes.sum(),
        s.requests,
        "{ctx}: batch-size histogram mass {} != requests {}",
        s.batch_sizes.sum(),
        s.requests
    );
    assert_eq!(
        s.batch_sizes.count(),
        s.batches,
        "{ctx}: batch-size histogram count {} != batches {}",
        s.batch_sizes.count(),
        s.batches
    );
}

/// Counters are monotone across successive snapshots.
fn assert_monotone(prev: &ServeStats, next: &ServeStats, ctx: &str) {
    assert!(next.requests >= prev.requests, "{ctx}: requests went backwards");
    assert!(next.predictions >= prev.predictions, "{ctx}: predictions went backwards");
    assert!(next.batches >= prev.batches, "{ctx}: batches went backwards");
    assert!(next.failed >= prev.failed, "{ctx}: failed went backwards");
    assert!(next.stream_evictions >= prev.stream_evictions, "{ctx}: evictions went backwards");
    assert!(next.latency.count() >= prev.latency.count(), "{ctx}: histogram shrank");
}

fn hammer(cfg: ServeConfig, submitters: usize, per_submitter_streams: usize) -> ServeStats {
    let (model, pre) = tiny_setup();
    let runtime = Arc::new(ServeRuntime::start(model, pre, cfg));
    let accesses = 60usize;

    let done = Arc::new(AtomicBool::new(false));
    let poller = {
        let runtime = Arc::clone(&runtime);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut prev = runtime.stats_snapshot();
            let mut polls = 0u64;
            assert_consistent(&prev, "first poll");
            while !done.load(Ordering::Acquire) {
                let s = runtime.stats_snapshot();
                assert_consistent(&s, "live poll");
                assert_monotone(&prev, &s, "live poll");
                prev = s;
                polls += 1;
            }
            // One more after the submitters are done, so at least one
            // snapshot observes the final totals.
            let s = runtime.stats_snapshot();
            assert_consistent(&s, "final poll");
            assert_monotone(&prev, &s, "final poll");
            polls + 1
        })
    };

    let mut total_submitted = 0usize;
    let handles: Vec<_> = (0..submitters)
        .map(|i| {
            let runtime = Arc::clone(&runtime);
            // Disjoint stream-id ranges per submitter: generate with a
            // per-submitter seed and shift the ids.
            let reqs = generate_requests(&LoadGenConfig {
                streams: per_submitter_streams,
                accesses_per_stream: accesses,
                seed: 100 + i as u64,
            });
            total_submitted += reqs.len();
            let offset = (i * per_submitter_streams) as u64;
            thread::spawn(move || {
                for mut req in reqs {
                    req.stream_id += offset;
                    runtime.submit(req);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    runtime.wait_idle();
    done.store(true, Ordering::Release);
    let polls = poller.join().unwrap();
    assert!(polls >= 2, "poller barely ran");

    let runtime = Arc::into_inner(runtime).expect("all clones dropped");
    let stats = runtime.shutdown();
    assert_quiescent(&stats, "shutdown");
    assert_eq!(
        stats.requests + stats.failed,
        total_submitted as u64,
        "every submitted request is either served or failed"
    );
    stats
}

#[test]
fn snapshots_stay_consistent_under_concurrent_submitters() {
    let cfg = ServeConfig { shards: 4, max_batch: 16, threshold: 0.0, ..ServeConfig::default() };
    let stats = hammer(cfg, 8, 4);
    assert_eq!(stats.failed, 0, "healthy run must not fail requests");
    assert!(stats.requests > 0);
}

#[test]
fn snapshots_stay_consistent_across_worker_death() {
    // Fault injection: the shard serving stream 1 panics mid-batch. Every
    // snapshot — taken before, during, or after the death — must still be
    // internally consistent, and the dying batch's requests surface as
    // failure responses rather than vanishing.
    let cfg = ServeConfig {
        shards: 4,
        max_batch: 16,
        threshold: 0.0,
        panic_on_stream: Some(1),
        ..ServeConfig::default()
    };
    let stats = hammer(cfg, 8, 4);
    assert_eq!(stats.worker_panics.len(), 1, "exactly one worker died");
    assert!(stats.failed > 0, "dying batch surfaces as failures");
}
