//! Lock-free scalar metric cells.
//!
//! Both cells use `Relaxed` ordering: metrics are statistical reads of a
//! running system, not synchronization edges. A reader may observe a value
//! that is a few nanoseconds stale, never one that is torn or decreasing
//! (for [`Counter`]).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// `const`-constructible so kernels can keep counters in `static` cells
/// with zero initialization cost.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events at once (e.g. rows per kernel invocation).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value. Monotone across reads from any one thread's
    /// perspective of a given writer; never torn.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (queue depth, resident streams, ...).
///
/// Signed so decrement-below-transient-zero races (`add` on one thread,
/// `sub` on another, observed between) stay representable instead of
/// wrapping to 2^64.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways_and_allows_transient_negative() {
        let g = Gauge::new();
        g.add(3);
        g.sub(5);
        assert_eq!(g.get(), -2, "signed gauge must not wrap");
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn const_counter_works_in_static() {
        static EVENTS: Counter = Counter::new();
        EVENTS.add(2);
        assert!(EVENTS.get() >= 2);
    }
}
