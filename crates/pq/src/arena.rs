//! Flat, contiguous, code-major storage arenas for the tabularization
//! kernels.
//!
//! The seed stored every kernel's per-subspace tables as `Vec<Matrix>` (one
//! heap allocation per subspace) and every product quantizer's codebook as
//! one `Matrix` per subspace. That scatters the hot lookup data across the
//! heap: a batched query walks `C` unrelated allocations per row, and the
//! prefetcher-friendly access pattern the paper's latency model assumes
//! (stream one sub-table, then the next) is lost.
//!
//! [`TableArena`] and [`CodebookArena`] replace that with single contiguous
//! `Vec<f32>` allocations laid out **code-major**: all of subspace 0's
//! entries, then all of subspace 1's, with prototype rows contiguous inside
//! each subspace block. The tiled batch kernels in `linear_table` /
//! `quantizer` iterate subspace-outer over row tiles so one subspace block
//! stays cache-resident for a whole tile pass.

use serde::{Deserialize, Serialize};

use dart_nn::matrix::Matrix;
use rayon::prelude::*;

/// Flat code-major storage for `C` sub-tables of shape `K x width` each.
///
/// Entry `(c, k, o)` lives at `data[(c * protos + k) * width + o]`; the
/// whole arena is one contiguous allocation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableArena {
    subspaces: usize,
    protos: usize,
    width: usize,
    data: Vec<f32>,
}

impl TableArena {
    /// A zero-filled arena for `subspaces` sub-tables of `protos x width`.
    pub fn zeros(subspaces: usize, protos: usize, width: usize) -> TableArena {
        TableArena { subspaces, protos, width, data: vec![0.0; subspaces * protos * width] }
    }

    /// Build an arena by copying per-subspace `K x width` matrices
    /// (the seed's nested layout) into one contiguous allocation.
    pub fn from_matrices(mats: &[Matrix]) -> TableArena {
        assert!(!mats.is_empty(), "arena from zero matrices");
        let protos = mats[0].rows();
        let width = mats[0].cols();
        let mut data = Vec::with_capacity(mats.len() * protos * width);
        for m in mats {
            assert_eq!(m.shape(), (protos, width), "sub-table shape mismatch");
            data.extend_from_slice(m.as_slice());
        }
        TableArena { subspaces: mats.len(), protos, width, data }
    }

    /// Number of sub-tables `C`.
    #[inline]
    pub fn num_subspaces(&self) -> usize {
        self.subspaces
    }

    /// Rows per sub-table `K`.
    #[inline]
    pub fn num_protos(&self) -> usize {
        self.protos
    }

    /// Entries per row (`D_O` for linear kernels, `K` for pairwise tables).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of `f32` entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the arena holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The row of sub-table `c` for prototype code `k`.
    #[inline]
    pub fn row(&self, c: usize, k: usize) -> &[f32] {
        debug_assert!(c < self.subspaces && k < self.protos);
        let start = (c * self.protos + k) * self.width;
        &self.data[start..start + self.width]
    }

    /// Single entry `(c, k, o)` (pairwise-table lookups).
    #[inline]
    pub fn get(&self, c: usize, k: usize, o: usize) -> f32 {
        debug_assert!(o < self.width);
        self.data[(c * self.protos + k) * self.width + o]
    }

    /// The contiguous `K * width` block of sub-table `c`.
    #[inline]
    pub fn subtable(&self, c: usize) -> &[f32] {
        debug_assert!(c < self.subspaces);
        let span = self.protos * self.width;
        &self.data[c * span..(c + 1) * span]
    }

    /// Mutable view of sub-table `c`.
    #[inline]
    pub fn subtable_mut(&mut self, c: usize) -> &mut [f32] {
        debug_assert!(c < self.subspaces);
        let span = self.protos * self.width;
        &mut self.data[c * span..(c + 1) * span]
    }

    /// Copy sub-table `c` out as a `K x width` matrix (diagnostics and the
    /// layout benchmark's seed-shape reference).
    pub fn subtable_to_matrix(&self, c: usize) -> Matrix {
        Matrix::from_vec(self.protos, self.width, self.subtable(c).to_vec())
    }

    /// The whole arena as one flat slice.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Fill every sub-table in parallel: `f(c, subtable_c)` runs once per
    /// subspace over disjoint slices of the arena (construction-time mirror
    /// of the seed's `par_iter` over separate `Matrix` allocations).
    pub fn fill_subtables_parallel(&mut self, f: impl Fn(usize, &mut [f32]) + Sync) {
        let span = self.protos * self.width;
        if span == 0 {
            return;
        }
        self.data.par_chunks_mut(span).enumerate().for_each(|(c, chunk)| f(c, chunk));
    }
}

/// Flat code-major storage for a product quantizer's prototypes.
///
/// Subspace `c` holds `K` prototypes of `sub_dims[c]` entries each (sub
/// dimensions across subspaces differ by at most one); its block starts at
/// `offsets[c]` and prototype `k` occupies
/// `data[offsets[c] + k * sub_dims[c] ..][..sub_dims[c]]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CodebookArena {
    protos: usize,
    sub_dims: Vec<usize>,
    offsets: Vec<usize>,
    data: Vec<f32>,
}

impl CodebookArena {
    /// Build from one `K x v_c` prototype matrix per subspace, consuming
    /// them into a single contiguous allocation.
    pub fn from_prototype_matrices(mats: &[Matrix]) -> CodebookArena {
        assert!(!mats.is_empty(), "codebook from zero subspaces");
        let protos = mats[0].rows();
        let mut sub_dims = Vec::with_capacity(mats.len());
        let mut offsets = Vec::with_capacity(mats.len() + 1);
        let total: usize = mats.iter().map(Matrix::len).sum();
        let mut data = Vec::with_capacity(total);
        for m in mats {
            assert_eq!(m.rows(), protos, "prototype count mismatch across subspaces");
            offsets.push(data.len());
            sub_dims.push(m.cols());
            data.extend_from_slice(m.as_slice());
        }
        offsets.push(data.len());
        CodebookArena { protos, sub_dims, offsets, data }
    }

    /// Number of subspaces `C`.
    #[inline]
    pub fn num_subspaces(&self) -> usize {
        self.sub_dims.len()
    }

    /// Prototypes per subspace `K`.
    #[inline]
    pub fn num_protos(&self) -> usize {
        self.protos
    }

    /// Dimensionality of subspace `c`.
    #[inline]
    pub fn sub_dim(&self, c: usize) -> usize {
        self.sub_dims[c]
    }

    /// Prototype `k` of subspace `c`.
    #[inline]
    pub fn proto(&self, c: usize, k: usize) -> &[f32] {
        debug_assert!(k < self.protos);
        let v = self.sub_dims[c];
        let start = self.offsets[c] + k * v;
        &self.data[start..start + v]
    }

    /// The contiguous `K * v_c` prototype block of subspace `c` (the argmin
    /// encoder scans this linearly).
    #[inline]
    pub fn subspace(&self, c: usize) -> &[f32] {
        &self.data[self.offsets[c]..self.offsets[c + 1]]
    }

    /// Total number of `f32` entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the codebook holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_arena_layout_is_code_major() {
        let mats = vec![Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32), Matrix::full(2, 3, 9.0)];
        let arena = TableArena::from_matrices(&mats);
        assert_eq!(arena.num_subspaces(), 2);
        assert_eq!(arena.num_protos(), 2);
        assert_eq!(arena.width(), 3);
        assert_eq!(arena.row(0, 1), &[3.0, 4.0, 5.0]);
        assert_eq!(arena.row(1, 0), &[9.0, 9.0, 9.0]);
        assert_eq!(arena.get(0, 1, 2), 5.0);
        // Subspace blocks are contiguous and in order.
        assert_eq!(arena.subtable(0), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(arena.as_slice().len(), 12);
        assert_eq!(arena.subtable_to_matrix(0), mats[0]);
    }

    #[test]
    fn fill_subtables_parallel_covers_all_entries() {
        let mut arena = TableArena::zeros(3, 4, 2);
        arena.fill_subtables_parallel(|c, chunk| {
            for v in chunk.iter_mut() {
                *v = c as f32 + 1.0;
            }
        });
        for c in 0..3 {
            assert!(arena.subtable(c).iter().all(|&v| v == c as f32 + 1.0));
        }
    }

    #[test]
    fn codebook_arena_handles_uneven_sub_dims() {
        // dim 5 split into 2 subspaces: 3 + 2 columns.
        let mats = vec![Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32), Matrix::full(4, 2, 7.0)];
        let cb = CodebookArena::from_prototype_matrices(&mats);
        assert_eq!(cb.num_subspaces(), 2);
        assert_eq!(cb.num_protos(), 4);
        assert_eq!(cb.sub_dim(0), 3);
        assert_eq!(cb.sub_dim(1), 2);
        assert_eq!(cb.proto(0, 2), &[6.0, 7.0, 8.0]);
        assert_eq!(cb.proto(1, 3), &[7.0, 7.0]);
        assert_eq!(cb.subspace(1).len(), 8);
        assert_eq!(cb.len(), 20);
    }

    #[test]
    fn arena_serde_roundtrip_is_exact() {
        let arena = TableArena::from_matrices(&[Matrix::from_fn(3, 2, |r, c| {
            (r as f32 + 0.1) * (c as f32 - 0.7)
        })]);
        let json = serde_json::to_string(&arena).unwrap();
        let back: TableArena = serde_json::from_str(&json).unwrap();
        assert_eq!(arena, back);
    }
}
