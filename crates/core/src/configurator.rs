//! The table configurator (paper §VI-C): whole-model latency and storage
//! formulas (Eq. 22–23) and the latency-major greedy search over a
//! pre-defined design space.

use dart_pq::complexity::{
    attention_latency, attention_ops, attention_storage_bits, linear_latency, linear_ops,
    linear_storage_bits,
};
use serde::{Deserialize, Serialize};

use crate::config::{DesignConstraints, PredictorConfig};

/// LayerNorm latency constant `L_ln` (cycles). The paper never states it;
/// 5 cycles keeps Eq. 22 within ~10% of Table V/VIII (see DESIGN.md §4).
pub const LN_LATENCY: u64 = 5;

/// Output-sigmoid latency constant `L_σ` (cycles).
pub const SIGMOID_LATENCY: u64 = 4;

/// Table-entry precision `d` in bits (f32 entries).
pub const DATA_BITS: usize = 32;

/// Whole-model cost of a tabularized predictor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelCost {
    /// Eq. 22 latency in cycles.
    pub latency_cycles: u64,
    /// Eq. 23 storage in bytes.
    pub storage_bytes: u64,
    /// Eq. 20–21 arithmetic operations.
    pub ops: u64,
}

/// Workload-shape parameters needed by Eq. 22–23 beyond the predictor
/// configuration itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShapeParams {
    /// Input history length `T_I` (= transformer patches `T_T` here).
    pub seq_len: usize,
    /// Output delta-bitmap size `D_O`.
    pub output_dim: usize,
}

impl Default for ShapeParams {
    fn default() -> Self {
        ShapeParams { seq_len: 16, output_dim: 128 }
    }
}

/// Eq. 22 — tabularized model latency.
pub fn model_latency(cfg: &PredictorConfig) -> u64 {
    let ll = linear_latency(cfg.k, cfg.c);
    let la = attention_latency(cfg.k, cfg.c, cfg.c);
    let encoder = 2 * LN_LATENCY + 2 * ll + la + 2 * ll;
    ll + LN_LATENCY + ll + SIGMOID_LATENCY + cfg.layers as u64 * encoder
}

/// Eq. 23 — tabularized model storage in bytes.
pub fn model_storage_bytes(cfg: &PredictorConfig, shape: &ShapeParams) -> u64 {
    let t = shape.seq_len;
    let d = cfg.dim;
    let (k, c) = (cfg.k, cfg.c);
    // LayerNorm parameters (gamma + beta) and the sigmoid LUT.
    let s_ln = (2 * d * DATA_BITS) as u64;
    let s_sigma = (1024 * DATA_BITS) as u64;

    let mut bits = 0u64;
    // Input linear (the paper's leading factor 2 accounts the address and PC
    // token streams separately).
    bits += 2 * linear_storage_bits(t, d, k, c, DATA_BITS);
    bits += s_ln;
    // Output linear + sigmoid.
    bits += linear_storage_bits(t, shape.output_dim, k, c, DATA_BITS) + s_sigma;
    // Encoder layers.
    let per_layer = 2 * s_ln
        + linear_storage_bits(t, 3 * cfg.heads * (d / cfg.heads.max(1)), k, c, DATA_BITS)
        + attention_storage_bits(t, d, k, c, c, DATA_BITS)
        + linear_storage_bits(t, d, k, c, DATA_BITS)
        + s_ln
        + linear_storage_bits(t, cfg.ffn_dim(), k, c, DATA_BITS)
        + linear_storage_bits(t, d, k, c, DATA_BITS);
    bits += cfg.layers as u64 * per_layer;
    bits.div_ceil(8)
}

/// Eq. 20–21 composed over the whole model: arithmetic operations per query.
pub fn model_ops(cfg: &PredictorConfig, shape: &ShapeParams) -> u64 {
    let t = shape.seq_len;
    let d = cfg.dim;
    let (k, c) = (cfg.k, cfg.c);
    let mut ops = 0u64;
    ops += linear_ops(t, d, k, c); // input linear
    ops += linear_ops(t, shape.output_dim, k, c); // output linear
    let per_layer = linear_ops(t, 3 * d, k, c)
        + attention_ops(t, d, k, c, c)
        + linear_ops(t, d, k, c)
        + linear_ops(t, cfg.ffn_dim(), k, c)
        + linear_ops(t, d, k, c);
    ops += cfg.layers as u64 * per_layer;
    ops
}

/// Full cost report for a configuration.
pub fn model_cost(cfg: &PredictorConfig, shape: &ShapeParams) -> ModelCost {
    ModelCost {
        latency_cycles: model_latency(cfg),
        storage_bytes: model_storage_bytes(cfg, shape),
        ops: model_ops(cfg, shape),
    }
}

/// The configurator's pre-defined design space (paper §VI-C2).
#[derive(Clone, Debug)]
pub struct TableConfigurator {
    /// Candidate encoder layer counts.
    pub layers: Vec<usize>,
    /// Candidate hidden dimensions.
    pub dims: Vec<usize>,
    /// Candidate head counts.
    pub heads: Vec<usize>,
    /// Candidate prototype counts.
    pub ks: Vec<usize>,
    /// Candidate subspace counts.
    pub cs: Vec<usize>,
    /// Workload shape.
    pub shape: ShapeParams,
}

impl Default for TableConfigurator {
    fn default() -> Self {
        TableConfigurator {
            layers: vec![1, 2, 4],
            dims: vec![16, 32, 64],
            heads: vec![2, 4],
            ks: vec![16, 32, 64, 128, 256, 512, 1024],
            cs: vec![1, 2, 4, 8],
            shape: ShapeParams::default(),
        }
    }
}

impl TableConfigurator {
    /// Enumerate every valid candidate with its cost.
    pub fn candidates(&self) -> Vec<(PredictorConfig, ModelCost)> {
        let mut out = Vec::new();
        for &layers in &self.layers {
            for &dim in &self.dims {
                for &heads in &self.heads {
                    if dim % heads != 0 {
                        continue;
                    }
                    for &k in &self.ks {
                        for &c in &self.cs {
                            let cfg = PredictorConfig { layers, dim, heads, k, c };
                            out.push((cfg, model_cost(&cfg, &self.shape)));
                        }
                    }
                }
            }
        }
        out
    }

    /// Latency-major greedy selection (paper §VI-C2): among configurations
    /// with the **highest** latency not exceeding `τ`, pick the one with the
    /// **maximum** storage not exceeding `s`; if none qualifies, fall back to
    /// the next-lower latency tier, and so on.
    pub fn configure(
        &self,
        constraints: &DesignConstraints,
    ) -> Option<(PredictorConfig, ModelCost)> {
        let mut cands: Vec<(PredictorConfig, ModelCost)> = self
            .candidates()
            .into_iter()
            .filter(|(_, cost)| cost.latency_cycles <= constraints.latency_cycles)
            .collect();
        // Sort by latency descending; iterate latency tiers.
        cands.sort_by_key(|(_, cost)| std::cmp::Reverse(cost.latency_cycles));
        let mut idx = 0;
        while idx < cands.len() {
            let tier = cands[idx].1.latency_cycles;
            let mut best: Option<(PredictorConfig, ModelCost)> = None;
            while idx < cands.len() && cands[idx].1.latency_cycles == tier {
                let (cfg, cost) = cands[idx];
                if cost.storage_bytes <= constraints.storage_bytes {
                    let better = match &best {
                        None => true,
                        Some((_, b)) => cost.storage_bytes > b.storage_bytes,
                    };
                    if better {
                        best = Some((cfg, cost));
                    }
                }
                idx += 1;
            }
            if best.is_some() {
                return best;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dart_latency_matches_paper_band() {
        // Paper Table V: DART (1, 32, 2, K=128, C=2) at 97 cycles.
        let lat = model_latency(&PredictorConfig::dart());
        assert!((85..=105).contains(&lat), "latency {lat}");
    }

    #[test]
    fn dart_s_latency_matches_paper_band() {
        // Paper Table VIII: DART-S at 57 cycles.
        let lat = model_latency(&PredictorConfig::dart_s());
        assert!((48..=62).contains(&lat), "latency {lat}");
    }

    #[test]
    fn dart_storage_matches_paper_band() {
        // Paper Table V: DART at 864.4 KB.
        let s = model_storage_bytes(&PredictorConfig::dart(), &ShapeParams::default());
        assert!((700_000..1_100_000).contains(&s), "storage {s}");
    }

    #[test]
    fn dart_s_storage_matches_paper_band() {
        // Paper Table VIII: DART-S at 29.9 KB.
        let s = model_storage_bytes(&PredictorConfig::dart_s(), &ShapeParams::default());
        assert!((20_000..36_000).contains(&s), "storage {s}");
    }

    #[test]
    fn dart_ops_match_paper_band() {
        // Paper Table V: DART at 11.0K operations.
        let ops = model_ops(&PredictorConfig::dart(), &ShapeParams::default());
        assert!((8_000..14_000).contains(&ops), "ops {ops}");
    }

    #[test]
    fn configurator_meets_both_constraints() {
        let conf = TableConfigurator::default();
        for constraints in
            [DesignConstraints::dart_s(), DesignConstraints::dart(), DesignConstraints::dart_l()]
        {
            let (cfg, cost) = conf.configure(&constraints).expect("feasible");
            assert!(cost.latency_cycles <= constraints.latency_cycles, "{cfg:?}");
            assert!(cost.storage_bytes <= constraints.storage_bytes, "{cfg:?}");
        }
    }

    #[test]
    fn configurator_is_latency_major() {
        // The chosen config must sit in the highest feasible latency tier:
        // no candidate may satisfy both constraints at a strictly higher
        // latency.
        let conf = TableConfigurator::default();
        let constraints = DesignConstraints::dart();
        let (_, chosen) = conf.configure(&constraints).unwrap();
        for (_, cost) in conf.candidates() {
            if cost.latency_cycles <= constraints.latency_cycles
                && cost.storage_bytes <= constraints.storage_bytes
            {
                assert!(cost.latency_cycles <= chosen.latency_cycles);
            }
        }
    }

    #[test]
    fn infeasible_constraints_return_none() {
        let conf = TableConfigurator::default();
        let too_tight = DesignConstraints { latency_cycles: 1, storage_bytes: 10 };
        assert!(conf.configure(&too_tight).is_none());
    }

    #[test]
    fn bigger_budgets_never_shrink_the_choice() {
        let conf = TableConfigurator::default();
        let (_, small) = conf.configure(&DesignConstraints::dart_s()).unwrap();
        let (_, large) = conf.configure(&DesignConstraints::dart_l()).unwrap();
        assert!(large.latency_cycles >= small.latency_cycles);
    }

    #[test]
    fn latency_monotone_in_k_and_layers() {
        let base = PredictorConfig::dart();
        let more_k = PredictorConfig { k: 256, ..base };
        let more_l = PredictorConfig { layers: 2, ..base };
        assert!(model_latency(&more_k) > model_latency(&base));
        assert!(model_latency(&more_l) > model_latency(&base));
    }

    #[test]
    fn storage_exponential_in_log_k_linear_latency() {
        // Fig. 10's contrast: latency grows ~linearly with log K while
        // storage grows ~exponentially (i.e. linear in K, quadratic in the
        // attention tables).
        let shape = ShapeParams::default();
        let ks = [64usize, 128, 256, 512];
        let lats: Vec<u64> = ks
            .iter()
            .map(|&k| model_latency(&PredictorConfig { k, ..PredictorConfig::dart() }))
            .collect();
        let stores: Vec<u64> = ks
            .iter()
            .map(|&k| {
                model_storage_bytes(&PredictorConfig { k, ..PredictorConfig::dart() }, &shape)
            })
            .collect();
        // Eq. 22 has eight log(K) terms at L = 1 (input + output linears,
        // four encoder linears, and 2 log K inside the attention kernel).
        for w in lats.windows(2) {
            assert_eq!(w[1] - w[0], 8, "latency steps by a constant per K doubling");
        }
        for w in stores.windows(2) {
            assert!(w[1] as f64 > w[0] as f64 * 1.8, "storage ~doubles per K doubling");
        }
    }
}
